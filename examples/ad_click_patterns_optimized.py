"""The §V-C "more sophisticated program": pattern matching with custom
PIQ/merge functions that coalesce events before matching.

    "the user can provide a pair of PIQ and merge functions that combine
    multiple events into one event, if these events are related to same
    user and ad, and are overlapped in their validity time intervals.
    Thus, the subsequent pattern matching operators are performed on
    smaller streams."

Compared to ``ad_click_patterns.py`` (the basic framework), the PIQ here
runs a per-partition :class:`~repro.engine.operators.coalesce.Coalesce`
that fuses each user's bursts of same-ad clicks into single events, so
the union buffers and the pattern matchers see far fewer events.

Run:  python examples/ad_click_patterns_optimized.py
"""

from __future__ import annotations

from repro.engine import DisorderedStreamable
from repro.workloads import generate_androidlog

AD_X, AD_Y = 3, 7
WITHIN = 60_000
LATENCIES = [5_000, 60_000]


def _ad(event):
    return event.payload[0] % 10


def _user_ad_key(event):
    return (event.key, _ad(event))


def main():
    dataset = generate_androidlog(80_000, seed=5)

    disordered = (
        DisorderedStreamable.from_dataset(dataset, punctuation_frequency=2_000)
        .where(lambda e: _ad(e) in (AD_X, AD_Y))
        # Give each click a lifetime so bursts overlap and can coalesce.
        .alter_duration(2_000)
    )

    # PIQ: fuse each user's overlapping same-ad clicks into one event.
    # The combined payload keeps the ad id (field 0) so the matcher still
    # distinguishes X from Y; coalescing happens per (user, ad).
    piq = lambda s: s.coalesce(  # noqa: E731
        combine=lambda acc, e: e.payload if acc is None else acc,
        key_fn=_user_ad_key,
    ).select_event(lambda e: e.with_key(e.key[0]))
    merge = lambda s: s  # fused events union directly  # noqa: E731

    streamables = disordered.to_streamables(LATENCIES, piq=piq, merge=merge)
    matched = streamables.apply(
        lambda s: s.pattern_match(
            first=lambda e: _ad(e) == AD_X,
            second=lambda e: _ad(e) == AD_Y,
            within=WITHIN,
        )
    )
    result = matched.run()

    raw_clicks = sum(result.partition.routed)
    for i, latency in enumerate(LATENCIES):
        matches = result.output_events(i)
        print(f"output {i} (latency {latency} ms): {len(matches)} matches, "
              f"completeness {result.completeness(i):.1%}")
    print(f"raw filtered clicks: {raw_clicks:,}")
    print(f"peak buffered memory: {result.memory.peak_mb:.3f} MB "
          "(coalesced events, not raw clicks)")
    return result


if __name__ == "__main__":
    main()
