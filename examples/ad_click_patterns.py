"""Pattern detection with the basic framework (Section V-C, second
example): find users who click ad X followed by ad Y within one minute.

Pattern matching does not decompose into a PIQ/merge pair easily, so the
basic framework is used: each output stream is the *sorted raw* stream at
its reorder latency, and the pattern matcher runs on each.  The early
output reports matches fast; the late output catches matches whose events
straggled in.

Run:  python examples/ad_click_patterns.py
"""

from __future__ import annotations

from repro.engine import DisorderedStreamable
from repro.workloads import generate_androidlog

AD_X, AD_Y = 3, 7
WITHIN = 60_000                 # one minute
LATENCIES = [5_000, 60_000]     # {5 s, 1 min}


def main():
    dataset = generate_androidlog(80_000, seed=5)

    disordered = DisorderedStreamable.from_dataset(
        dataset, punctuation_frequency=2_000
    ).where(lambda e: e.payload[0] % 10 in (AD_X, AD_Y))

    streamables = disordered.to_streamables(LATENCIES)

    matched = streamables.apply(
        lambda s: s.pattern_match(
            first=lambda e: e.payload[0] % 10 == AD_X,
            second=lambda e: e.payload[0] % 10 == AD_Y,
            within=WITHIN,
            key_fn=lambda e: e.key,          # per user
        )
    )
    result = matched.run()

    for i, latency in enumerate(LATENCIES):
        matches = result.output_events(i)
        print(f"output {i} (latency {latency} ms): {len(matches)} matches, "
              f"completeness {result.completeness(i):.1%}")
        for event in matches[:3]:
            first_t, second_t = event.payload
            print(f"    user {event.key}: X@{first_t} -> Y@{second_t}")

    late_only = len(result.output_events(1)) - len(result.output_events(0))
    print(f"matches recovered by waiting for late events: {late_only}")
    return result


if __name__ == "__main__":
    main()
