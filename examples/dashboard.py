"""The paper's motivating application: a real-time dashboard that shows
early inaccurate aggregates immediately and refines them as late events
arrive (Figure 1 + Section V-C, first example).

The advanced Impatience framework serves three output streams for reorder
latencies {1 s, 10 s, 60 s}: subscribers to stream 0 see per-window ad
click counts with one-second latency; streams 1 and 2 revise those counts
as stragglers show up — without re-buffering raw events, because the PIQ
operator reduces each partition to partial counts first.

Run:  python examples/dashboard.py
"""

from __future__ import annotations

from repro.engine import DisorderedStreamable
from repro.engine.operators.aggregates import Count, Sum
from repro.workloads import generate_cloudlog

WINDOW = 1_000            # 1-second tumbling windows
LATENCIES = [1_000, 10_000, 60_000]   # {1 s, 10 s, 1 min}


def main():
    dataset = generate_cloudlog(100_000, seed=1)

    disordered = DisorderedStreamable.from_dataset(
        dataset, punctuation_frequency=2_000
    ).tumbling_window(WINDOW)

    # PIQ: per-partition windowed counts per ad; merge: add partials.
    piq = lambda s: s.group_aggregate(  # noqa: E731
        Count(), key_fn=lambda e: e.key % 10
    )
    merge = lambda s: s.group_aggregate(Sum())  # noqa: E731

    streamables = disordered.to_streamables(LATENCIES, piq=piq, merge=merge)
    result = streamables.run()

    print("dashboard refinement for the first three windows "
          "(ad 0 click counts):")
    header = ["window"] + [f"after {latency} ms" for latency in LATENCIES]
    print("  " + "  ".join(f"{h:>14}" for h in header))
    windows = sorted({
        e.sync_time for e in result.output_events(0) if e.key == 0
    })[:3]
    for window in windows:
        row = [f"[{window}..{window + WINDOW})"]
        for i in range(len(LATENCIES)):
            count = sum(
                e.payload
                for e in result.output_events(i)
                if e.key == 0 and e.sync_time == window
            )
            row.append(str(count))
        print("  " + "  ".join(f"{c:>14}" for c in row))

    print()
    for i, latency in enumerate(LATENCIES):
        print(f"  output {i}: latency {latency:>6} ms, completeness "
              f"{result.completeness(i):6.1%}")
    print(f"  dropped beyond {LATENCIES[-1]} ms: {result.partition.dropped}")
    print(f"  peak buffered memory: {result.memory.peak_mb:.3f} MB "
          "(intermediate counts, not raw events)")
    return result


if __name__ == "__main__":
    main()
