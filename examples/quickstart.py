"""Quickstart: sort an out-of-order stream and run a windowed count.

This is the paper's running example (Section IV-B) in this library's API:

    Streamable<> s = File.ToStreamable(...)
        .Where(e => e.UserId % 100 < 5).TumblingWindow(1s).Count();

rendered as sort-as-needed execution: the selection and window operators
run on the DisorderedStreamable (before the sorting operator), then
``to_streamable()`` inserts Impatience sort, then ``count()`` aggregates.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.engine import DisorderedStreamable
from repro.workloads import generate_synthetic


def main():
    # A 50k-event stream where 30% of events arrive out of order.
    dataset = generate_synthetic(
        50_000, percent_disorder=30, amount_disorder=64, seed=42
    )

    query = (
        DisorderedStreamable.from_dataset(
            dataset,
            punctuation_frequency=1_000,  # progress marker every 1k events
            reorder_latency=500,          # tolerate 500 ms of lateness
        )
        .where(lambda e: e.key < 5)       # 5% sample of users
        .tumbling_window(1_000)           # 1-second windows
        .to_streamable()                  # <- Impatience sort goes here
        .count()
    )

    result = query.collect()

    print("windowed counts (first 10 windows):")
    for event in result.events[:10]:
        print(f"  window [{event.sync_time:>6} .. {event.other_time:>6}) "
              f"-> {event.payload} events")
    total = sum(result.payloads)
    print(f"windows: {len(result.events)}, events counted: {total}")
    assert result.sync_times == sorted(result.sync_times)
    return result


if __name__ == "__main__":
    main()
