"""Sliding-window metrics with snapshot semantics.

The paper's §IV-A2 example — "a hopping window query that computes over
a one-minute window for every second" — needs each event to count in
*every* hop its window spans.  Tumbling-window aggregates cannot express
that; Trill's snapshot semantics can, and this example runs it:

1. sort-as-needed ingestion of a disordered stream;
2. hopping-window timestamp adjustment (1-minute windows, 10-second
   hops, scaled down);
3. :meth:`snapshot_aggregate` — one output per snapshot interval with
   the number of events alive in it (= the sliding count);
4. a p95 of payload values per tumbling window alongside, for contrast.

Run:  python examples/sliding_window_metrics.py
"""

from __future__ import annotations

from repro.engine import DisorderedStreamable, Streamable
from repro.engine.operators import Quantile
from repro.workloads import generate_synthetic

WINDOW = 6_000   # the "one minute"
HOP = 1_000      # the "one second"


def main():
    dataset = generate_synthetic(
        40_000, percent_disorder=30, amount_disorder=64, seed=13
    )

    ordered = (
        DisorderedStreamable.from_dataset(
            dataset, punctuation_frequency=1_000, reorder_latency=500
        )
        .to_streamable()
    )

    sliding = (
        ordered
        .hopping_window(WINDOW, HOP)
        .snapshot_aggregate()
        .collect()
    )

    p95 = (
        Streamable.from_elements(
            [e for e in dataset.events()]
        )  # second pass, independent query
        .tumbling_window(WINDOW)
        .aggregate(Quantile(0.95, selector=lambda p: p[0] % 1000))
        .collect()
    )

    print(f"sliding {WINDOW}-unit count, updated every {HOP} units "
          f"(first 8 snapshot intervals):")
    for event in sliding.events[:8]:
        print(f"  [{event.sync_time:>6} .. {event.other_time:>6})  "
              f"alive: {event.payload}")
    # Sanity: in steady state the sliding count ≈ WINDOW (1 event/unit).
    steady = [e.payload for e in sliding.events
              if WINDOW <= e.sync_time <= 30_000]
    print(f"steady-state sliding count: min={min(steady)}, "
          f"max={max(steady)} (expected ≈{WINDOW})")

    print()
    print("p95(payload mod 1000) per tumbling window (first 4):")
    for event in p95.events[:4]:
        print(f"  [{event.sync_time:>6} .. {event.other_time:>6})  "
              f"p95: {event.payload}")
    return sliding


if __name__ == "__main__":
    main()
