"""Workload analysis (Section II): quantify disorder in the simulated
CloudLog and AndroidLog streams with the four measures of Table I, and
emit the Figure 2 event-time-vs-arrival-order series.

Run:  python examples/disorder_analysis.py [--n 100000] [--csv DIR]
"""

from __future__ import annotations

import argparse
import os

from repro.bench.reporting import format_table
from repro.metrics import measure_disorder
from repro.workloads import load_dataset

DATASETS = ("cloudlog", "androidlog", "synthetic")


def figure2_series(dataset, points=2_000):
    """(arrival_position, event_time) samples — the Figure 2 scatter."""
    step = max(len(dataset) // points, 1)
    return [
        (i, dataset.timestamps[i])
        for i in range(0, len(dataset), step)
    ]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=100_000,
                        help="events per dataset (paper: 20M)")
    parser.add_argument("--csv", default=None,
                        help="directory to write Figure 2 series CSVs")
    args = parser.parse_args(argv)

    rows = []
    for name in DATASETS:
        dataset = load_dataset(name, args.n)
        stats = measure_disorder(dataset.timestamps)
        rows.append([
            name, stats.n, stats.inversions, stats.distance, stats.runs,
            stats.interleaved, round(stats.mean_run_length, 2),
        ])
        if args.csv:
            os.makedirs(args.csv, exist_ok=True)
            path = os.path.join(args.csv, f"figure2_{name}.csv")
            with open(path, "w") as fh:
                fh.write("arrival_position,event_time\n")
                for position, event_time in figure2_series(dataset):
                    fh.write(f"{position},{event_time}\n")
            print(f"wrote {path}")

    print(format_table(
        ["dataset", "n", "inversions", "distance", "runs", "interleaved",
         "mean run"],
        rows,
        title="Table I analogue (simulated datasets)",
    ))
    print()
    print("Interpretation (matches the paper's reading):")
    print("  * CloudLog: tiny natural runs -> chaotic at fine granularity,")
    print("    small interleave -> well-ordered at coarse granularity.")
    print("  * AndroidLog: long runs (upload batches) -> fine-grained order,")
    print("    huge inversions -> coarse-grained chaos.")
    return rows


if __name__ == "__main__":
    main()
