"""Operating a restartable streaming job: plan, run, checkpoint, resume.

Puts the operational machinery together:

1. declare the query as a logical :class:`~repro.engine.planner.QueryPlan`
   in naive order and let the optimizer hoist the push-downs;
2. stream half the data, checkpoint the sorting operator's state;
3. "crash", rebuild from the checkpoint, stream the rest;
4. verify the resumed job's output equals an uninterrupted run.

Run:  python examples/restartable_job.py
"""

from __future__ import annotations

import json

from repro.core import ImpatienceSorter
from repro.engine.checkpoint import checkpoint_sorter, restore_sorter
from repro.engine.planner import QueryPlan
from repro.engine import DisorderedStreamable
from repro.workloads import generate_cloudlog

WINDOW = 500
PUNCT_EVERY = 500
LATENCY = 5_000


def run_sorter(sorter, timestamps):
    """Drive a raw sorter over a timestamp stream; return emissions."""
    out = []
    watermark = None
    for i, t in enumerate(timestamps):
        sorter.insert(t)
        watermark = t if watermark is None or t > watermark else watermark
        if i % PUNCT_EVERY == PUNCT_EVERY - 1:
            ts = watermark - LATENCY
            if sorter.watermark == float("-inf") or ts > sorter.watermark:
                out.extend(sorter.on_punctuation(ts))
    return out


def main():
    dataset = generate_cloudlog(60_000, seed=21)
    timestamps = dataset.timestamps
    half = len(timestamps) // 2

    # --- 1. the declarative plan, written naively, optimized mechanically
    plan = (
        QueryPlan()
        .sort()
        .where(lambda e: e.key < 50)
        .tumbling_window(WINDOW)
        .count()
    )
    print("naive plan:     ", " -> ".join(plan.describe()))
    optimized = plan.optimized()
    print("optimized plan: ", " -> ".join(optimized.describe()))
    result = optimized.bind(
        DisorderedStreamable.from_dataset(
            dataset, punctuation_frequency=PUNCT_EVERY,
            reorder_latency=LATENCY,
        )
    ).collect()
    print(f"windowed counts: {len(result.events)} windows, "
          f"{sum(result.payloads):,} events")

    # --- 2./3. checkpoint the sorter mid-stream and resume after a crash
    first_leg = ImpatienceSorter()
    emitted_a = run_sorter(first_leg, timestamps[:half])
    snapshot = checkpoint_sorter(first_leg)
    wire_format = json.dumps(snapshot)
    print(f"checkpoint: {len(wire_format):,} bytes of JSON, "
          f"{len(snapshot['runs'])} runs, "
          f"{sum(len(r) for r in snapshot['runs']):,} buffered events")

    resumed = restore_sorter(json.loads(wire_format))
    emitted_b = run_sorter(resumed, timestamps[half:])
    emitted_b.extend(resumed.flush())

    # --- 4. equivalence with an uninterrupted run
    uninterrupted = ImpatienceSorter()
    reference = run_sorter(uninterrupted, timestamps)
    reference.extend(uninterrupted.flush())
    assert emitted_a + emitted_b == reference
    print(f"resumed output identical to uninterrupted run "
          f"({len(reference):,} events) ✓")
    return snapshot


if __name__ == "__main__":
    main()
