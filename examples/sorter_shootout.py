"""Compare all sorting algorithms offline and online on one dataset —
a miniature of Figures 7 and 8 for interactive exploration.

Run:  python examples/sorter_shootout.py [--dataset cloudlog] [--n 50000]
"""

from __future__ import annotations

import argparse

from repro.bench import offline_throughput, online_throughput
from repro.bench.reporting import format_table
from repro.sorting.registry import OFFLINE_SORTS
from repro.workloads import load_dataset

ONLINE = ("impatience", "patience", "quicksort", "timsort", "heapsort")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="cloudlog",
                        choices=["synthetic", "cloudlog", "androidlog"])
    parser.add_argument("--n", type=int, default=50_000)
    parser.add_argument("--latency", type=int, default=None,
                        help="reorder latency (default: 20%% of horizon)")
    args = parser.parse_args(argv)

    dataset = load_dataset(args.dataset, args.n)
    latency = args.latency or args.n // 5

    print(format_table(
        ["algorithm", "offline M/s"],
        [
            [name, round(offline_throughput(name, dataset.timestamps), 3)]
            for name in OFFLINE_SORTS
        ],
        title=f"Offline sorting ({args.dataset}, n={args.n})",
    ))
    print()

    rows = []
    for frequency in (100, 1_000, 10_000):
        rows.append([frequency] + [
            round(online_throughput(
                name, dataset.timestamps, frequency, latency
            ), 3)
            for name in ONLINE
        ])
    print(format_table(
        ["punct freq", *ONLINE], rows,
        title=f"Online sorting ({args.dataset}, latency={latency})",
    ))


if __name__ == "__main__":
    main()
