"""Session analytics over a disordered device log.

Combines the newer engine operators on the AndroidLog simulation:

1. sort-as-needed ingestion (selection pushed below the sort);
2. per-device session windows (gap-delimited activity bursts);
3. windowed p95 of session sizes and distinct active devices —
   the numbers a fleet-health dashboard actually shows.

Run:  python examples/session_analytics.py
"""

from __future__ import annotations

from repro.engine import DisorderedStreamable
from repro.engine.operators import CountDistinct, Quantile
from repro.metrics import suggest_reorder_latency
from repro.workloads import generate_androidlog

SESSION_GAP = 400        # ms of silence that ends a device session
REPORT_WINDOW = 20_000   # dashboard refresh granularity


def main():
    dataset = generate_androidlog(60_000, n_phones=40, uploads_per_phone=8,
                                  n_keys=40, seed=11)
    latency = suggest_reorder_latency(dataset.timestamps, coverage=0.9)

    ordered = (
        DisorderedStreamable.from_dataset(
            dataset, punctuation_frequency=1_000, reorder_latency=latency
        )
        .where(lambda e: e.payload[0] % 4 != 0)   # drop heartbeat noise
        .to_streamable()
    )

    sessions = ordered.session_window(SESSION_GAP)
    session_result = sessions.collect()

    # Second pass over the session stream: dashboard windows.
    session_events = session_result.events
    from repro.engine import Streamable

    dashboard = (
        Streamable.from_elements(session_events)
        .tumbling_window(REPORT_WINDOW)
    )
    p95 = dashboard.aggregate(Quantile(0.95)).collect()
    devices = dashboard.aggregate(
        CountDistinct(selector=None)
    )  # distinct session sizes, illustrative
    active = (
        Streamable.from_elements(session_events)
        .tumbling_window(REPORT_WINDOW)
        .select_event(lambda e: e.with_payload(e.key))
        .aggregate(CountDistinct())
        .collect()
    )

    print(f"suggested reorder latency (90% coverage): {latency} ms")
    print(f"sessions detected: {len(session_events):,} "
          f"(mean size {sum(e.payload for e in session_events) / len(session_events):.1f} events)")
    print()
    print(f"{'window':>12}  {'p95 session size':>17}  {'active devices':>15}")
    for p95_event, active_event in list(zip(p95.events, active.events))[:8]:
        window = f"[{p95_event.sync_time}..{p95_event.other_time})"
        print(f"{window:>12}  {p95_event.payload:>17}  {active_event.payload:>15}")
    assert devices is not None
    return session_result


if __name__ == "__main__":
    main()
