"""Legacy setup shim: this environment lacks the `wheel` package, so the
PEP 660 editable path is unavailable; `setup.py develop` works offline.
The console script is declared here as well because the legacy develop
command does not materialize `[project.scripts]` from pyproject.toml."""
from setuptools import setup

setup(entry_points={"console_scripts": ["repro = repro.cli:main"]})
