"""Regenerate every paper table/figure analogue in one run.

    python -m benchmarks.report [--n 100000] [--json results.json]

Prints the Table I, Figure 5, Figure 7, Figure 8, Figure 9, Figure 10 and
Table II analogues plus the ablations; EXPERIMENTS.md records a captured
run.  ``--json`` additionally archives each section's output and timing
in machine-readable form.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import time

from benchmarks import (
    bench_ablation_adaptive,
    bench_ablation_ingress,
    bench_ablation_multiquery,
    bench_autoscale,
    bench_operator_micro,
    bench_ablation_baselines,
    bench_ablation_columnar,
    bench_ablation_merge,
    bench_fig5_run_counts,
    bench_fig7_offline_sorting,
    bench_fig8_online_sorting,
    bench_columnar_compiler,
    bench_compiled_parallel,
    bench_external_sort,
    bench_fig9_sort_as_needed,
    bench_fig10_framework,
    bench_parallel_scaling,
    bench_string_sort,
    bench_table1_disorder,
    bench_table2_latency_completeness,
)

SECTIONS = (
    ("Table I — disorder statistics", bench_table1_disorder.report),
    ("Figure 5 — run counts over time", bench_fig5_run_counts.report),
    ("Figure 7 — offline sorting throughput",
     bench_fig7_offline_sorting.report),
    ("Figure 8 — online sorting throughput",
     bench_fig8_online_sorting.report),
    ("Figure 9 — sort-as-needed speedups", bench_fig9_sort_as_needed.report),
    ("Figure 10 — framework throughput & memory",
     bench_fig10_framework.report),
    ("Table II — latency & completeness",
     bench_table2_latency_completeness.report),
    ("Ablation — merge schedules & SRS", bench_ablation_merge.report),
    ("Ablation — k-slack & speculation baselines",
     bench_ablation_baselines.report),
    ("Ablation — columnar vs row push-down",
     bench_ablation_columnar.report),
    ("Ablation — adaptive reorder latency",
     bench_ablation_adaptive.report),
    ("Ablation — multi-query shared fan-out",
     bench_ablation_multiquery.report),
    ("Ablation — sorter ingress batching", bench_ablation_ingress.report),
    ("Fused columnar compiler vs row engine",
     bench_columnar_compiler.report),
    ("Parallel shard-runtime scaling", bench_parallel_scaling.report),
    ("Compiled shard workers vs row pipeline",
     bench_compiled_parallel.report),
    ("Adaptive worker autoscaling vs fixed pools",
     bench_autoscale.report),
    ("Bounded-memory external sort", bench_external_sort.report),
    ("String sort — OVC vs naive merges", bench_string_sort.report),
    ("Operator microbenchmarks", bench_operator_micro.report),
)


def _metrics_section(n=None):
    """The report's ``--metrics`` mode: one fully instrumented run of the
    paper's windowed-count query, summarized with the ascii-chart
    latency/occupancy rendering."""
    from repro.bench import pipeline_metrics, format_metrics_summary, \
        stream_length
    from repro.metrics.profile import suggest_reorder_latency
    from repro.workloads import load_dataset

    n = n or stream_length()
    dataset = load_dataset("cloudlog", n)
    snapshot = pipeline_metrics(
        lambda d: d.tumbling_window(max(n // 100, 1))
        .to_streamable().count(),
        dataset,
        punctuation_frequency=max(n // 20, 1),
        reorder_latency=suggest_reorder_latency(dataset.timestamps, 0.99),
    )
    print(format_metrics_summary(snapshot))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=None,
                        help="stream length (default REPRO_BENCH_N or 100k)")
    parser.add_argument("--skip", nargs="*", default=["Figure 5"],
                        help="section prefixes to skip (Figure 5's full "
                             "dump is long; see its module for the series)")
    parser.add_argument("--json", default=None,
                        help="also archive section outputs to this path")
    parser.add_argument("--metrics", action="store_true",
                        help="append an instrumented pipeline-observability "
                             "section (per-operator metrics, punctuation "
                             "latency, occupancy chart)")
    args = parser.parse_args(argv)

    sections = SECTIONS
    if args.metrics:
        sections = SECTIONS + (
            ("Pipeline observability summary", _metrics_section),
        )

    archive = {"n": args.n, "sections": {}}
    for title, report in sections:
        if any(title.startswith(prefix) for prefix in args.skip or ()):
            continue
        print("=" * 72)
        print(title)
        print("=" * 72)
        start = time.perf_counter()
        if args.json:
            capture = io.StringIO()
            with contextlib.redirect_stdout(capture):
                report(args.n)
            text = capture.getvalue()
            print(text, end="")
            archive["sections"][title] = {
                "seconds": round(time.perf_counter() - start, 2),
                "output": text,
            }
        else:
            report(args.n)
        print(f"[section took {time.perf_counter() - start:.1f}s]")
        print()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(archive, fh, indent=2)
        print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
