"""Figure 5 — number of sorted runs: Patience vs Impatience on CloudLog.

The paper sorts the CloudLog dataset with punctuations every 10,000 events
for Impatience sort (Patience sort only sorts at the end) and plots the
live run count over time: Patience's curve is monotonically increasing
(burst damage is unredeemable), while Impatience periodically cleans out
runs created by severely late events and returns to a "healthy" state.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.core.impatience import ImpatienceSorter
from repro.core.patience import PatienceSorter
from repro.engine.ingress import ingress_timestamps
from repro.workloads import load_dataset

PUNCTUATION_EVERY = 10_000


def run_count_series(timestamps, reorder_latency):
    """Return the two Figure 5 series as (events_seen, live_runs) lists."""
    patience = PatienceSorter(sample_every=PUNCTUATION_EVERY)
    patience.extend(timestamps)
    patience_series = list(patience.stats.run_count_history)
    patience.result()

    impatience = ImpatienceSorter()
    for tag, value in ingress_timestamps(
        timestamps, PUNCTUATION_EVERY, reorder_latency,
        final_punctuation=False,
    ):
        if tag == "event":
            impatience.insert(value)
        else:
            impatience.on_punctuation(value)
    impatience_series = [
        (n, runs)
        for n, runs in impatience.stats.run_count_history
    ]
    impatience.flush()
    return patience_series, impatience_series


def bench_fig5_series(benchmark, datasets, N):
    from benchmarks.conftest import reorder_latency_for

    timestamps = datasets["cloudlog"].timestamps
    latency = reorder_latency_for("cloudlog", N)
    patience_series, impatience_series = benchmark.pedantic(
        lambda: run_count_series(timestamps, latency), rounds=1, iterations=1
    )
    patience_final = patience_series[-1][1]
    impatience_max = max(r for _, r in impatience_series)
    # The paper's claim: Impatience holds far fewer live runs than
    # Patience accumulates, because punctuations clean emptied runs out.
    assert impatience_max < patience_final
    benchmark.extra_info["patience_final_runs"] = patience_final
    benchmark.extra_info["impatience_max_runs"] = impatience_max


def report(n=None):
    from benchmarks.conftest import reorder_latency_for
    from repro.bench import stream_length

    n = n or stream_length()

    dataset = load_dataset("cloudlog", n)
    patience_series, impatience_series = run_count_series(
        dataset.timestamps, reorder_latency_for("cloudlog", n)
    )
    impatience_at = dict(impatience_series)
    rows = []
    for seen, runs in patience_series:
        rows.append([seen, runs, impatience_at.get(seen, "")])
    print(format_table(
        ["events seen", "patience runs", "impatience runs"],
        rows,
        title="Figure 5 (CloudLog, punctuation every 10k events)",
    ))
    print()
    from repro.bench.ascii_chart import line_chart

    print(line_chart({
        "patience": patience_series,
        "impatience": impatience_series,
    }))
    return patience_series, impatience_series


if __name__ == "__main__":
    report()
