"""Ablation — multi-query sharing of one framework fan-out.

When Q queries subscribe to the same out-of-order stream, running each
through its own framework re-partitions and re-sorts the input Q times.
:func:`repro.framework.multiquery.build_multi_query` shares one
partition + per-latency sorters across every query's PIQ/merge cascade.

Expected shape: shared execution approaches the cost of one framework
pass plus Q cheap cascades, so the speedup over separate runs grows with
Q (bounded by the fraction of time spent in partition+sort).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.bench_fig10_framework import latencies_for, window_for
from repro.bench import stream_length
from repro.bench.reporting import format_table
from repro.engine.disordered import DisorderedStreamable
from repro.framework.multiquery import build_multi_query
from repro.framework.queries import make_query
from repro.workloads import load_dataset

FREQUENCY = 10_000
QUERY_NAMES = ("Q1", "Q2", "Q4")


def _disordered(dataset, window):
    return DisorderedStreamable.from_dataset(
        dataset, punctuation_frequency=FREQUENCY
    ).tumbling_window(window)


def run_shared(dataset, queries, latencies, window):
    start = time.perf_counter()
    build_multi_query(
        _disordered(dataset, window), latencies,
        {q.name: (q.piq, q.merge) for q in queries},
    ).run()
    return time.perf_counter() - start


def run_separate(dataset, queries, latencies, window):
    start = time.perf_counter()
    for query in queries:
        _disordered(dataset, window).to_streamables(
            latencies, piq=query.piq, merge=query.merge
        ).run()
    return time.perf_counter() - start


@pytest.mark.parametrize("n_queries", [2, 3])
def bench_shared_vs_separate(benchmark, N, n_queries):
    n = min(N, 50_000)
    dataset = load_dataset("cloudlog", n)
    window = window_for(n)
    queries = [make_query(name, window) for name in QUERY_NAMES[:n_queries]]
    latencies = latencies_for("cloudlog", n)
    shared = benchmark.pedantic(
        lambda: run_shared(dataset, queries, latencies, window),
        rounds=1, iterations=1,
    )
    separate = run_separate(dataset, queries, latencies, window)
    assert shared < separate  # sharing must never lose
    benchmark.extra_info["speedup"] = separate / shared


def report(n=None):
    n = min(n or stream_length(), 100_000)
    dataset = load_dataset("cloudlog", n)
    window = window_for(n)
    latencies = latencies_for("cloudlog", n)
    rows = []
    for n_queries in (1, 2, 3):
        queries = [
            make_query(name, window) for name in QUERY_NAMES[:n_queries]
        ]
        shared = run_shared(dataset, queries, latencies, window)
        separate = run_separate(dataset, queries, latencies, window)
        rows.append([
            n_queries, round(separate, 2), round(shared, 2),
            round(separate / shared, 2),
        ])
    print(format_table(
        ["queries", "separate s", "shared s", "speedup"],
        rows,
        title="Ablation: multi-query shared fan-out (cloudlog)",
    ))


if __name__ == "__main__":
    report()
