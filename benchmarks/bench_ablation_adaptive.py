"""Ablation — adaptive vs static reorder latency.

The paper tunes reorder latency per dataset, offline (§VI-B2).  This
ablation quantifies what the online controller
(:class:`~repro.framework.adaptive_latency.AdaptiveLatencyPolicy`) buys
on a stream whose lateness regime *changes*: calm traffic, then a storm
of heavily delayed events.

Three ingress policies drive the same Impatience sorter:

* static latency tuned on the calm prefix (what offline tuning yields);
* static latency tuned on the whole stream (oracle knowledge);
* the adaptive controller starting from the calm setting.

Reported: completeness and the final learned latency.  Expected shape:
calm-tuned static loses badly in the storm; adaptive lands near the
oracle without having seen the future.
"""

from __future__ import annotations

import random

import pytest

from repro.bench import stream_length
from repro.bench.reporting import format_table
from repro.core.impatience import ImpatienceSorter
from repro.engine.punctuation import PunctuationPolicy
from repro.framework.adaptive_latency import AdaptiveLatencyPolicy
from repro.metrics.profile import suggest_reorder_latency

FREQUENCY = 200


def regime_change_stream(n, calm_jitter=5, storm_jitter=400, seed=0):
    """Calm first third, stormy rest; timestamps tick ~1/event."""
    rnd = random.Random(seed)
    calm = n // 3
    out = []
    for i in range(n):
        jitter = calm_jitter if i < calm else storm_jitter
        out.append(max(i - rnd.randrange(jitter + 1), 0))
    return out, calm


def run_policy(policy, timestamps):
    """Drive one policy + sorter; return completeness."""
    sorter = ImpatienceSorter()
    for t in timestamps:
        sorter.insert(t)
        ts = policy.observe(t)
        if ts is not None:
            sorter.on_punctuation(ts)
    sorter.flush()
    return 1 - sorter.late.dropped / len(timestamps)


def run_cell(n, seed=0):
    stream, calm = regime_change_stream(n, seed=seed)
    calm_latency = suggest_reorder_latency(stream[:calm], 0.99)
    oracle_latency = suggest_reorder_latency(stream, 0.99)
    return {
        "static_calm": (
            calm_latency,
            run_policy(
                PunctuationPolicy(FREQUENCY, calm_latency), stream
            ),
        ),
        "static_oracle": (
            oracle_latency,
            run_policy(
                PunctuationPolicy(FREQUENCY, oracle_latency), stream
            ),
        ),
        "adaptive": (
            None,
            run_policy(
                AdaptiveLatencyPolicy(
                    FREQUENCY, coverage=0.99, smoothing=0.7,
                    initial_latency=calm_latency,
                ),
                stream,
            ),
        ),
    }


def bench_adaptive_beats_calm_tuning(benchmark, N):
    n = min(N, 60_000)
    cells = benchmark.pedantic(lambda: run_cell(n), rounds=1, iterations=1)
    assert cells["adaptive"][1] > cells["static_calm"][1]
    assert cells["adaptive"][1] >= cells["static_oracle"][1] - 0.05
    for name, (_, completeness) in cells.items():
        benchmark.extra_info[name] = completeness


@pytest.mark.parametrize("seed", [1, 2])
def bench_adaptive_stability(benchmark, N, seed):
    n = min(N, 40_000)
    cells = benchmark.pedantic(
        lambda: run_cell(n, seed=seed), rounds=1, iterations=1
    )
    assert 0.5 < cells["adaptive"][1] <= 1.0


def report(n=None):
    n = min(n or stream_length(), 60_000)
    cells = run_cell(n)
    rows = [
        [name,
         "learned" if latency is None else latency,
         f"{completeness:.2%}"]
        for name, (latency, completeness) in cells.items()
    ]
    print(format_table(
        ["policy", "latency", "completeness"],
        rows,
        title=(
            "Ablation: adaptive vs static reorder latency "
            f"(regime-change stream, n={n})"
        ),
    ))


if __name__ == "__main__":
    report()
