"""Shared benchmark fixtures: datasets at bench scale and per-dataset
reorder-latency tuning (Section VI-B2: latencies are "tuned for each
dataset independently, to ensure that the sorting operator can tolerate a
majority of late events").

Scale with REPRO_BENCH_N (default 100k; the paper uses 20M on C#/Trill).
"""

from __future__ import annotations

import pytest

from repro.bench import stream_length
from repro.workloads import load_dataset

#: Reorder latency per dataset, as a fraction of the stream horizon (the
#: horizon is N milliseconds for every generator).
LATENCY_FRACTION = {
    "synthetic": 0.005,
    "cloudlog": 0.2,
    "androidlog": 0.5,
}


def reorder_latency_for(name, n) -> int:
    return max(int(n * LATENCY_FRACTION[name]), 1)


@pytest.fixture(scope="session")
def N():
    return stream_length()


@pytest.fixture(scope="session")
def datasets(N):
    return {
        "synthetic": load_dataset(
            "synthetic", N, percent_disorder=30, amount_disorder=64
        ),
        "cloudlog": load_dataset("cloudlog", N),
        "androidlog": load_dataset("androidlog", N),
    }
