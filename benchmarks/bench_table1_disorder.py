"""Table I — statistics on disorder in the two (simulated) datasets.

Paper reference (20M events):

    Measure      CloudLog           AndroidLog
    Inversions   53,541,688,892     73,004,914,227,284
    Distance     13,635,714         19,990,056
    Runs         7,382,495          5,560
    Interleaved  387                227

The shape to reproduce at bench scale: CloudLog has tiny natural runs
(mean ≈ 2.7) but moderate inversions; AndroidLog has long runs and
orders-of-magnitude more inversions; both have interleaved counts that
are tiny relative to N; distance is a large fraction of N for both.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.metrics import measure_disorder
from repro.workloads import load_dataset

MEASURES = ("inversions", "distance", "runs", "interleaved")


@pytest.mark.parametrize("name", ["cloudlog", "androidlog"])
def bench_table1_measures(benchmark, datasets, name):
    dataset = datasets[name]
    stats = benchmark.pedantic(
        lambda: measure_disorder(dataset.timestamps), rounds=1, iterations=1
    )
    assert stats.n == len(dataset)
    benchmark.extra_info.update(stats.as_dict())
    benchmark.extra_info["mean_run_length"] = stats.mean_run_length


def report(n=None):
    """Print the Table I analogue for the simulated datasets."""
    from repro.bench import stream_length

    n = n or stream_length()
    rows = []
    for name in ("cloudlog", "androidlog"):
        dataset = load_dataset(name, n)
        stats = measure_disorder(dataset.timestamps)
        rows.append(
            [name, stats.n, stats.inversions, stats.distance, stats.runs,
             stats.interleaved, round(stats.mean_run_length, 2)]
        )
    print(format_table(
        ["dataset", "n", "inversions", "distance", "runs", "interleaved",
         "mean run"],
        rows,
        title="Table I (simulated datasets, scaled)",
    ))
    return rows


if __name__ == "__main__":
    report()
