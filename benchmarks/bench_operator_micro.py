"""Operator microbenchmarks: per-operator event throughput.

Not a paper figure — an engineering table that localizes where the
row-oriented pipeline spends its time (and therefore how much headroom
each Figure 9 push-down has).  Each cell streams N pre-ordered events
through a single operator instance into a counting sink.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import stream_length
from repro.bench.reporting import format_table
from repro.engine.event import Event, Punctuation
from repro.engine.operators import (
    Coalesce,
    Count,
    GroupedWindowAggregate,
    PatternMatch,
    SessionWindow,
    Sort,
    TumblingWindow,
    Where,
    WindowAggregate,
)
from repro.engine.operators.base import Operator


class _NullSink(Operator):
    def __init__(self):
        super().__init__()
        self.events = 0

    def on_event(self, event):
        self.events += 1

    def on_punctuation(self, punctuation):
        pass

    def on_flush(self):
        pass


def make_operator(name):
    factories = {
        "where": lambda: Where(lambda e: e.key < 50),
        "tumbling_window": lambda: TumblingWindow(100),
        "window_count": lambda: WindowAggregate(Count()),
        "grouped_count": lambda: GroupedWindowAggregate(Count()),
        "sort": Sort,
        "session_window": lambda: SessionWindow(50),
        "coalesce": Coalesce,
        "pattern_match": lambda: PatternMatch(
            lambda e: e.key == 1, lambda e: e.key == 2, within=100
        ),
    }
    return factories[name]()


OPERATORS = (
    "where", "tumbling_window", "window_count", "grouped_count", "sort",
    "session_window", "coalesce", "pattern_match",
)


def drive(name, n) -> float:
    """Stream n ordered events through one operator; return M events/s."""
    op = make_operator(name)
    sink = _NullSink()
    op.add_downstream(sink)
    window = 100
    events = [
        Event(t - t % window, t - t % window + window, key=t % 100)
        for t in range(n)
    ]
    start = time.perf_counter()
    for i, event in enumerate(events):
        op.on_event(event)
        if i % 10_000 == 9_999:
            op.on_punctuation(Punctuation(event.sync_time - window))
    op.on_flush()
    return n / (time.perf_counter() - start) / 1e6


@pytest.mark.parametrize("name", OPERATORS)
def bench_operator(benchmark, N, name):
    n = min(N, 100_000)
    meps = benchmark.pedantic(lambda: drive(name, n), rounds=1, iterations=1)
    benchmark.extra_info["throughput_meps"] = meps


def report(n=None):
    n = min(n or stream_length(), 100_000)
    rows = [
        [name, round(drive(name, n), 3)] for name in OPERATORS
    ]
    print(format_table(
        ["operator", "M events/s"], rows,
        title=f"Operator microbenchmarks (ordered input, n={n})",
    ))


if __name__ == "__main__":
    report()
