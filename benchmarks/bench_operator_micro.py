"""Operator microbenchmarks: per-operator event throughput.

Not a paper figure — an engineering table that localizes where the
row-oriented pipeline spends its time (and therefore how much headroom
each Figure 9 push-down has).  Each cell streams N pre-ordered events
through a single operator instance into a counting sink.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import stream_length
from repro.bench.reporting import format_table
from repro.engine.event import Event, Punctuation
from repro.engine.operators import (
    Coalesce,
    Count,
    GroupedWindowAggregate,
    PatternMatch,
    SessionWindow,
    Sort,
    TumblingWindow,
    Where,
    WindowAggregate,
)
from repro.engine.operators.base import Operator


class _NullSink(Operator):
    def __init__(self):
        super().__init__()
        self.events = 0

    def on_event(self, event):
        self.events += 1

    def on_punctuation(self, punctuation):
        pass

    def on_flush(self):
        pass


def make_operator(name):
    factories = {
        "where": lambda: Where(lambda e: e.key < 50),
        "tumbling_window": lambda: TumblingWindow(100),
        "window_count": lambda: WindowAggregate(Count()),
        "grouped_count": lambda: GroupedWindowAggregate(Count()),
        "sort": Sort,
        "session_window": lambda: SessionWindow(50),
        "coalesce": Coalesce,
        "pattern_match": lambda: PatternMatch(
            lambda e: e.key == 1, lambda e: e.key == 2, within=100
        ),
    }
    return factories[name]()


OPERATORS = (
    "where", "tumbling_window", "window_count", "grouped_count", "sort",
    "session_window", "coalesce", "pattern_match",
)


def drive(name, n) -> float:
    """Stream n ordered events through one operator; return M events/s."""
    op = make_operator(name)
    sink = _NullSink()
    op.add_downstream(sink)
    window = 100
    events = [
        Event(t - t % window, t - t % window + window, key=t % 100)
        for t in range(n)
    ]
    start = time.perf_counter()
    for i, event in enumerate(events):
        op.on_event(event)
        if i % 10_000 == 9_999:
            op.on_punctuation(Punctuation(event.sync_time - window))
    op.on_flush()
    return n / (time.perf_counter() - start) / 1e6


@pytest.mark.parametrize("name", OPERATORS)
def bench_operator(benchmark, N, name):
    n = min(N, 100_000)
    meps = benchmark.pedantic(lambda: drive(name, n), rounds=1, iterations=1)
    benchmark.extra_info["throughput_meps"] = meps


def _overhead_elements(n, window=100):
    events = []
    for t in range(n):
        events.append(Event(t, t + 1, key=t % 100))
        if t % 1_000 == 999:
            events.append(Punctuation(t - window))
    return events


def _drive_pipeline(elements, n, registry=None) -> float:
    """Drive where→window→count through the query engine; M events/s.

    With ``registry`` the pipeline is instrumented; without it the
    operators run the unmodified class methods — the metrics-disabled
    configuration whose cost must match the uninstrumented seed.
    """
    from repro.engine.stream import Streamable

    stream = (
        Streamable.from_elements(elements)
        .where(lambda e: e.key < 50)
        .tumbling_window(100)
        .count()
    )
    start = time.perf_counter()
    stream.collect(metrics=registry)
    return n / (time.perf_counter() - start) / 1e6


def instrumentation_overhead(n, rounds=5) -> dict:
    """Best-of-``rounds`` throughput, bare vs MetricsRegistry-attached.

    The disabled case exercises exactly the seed code path (hooks are
    per-instance and none are installed), so its only possible regression
    is structural — see :func:`check` for the hard guard.  The enabled
    case quantifies the cost of turning metrics on.
    """
    from repro.observability import MetricsRegistry

    elements = _overhead_elements(n)
    plain = max(_drive_pipeline(elements, n) for _ in range(rounds))
    instrumented = max(
        _drive_pipeline(elements, n, MetricsRegistry())
        for _ in range(rounds)
    )
    return {
        "plain_meps": plain,
        "metrics_meps": instrumented,
        "enabled_overhead_pct": (plain / instrumented - 1.0) * 100.0,
    }


def check(n, max_enabled_slowdown=10.0) -> int:
    """CI gate for instrumentation regressions; returns an exit code.

    1. *Structural zero-cost*: a freshly built pipeline must carry no
       per-instance signal wrappers, and a detached registry must leave
       none behind — this is the guarantee that metrics-*disabled* runs
       are byte-for-byte the seed hot path (< 5% is then automatic).
    2. *Results unchanged*: an instrumented run must produce the same
       output as a bare run.
    3. *Enabled cost bounded*: metrics-on throughput must stay within
       ``max_enabled_slowdown``x of bare (a loose, noise-proof bound
       that still catches pathological hook regressions).
    """
    from repro.engine.stream import Streamable
    from repro.observability import MetricsRegistry

    signals = ("on_event", "on_punctuation", "on_flush",
               "emit_event", "emit_punctuation")
    elements = _overhead_elements(min(n, 20_000))

    def build():
        return (
            Streamable.from_elements(list(elements))
            .where(lambda e: e.key < 50)
            .tumbling_window(100)
            .count()
        )

    bare = build().collect()

    registry = MetricsRegistry()
    instrumented = build().collect(metrics=registry)
    if [(e.sync_time, e.payload) for e in bare.events] != \
            [(e.sync_time, e.payload) for e in instrumented.events]:
        print("FAIL: instrumented run changed query results")
        return 1

    # Structural zero-cost: no wrappers on fresh operators...
    fresh = Operator()
    leaked = [s for s in signals if s in fresh.__dict__]
    if leaked:
        print(f"FAIL: fresh operator carries instance wrappers: {leaked}")
        return 1
    # ...and none left behind after detach.
    attached = [(op, dict(originals))
                for op, originals in registry._attached]
    registry.detach()
    dirty = [
        (type(op).__name__, s)
        for op, originals in attached
        for s in originals
        if s in op.__dict__
    ]
    if dirty:
        print(f"FAIL: detach left wrappers installed: {dirty}")
        return 1

    numbers = instrumentation_overhead(min(n, 20_000), rounds=3)
    slowdown = numbers["plain_meps"] / max(numbers["metrics_meps"], 1e-9)
    print(
        f"instrumentation check: plain={numbers['plain_meps']:.3f} M/s, "
        f"enabled={numbers['metrics_meps']:.3f} M/s "
        f"({slowdown:.2f}x slowdown enabled; disabled path is "
        f"structurally identical to seed)"
    )
    if slowdown > max_enabled_slowdown:
        print(
            f"FAIL: enabled instrumentation slowdown {slowdown:.2f}x "
            f"exceeds {max_enabled_slowdown}x"
        )
        return 1
    print("instrumentation check: OK")
    return 0


def report(n=None):
    n = min(n or stream_length(), 100_000)
    rows = [
        [name, round(drive(name, n), 3)] for name in OPERATORS
    ]
    print(format_table(
        ["operator", "M events/s"], rows,
        title=f"Operator microbenchmarks (ordered input, n={n})",
    ))
    numbers = instrumentation_overhead(min(n, 50_000), rounds=3)
    print(
        f"observability: bare pipeline {numbers['plain_meps']:.3f} M/s, "
        f"metrics enabled {numbers['metrics_meps']:.3f} M/s "
        f"(+{numbers['enabled_overhead_pct']:.1f}% when enabled; "
        f"disabled hooks are per-instance no-ops, 0% by construction)"
    )


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument(
        "--check", action="store_true",
        help="run the CI instrumentation-overhead gate instead of the "
             "report; exits non-zero on regression",
    )
    args = parser.parse_args()
    if args.check:
        sys.exit(check(args.n or stream_length(20_000)))
    report(args.n)
