"""Ablation — ingress batching inside the sorter (DESIGN.md §3).

Trill ingests columnar batches; our scalar ``ImpatienceSorter`` mirrors
that with an O(1)-append staging area consumed at punctuations
(``extend``), versus dealing every event into the run pool on arrival
(``insert``).  The staging area is a pure constant-factor choice — the
per-punctuation algorithm is identical — and this ablation measures what
it is worth per dataset and batch size.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import reorder_latency_for
from repro.bench import stream_length
from repro.bench.reporting import format_table
from repro.core.impatience import ImpatienceSorter
from repro.workloads import load_dataset

DATASETS = ("cloudlog", "androidlog", "synthetic")
BATCHES = (1, 64, 4_096)


#: Punctuation cadence, fixed across batch sizes so the ablation isolates
#: the ingress path (insert-per-event vs staged extend) alone.
PUNCTUATE_EVERY = 4_096


def run(timestamps, batch, latency):
    """Drive the sorter in `batch`-sized extend() calls; M events/s."""
    sorter = ImpatienceSorter()
    start = time.perf_counter()
    high = None
    since_punctuation = 0
    for i in range(0, len(timestamps), batch):
        chunk = timestamps[i:i + batch]
        if batch == 1:
            sorter.insert(chunk[0])
        else:
            sorter.extend(chunk)
        tail = max(chunk)
        high = tail if high is None or tail > high else high
        since_punctuation += len(chunk)
        if since_punctuation >= PUNCTUATE_EVERY:
            since_punctuation = 0
            ts = high - latency
            if sorter.watermark == float("-inf") or ts > sorter.watermark:
                sorter.on_punctuation(ts)
    sorter.flush()
    return len(timestamps) / (time.perf_counter() - start) / 1e6


@pytest.mark.parametrize("batch", BATCHES)
@pytest.mark.parametrize("name", DATASETS)
def bench_ingress_batch(benchmark, datasets, N, name, batch):
    timestamps = datasets[name].timestamps
    latency = reorder_latency_for(name, N)
    meps = benchmark.pedantic(
        lambda: run(timestamps, batch, latency), rounds=1, iterations=1
    )
    benchmark.extra_info["throughput_meps"] = meps


def report(n=None):
    n = n or stream_length()
    rows = []
    for name in DATASETS:
        timestamps = load_dataset(name, n).timestamps
        latency = reorder_latency_for(name, n)
        row = [name] + [
            round(run(timestamps, batch, latency), 3) for batch in BATCHES
        ]
        row.append(round(row[-1] / row[1], 2))
        rows.append(row)
    print(format_table(
        ["dataset", *(f"batch={b}" for b in BATCHES), "speedup"],
        rows,
        title="Ablation: sorter ingress batching (extend vs per-insert)",
    ))


if __name__ == "__main__":
    report()
