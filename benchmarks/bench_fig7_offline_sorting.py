"""Figure 7 — throughput of offline sorting algorithms.

(a) real datasets (CloudLog, AndroidLog) with the HM / SRS ablations;
(b) synthetic, varying the amount of disorder d ∈ {1024, 256, 64, 16, 4};
(c) synthetic, varying the percent of disorder p ∈ {100, 30, 10, 3, 1}.

Expected shape (paper): Impatience beats every competitor on the real
logs (+36.2% / +24.6% over the best); Heapsort is flat and worst;
Impatience/Timsort converge as disorder vanishes; HM is worth up to ~30%
and SRS up to ~15% (strongest on AndroidLog's long runs).
"""

from __future__ import annotations

import pytest

from repro.bench import stream_length, offline_throughput
from repro.bench.reporting import format_table
from repro.workloads import load_dataset

ALGORITHMS = (
    "impatience", "impatience-no-hm", "impatience-no-hm-srs",
    "quicksort", "timsort", "heapsort",
)
SWEEP_ALGORITHMS = ("impatience", "quicksort", "timsort", "heapsort")
AMOUNTS = (1024, 256, 64, 16, 4)
PERCENTS = (100, 30, 10, 3, 1)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("name", ["cloudlog", "androidlog"])
def bench_fig7a_real_datasets(benchmark, datasets, name, algorithm):
    timestamps = datasets[name].timestamps
    meps = benchmark.pedantic(
        lambda: offline_throughput(algorithm, timestamps),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["throughput_meps"] = meps


@pytest.mark.parametrize("algorithm", SWEEP_ALGORITHMS)
@pytest.mark.parametrize("amount", AMOUNTS)
def bench_fig7b_amount_of_disorder(benchmark, N, amount, algorithm):
    dataset = load_dataset(
        "synthetic", min(N, 50_000), percent_disorder=50,
        amount_disorder=amount,
    )
    meps = benchmark.pedantic(
        lambda: offline_throughput(algorithm, dataset.timestamps),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["throughput_meps"] = meps


@pytest.mark.parametrize("algorithm", SWEEP_ALGORITHMS)
@pytest.mark.parametrize("percent", PERCENTS)
def bench_fig7c_percent_of_disorder(benchmark, N, percent, algorithm):
    dataset = load_dataset(
        "synthetic", min(N, 50_000), percent_disorder=percent,
        amount_disorder=64,
    )
    meps = benchmark.pedantic(
        lambda: offline_throughput(algorithm, dataset.timestamps),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["throughput_meps"] = meps


def report(n=None):
    n = n or stream_length()
    rows = []
    for name in ("cloudlog", "androidlog"):
        timestamps = load_dataset(name, n).timestamps
        row = [name] + [
            round(offline_throughput(a, timestamps), 3) for a in ALGORITHMS
        ]
        rows.append(row)
    print(format_table(
        ["dataset", *ALGORITHMS], rows,
        title="Figure 7(a): offline throughput, M events/s",
    ))

    for label, sweep, fixed in (
        ("7(b): amount of disorder d (p=50%)", AMOUNTS, "amount"),
        ("7(c): percent of disorder p (d=64)", PERCENTS, "percent"),
    ):
        rows = []
        for value in sweep:
            kwargs = (
                {"percent_disorder": 50, "amount_disorder": value}
                if fixed == "amount"
                else {"percent_disorder": value, "amount_disorder": 64}
            )
            timestamps = load_dataset("synthetic", n, **kwargs).timestamps
            rows.append([value] + [
                round(offline_throughput(a, timestamps), 3)
                for a in SWEEP_ALGORITHMS
            ])
        print()
        print(format_table(
            [fixed, *SWEEP_ALGORITHMS], rows,
            title=f"Figure {label}, M events/s",
        ))


if __name__ == "__main__":
    report()
