"""Figure 9 — speedup of sort-as-needed execution.

Compares running an order-insensitive operator *before* the sorting
operator (push-down) versus *after* it, for:

(a) selection at varying selectivity (paper: up to ~7× speedup,
    sub-linear in 1/s because the bitmap/scan cost remains);
(b) projection at varying projected column count (paper: up to ~1.5×,
    diluted by fixed per-event metadata);
(c) tumbling windows at varying size (paper: up to ~2.4×, weakest on
    AndroidLog whose runs are already long).
"""

from __future__ import annotations

import pytest

from repro.bench import stream_length, sort_as_needed_speedup
from repro.bench.reporting import format_table
from repro.workloads import load_dataset

SELECTIVITIES = (10, 25, 50, 75, 100)
PROJECTIONS = (1, 2, 4)
WINDOWS = (1, 100, 10_000, 1_000_000)
DATASETS = ("synthetic", "cloudlog", "androidlog")


def _load(name, n):
    if name == "synthetic":
        return load_dataset("synthetic", n, percent_disorder=30,
                            amount_disorder=64)
    return load_dataset(name, n)


def selection_ops(selectivity):
    threshold = selectivity  # keys are uniform over 0..99
    return lambda s: s.where(lambda e: e.key < threshold)


def projection_ops(columns):
    return lambda s: s.select_columns(list(range(columns)))


def window_ops(size):
    return lambda s: s.tumbling_window(size)


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
@pytest.mark.parametrize("name", DATASETS)
def bench_fig9a_selection(benchmark, N, name, selectivity):
    dataset = _load(name, min(N, 50_000))
    ops = selection_ops(selectivity)
    result = benchmark.pedantic(
        lambda: sort_as_needed_speedup(ops, ops, dataset),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(result)


@pytest.mark.parametrize("columns", PROJECTIONS)
@pytest.mark.parametrize("name", DATASETS)
def bench_fig9b_projection(benchmark, N, name, columns):
    dataset = _load(name, min(N, 50_000))
    ops = projection_ops(columns)
    result = benchmark.pedantic(
        lambda: sort_as_needed_speedup(ops, ops, dataset),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(result)


@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize("name", DATASETS)
def bench_fig9c_window(benchmark, N, name, window):
    dataset = _load(name, min(N, 50_000))
    ops = window_ops(window)
    result = benchmark.pedantic(
        lambda: sort_as_needed_speedup(ops, ops, dataset),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(result)


def report(n=None):
    n = min(n or stream_length(), 50_000)
    for title, sweep, make_ops in (
        ("Figure 9(a): selection selectivity (%)", SELECTIVITIES,
         selection_ops),
        ("Figure 9(b): projected columns", PROJECTIONS, projection_ops),
        ("Figure 9(c): tumbling window size", WINDOWS, window_ops),
    ):
        rows = []
        for value in sweep:
            row = [value]
            for name in DATASETS:
                result = sort_as_needed_speedup(
                    make_ops(value), make_ops(value), _load(name, n)
                )
                row.append(round(result["speedup"], 2))
            rows.append(row)
        print(format_table(["param", *DATASETS], rows, title=title))
        print()


if __name__ == "__main__":
    report()
