"""Ablation — merge schedules (DESIGN.md §3, items 4/5).

Quantifies the Huffman-merge design choice in isolation: for the same
partition-phase output, how many element moves (``merge_events``) and how
much wall time does each schedule spend?

* ``huffman`` — smallest-two-first (the paper's HM optimization);
* ``pairwise`` — balanced adjacent-pairs rounds (the no-HM baseline);
* ``kway`` — single k-way heap merge (classic Patience sort; the paper's
  predecessor work showed binary merges beat it on modern hardware).

Also reports the speculative-run-selection hit rate per dataset — the
quantity behind SRS being "especially effective on the Android dataset".
"""

from __future__ import annotations

import time

import pytest

from repro.bench import stream_length
from repro.bench.reporting import format_table
from repro.core.merge import MERGE_STRATEGIES
from repro.core.runs import RunPool
from repro.core.stats import SorterStats
from repro.workloads import load_dataset

DATASETS = ("cloudlog", "androidlog", "synthetic")


def partitioned_runs(timestamps):
    """Run the partition phase once; return drained (keys, items) runs."""
    pool = RunPool(speculative=True, keyless=True)
    pool.insert_batch(timestamps, timestamps)
    return pool.drain()


def merge_cost(runs, strategy):
    """(elapsed_seconds, merge_events) for one schedule over copied runs."""
    fresh = [(list(keys), list(keys)) for keys, _ in runs]
    stats = SorterStats()
    start = time.perf_counter()
    MERGE_STRATEGIES[strategy](fresh, stats)
    return time.perf_counter() - start, stats.merge_events


def srs_hit_rate(timestamps):
    stats = SorterStats()
    pool = RunPool(speculative=True, keyless=True, stats=stats)
    pool.insert_batch(timestamps, timestamps)
    total = stats.srs_hits + stats.binary_searches
    return stats.srs_hits / total if total else 0.0


@pytest.mark.parametrize("strategy", sorted(MERGE_STRATEGIES))
@pytest.mark.parametrize("name", DATASETS)
def bench_merge_schedule(benchmark, datasets, name, strategy):
    runs = partitioned_runs(datasets[name].timestamps)
    elapsed, moves = benchmark.pedantic(
        lambda: merge_cost(runs, strategy), rounds=1, iterations=1
    )
    benchmark.extra_info["merge_events"] = moves
    benchmark.extra_info["runs"] = len(runs)


@pytest.mark.parametrize("name", DATASETS)
def bench_srs_hit_rate(benchmark, datasets, name):
    timestamps = datasets[name].timestamps
    rate = benchmark.pedantic(
        lambda: srs_hit_rate(timestamps), rounds=1, iterations=1
    )
    benchmark.extra_info["srs_hit_rate"] = rate


def bench_huffman_never_moves_more(datasets, benchmark):
    """Invariant: Huffman's schedule is move-optimal among the three."""
    def check():
        for name in DATASETS:
            runs = partitioned_runs(datasets[name].timestamps)
            moves = {
                s: merge_cost(runs, s)[1] for s in MERGE_STRATEGIES
                if s != "kway"  # kway counts each event once by design
            }
            assert moves["huffman"] <= moves["pairwise"], name
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def report(n=None):
    n = n or stream_length()
    rows = []
    for name in DATASETS:
        timestamps = load_dataset(name, n).timestamps
        runs = partitioned_runs(timestamps)
        row = [name, len(runs)]
        for strategy in ("huffman", "pairwise", "kway"):
            elapsed, moves = merge_cost(runs, strategy)
            row += [round(elapsed * 1000, 1), moves]
        row.append(round(srs_hit_rate(timestamps), 3))
        rows.append(row)
    print(format_table(
        ["dataset", "runs", "HM ms", "HM moves", "pairwise ms",
         "pairwise moves", "kway ms", "kway moves", "SRS hit rate"],
        rows,
        title="Ablation: merge schedules and SRS hit rate",
    ))


if __name__ == "__main__":
    report()
