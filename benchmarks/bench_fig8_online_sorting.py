"""Figure 8 — throughput of online (incremental) sorting algorithms
versus punctuation frequency.

(a) synthetic (p=30%, d=64); (b) CloudLog; (c) AndroidLog.
Punctuation frequency = events between punctuations; reorder latency is
tuned per dataset (Section VI-B2).

Expected shape (paper): Impatience sort wins everywhere — modestly on the
synthetic data (1.3–2.1×), massively on the real logs at high punctuation
frequency (1.3–4.4× CloudLog, 1.3–7.9× AndroidLog) because the
buffered-adapter baselines rewrite the whole sorted buffer on every
punctuation, while Impatience only touches head runs.  Heapsort is
frequency-insensitive but uniformly slow.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import reorder_latency_for
from repro.bench import stream_length, online_throughput
from repro.bench.reporting import format_table
from repro.workloads import load_dataset

ALGORITHMS = ("impatience", "patience", "quicksort", "timsort", "heapsort")
FREQUENCIES = (10, 100, 1_000, 10_000)
DATASETS = ("synthetic", "cloudlog", "androidlog")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("frequency", FREQUENCIES)
@pytest.mark.parametrize("name", DATASETS)
def bench_fig8_online(benchmark, datasets, N, name, frequency, algorithm):
    timestamps = datasets[name].timestamps
    latency = reorder_latency_for(name, N)
    meps = benchmark.pedantic(
        lambda: online_throughput(algorithm, timestamps, frequency, latency),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["throughput_meps"] = meps


def report_placement_delta(n=None):
    """Micro-optimization delta: C-bisect run placement (default) versus
    the pure-Python binary search it replaced, same workload as Fig. 8."""
    n = n or stream_length()
    rows = []
    for name in DATASETS:
        dataset = load_dataset(
            "synthetic", n, percent_disorder=30, amount_disorder=64
        ) if name == "synthetic" else load_dataset(name, n)
        latency = reorder_latency_for(name, n)
        for frequency in (100, 10_000):
            # Best of 3: single passes are too noisy to read a
            # constant-factor micro-optimization off.
            bisect_meps = max(online_throughput(
                "impatience", dataset.timestamps, frequency, latency
            ) for _ in range(3))
            binary_meps = max(online_throughput(
                "impatience-binary-place", dataset.timestamps, frequency,
                latency,
            ) for _ in range(3))
            rows.append([
                name, frequency, round(bisect_meps, 3),
                round(binary_meps, 3),
                round(bisect_meps / binary_meps, 3),
            ])
    print(format_table(
        ["dataset", "punct freq", "bisect", "binary", "bisect/binary"],
        rows,
        title="Impatience run-placement ablation: throughput, M events/s",
    ))
    print()


def report(n=None):
    n = n or stream_length()
    for name in DATASETS:
        dataset = load_dataset(
            "synthetic", n, percent_disorder=30, amount_disorder=64
        ) if name == "synthetic" else load_dataset(name, n)
        latency = reorder_latency_for(name, n)
        rows = []
        for frequency in FREQUENCIES:
            row = [frequency]
            results = {
                a: online_throughput(
                    a, dataset.timestamps, frequency, latency
                )
                for a in ALGORITHMS
            }
            row += [round(results[a], 3) for a in ALGORITHMS]
            best_other = max(v for k, v in results.items()
                             if k != "impatience")
            row.append(round(results["impatience"] / best_other, 2))
            rows.append(row)
        print(format_table(
            ["punct freq", *ALGORITHMS, "imp/best"],
            rows,
            title=(
                f"Figure 8 ({name}, latency={latency}): online throughput, "
                "M events/s"
            ),
        ))
        print()


if __name__ == "__main__":
    report()
    report_placement_delta()
