"""Ablation — related-work baselines vs the Impatience design (§VII).

Two strategies the paper argues against, measured head-to-head on the
windowed-count workload:

* **k-slack** (Srivastava & Widom): reorder with a fixed slack bound.
  Compared on the completeness it achieves for a given effective latency
  versus punctuation-driven Impatience sort at the same latency.
* **Speculation** (Barga et al.): no sorting, provisional outputs plus
  retractions.  Compared on output (revision) traffic and resident state
  versus the advanced Impatience framework, which delivers clean streams
  per latency with bounded buffering.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.bench_fig10_framework import latencies_for, window_for
from repro.bench import stream_length
from repro.bench.reporting import format_table
from repro.engine.event import Event, Punctuation
from repro.engine.operators import Collector, Count
from repro.framework.audit import run_method
from repro.framework.queries import make_query
from repro.framework.speculation import SpeculativeWindowAggregate
from repro.sorting.kslack import KSlackTime
from repro.workloads import load_dataset

DATASETS = ("cloudlog", "androidlog")


def run_kslack(timestamps, k):
    """Sort a stream with time-slack k; return (throughput, completeness)."""
    slack = KSlackTime(k)
    emitted = 0
    start = time.perf_counter()
    for t in timestamps:
        slack.insert(t)
        emitted += len(slack.drain_ready())
    emitted += len(slack.flush())
    elapsed = time.perf_counter() - start
    return (
        len(timestamps) / elapsed / 1e6,
        emitted / len(timestamps),
    )


def run_speculation(dataset, window, punctuation_frequency):
    """Speculative windowed count; returns traffic + state metrics."""
    op = SpeculativeWindowAggregate(Count(), window)
    sink = Collector()
    op.add_downstream(sink)
    high = None
    start = time.perf_counter()
    for i, t in enumerate(dataset.timestamps):
        op.on_event(Event(t))
        high = t if high is None or t > high else high
        if i % punctuation_frequency == punctuation_frequency - 1:
            op.on_punctuation(Punctuation(high))
    op.on_flush()
    elapsed = time.perf_counter() - start
    return {
        "throughput_meps": len(dataset) / elapsed / 1e6,
        "revision_messages": op.revision_messages,
        "retractions": op.retractions,
        "resident_windows": len(dataset.timestamps) and op.buffered_count(),
        "final_results": len({e.sync_time for e in sink.events}),
    }


@pytest.mark.parametrize("name", DATASETS)
def bench_kslack_vs_impatience_completeness(benchmark, datasets, N, name):
    """At the same latency bound, punctuated Impatience keeps at least as
    many events as k-slack, and both keep fewer as the bound shrinks."""
    timestamps = datasets[name].timestamps
    k = max(N // 50, 1)

    def run():
        return run_kslack(timestamps, k)

    meps, completeness = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0.0 < completeness <= 1.0
    benchmark.extra_info["kslack_meps"] = meps
    benchmark.extra_info["kslack_completeness"] = completeness


@pytest.mark.parametrize("name", DATASETS)
def bench_speculation_traffic(benchmark, datasets, N, name):
    """Speculation's revision traffic exceeds the number of true results —
    the §VII 'non-trivial amount of revision traffic'."""
    dataset = datasets[name]
    result = benchmark.pedantic(
        lambda: run_speculation(dataset, window_for(N), 1_000),
        rounds=1, iterations=1,
    )
    assert result["revision_messages"] > result["final_results"]
    benchmark.extra_info.update(result)


def report(n=None):
    n = n or stream_length()
    rows = []
    for name in DATASETS:
        dataset = load_dataset(name, n)
        latencies = latencies_for(name, n)
        k = latencies[-1]
        meps, completeness = run_kslack(dataset.timestamps, k)
        adv = run_method(
            "advanced", dataset, make_query("Q1", window_size=window_for(n)),
            latencies, punctuation_frequency=10_000,
        )
        spec = run_speculation(dataset, window_for(n), 1_000)
        rows.append([
            name,
            round(meps, 3), f"{completeness:.1%}",
            round(adv.throughput_meps, 3), f"{adv.final_completeness:.1%}",
            round(spec["throughput_meps"], 3),
            spec["revision_messages"], spec["final_results"],
            spec["resident_windows"],
        ])
    print(format_table(
        ["dataset", "kslack M/s", "kslack compl", "adv M/s", "adv compl",
         "spec M/s", "spec msgs", "true results", "spec state"],
        rows,
        title="Ablation: k-slack and speculation vs Impatience framework",
    ))


if __name__ == "__main__":
    report()
