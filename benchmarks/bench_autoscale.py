"""Adaptive worker autoscaling vs peak-provisioned fixed pools.

The headline measurement for the elastic shard runtime (see
``docs/parallelism.md`` §Autoscaling): a bursty 500k-event cloudlog
workload — long quiet phases around a heavy middle burst, the traffic
shape fixed pools cannot size for — run three ways through the same
coordinator and compiled grouped-sum plan:

``fixed-wN``
    Fixed pools across the sweep, including the *peak-provisioned*
    pool (``W_MAX``, what you'd deploy to survive the burst).

``auto``
    ``--parallel auto:1-W_MAX``: the coordinator grows the pool at the
    burst and retires workers when traffic drains, moving state by
    checkpoint handoff at punctuation barriers.

Every timed run is multiset-equivalence-checked against the 1-worker
output (shard tie order in the merged stream legitimately varies across
pool sizes; the event multiset and the punctuation sequence never do) —
a throughput number obtained by dropping events can never be recorded.

Acceptance bars (asserted on canonical full runs), both against the
peak-provisioned pool — the fixed deployment the autoscaler replaces
(on an oversubscribed single-core host, *smaller* fixed pools beat
``W_MAX`` on wall clock, so "best fixed" would reward never scaling up
at all; the operationally honest baseline is the pool you would have to
run to survive the burst):

* ``auto`` throughput >= 90% of the ``fixed-wW_MAX`` pool's (the
  autoscaler must ride the burst, not trail it);
* ``auto`` worker-seconds <= 70% of the ``fixed-wW_MAX`` pool's (the
  point of elasticity: don't pay W_MAX all day for a one-phase burst);
* equivalence on every run (always, smoke included).

A second section measures the ring idle-spin fix that feeds the
autoscaler's stall telemetry: the same quiet-heavy-quiet stream on a
2-worker fixed pool with the hot-then-backoff-then-**park** wait
enabled vs disabled (``repro.parallel.shm.PARK_ENABLED``), recording
summed worker CPU seconds from the STATS frames — parked waits burn
measurably less CPU during the quiet phases.

``python -m benchmarks.bench_autoscale`` writes
``BENCH_autoscale.json``; the file is only refreshed at the canonical
``DEFAULT_N`` so a quick ``--n`` pass can't replace the
regression-tracking baseline with a toy trajectory.  ``--smoke`` runs a
seconds-scale subset for CI and skips the JSON write.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.bench.reporting import format_table
from repro.core.late import LatePolicy
from repro.engine import QueryPlan
from repro.engine.batch import EventBatch
from repro.engine.event import Punctuation
from repro.engine.kernels import field
from repro.engine.operators.aggregates import Sum
from repro.parallel import (
    AutoscalePolicy,
    CompiledShardPlan,
    run_parallel,
)
from repro.parallel import shm
from repro.workloads import load_dataset

DEFAULT_N = 500_000
W_MAX = 4
FIXED_SWEEP = (1, 2, W_MAX)
TRIALS = 3
ROUNDS = 60
HEAVY = range(20, 32)       # the burst: rounds 20..31
HEAVY_SHARE = 0.55          # fraction of events inside the burst
BATCH_SIZE = 65_536
RING_CAPACITY = 1 << 21
RESULTS_PATH = "BENCH_autoscale.json"

SMOKE_N = 20_000
SMOKE_TRIALS = 1
SMOKE_ROUNDS = 16
SMOKE_HEAVY = range(6, 10)

# Policy watermarks are per-round event counts; derive from the
# workload so the trajectory is the same at any n.
COOLDOWN = 1


def _bursty_ingress(n, rounds=ROUNDS, heavy=HEAVY):
    """Quiet/burst/quiet columnar ingress with one punctuation per round.

    Events are dealt onto a round-robin timestamp grid inside each
    round's 1000-tick span, so every pool size sees the same late set
    (none — the punctuation trails the round) and the same per-round
    volume, which is what the policy's watermarks key on.  The
    punctuation lands exactly on the window boundary, flushing each
    round's window before the barrier — rescale handoffs ship group
    remnants, not a full round of buffered events, which is how a real
    deployment would schedule them too.
    """
    dataset = load_dataset("cloudlog", n)
    keys = np.asarray(dataset.keys, dtype=np.int64)
    n_heavy = int(n * HEAVY_SHARE)
    heavy_rounds = len(list(heavy))
    quiet_rounds = rounds - heavy_rounds
    per_heavy = n_heavy // heavy_rounds
    per_quiet = (n - per_heavy * heavy_rounds) // quiet_rounds
    out = []
    cursor = 0
    span = 1_000
    for rnd in range(rounds):
        count = per_heavy if rnd in heavy else per_quiet
        count = min(count, n - cursor)
        if count > 0:
            k = keys[cursor:cursor + count]
            ts = rnd * span + (
                np.arange(count, dtype=np.int64) * 7919 % span
            )
            out.append(EventBatch(ts, ts + 1, k, [k % 13, ts % 23]))
            cursor += count
        out.append(Punctuation((rnd + 1) * span))
    return out, per_heavy, per_quiet


def _plan():
    return CompiledShardPlan(
        QueryPlan()
        .tumbling_window(1_000)
        .sort(late_policy=LatePolicy.DROP)
        .group_aggregate(Sum(field(1)))
    )


def _policy(per_heavy, per_quiet):
    """Watermarks between the two phase volumes: grow at the burst,
    shrink in the quiet — deterministic (stall override disabled).

    ``high`` sits between the quiet per-round volume (no growth while
    quiet) and ``per_heavy / (W_MAX - 1)`` (every grow step up to
    ``W_MAX`` still sees per-worker volume above it during the burst);
    ``low`` between ``per_quiet / 2`` (a 2-pool in the quiet phase
    shrinks) and ``per_heavy / W_MAX`` (the full pool holds through the
    burst).  Midpoints of those bands keep the trajectory stable under
    integer-division jitter in the round volumes."""
    high = (per_quiet + per_heavy // (W_MAX - 1)) // 2
    low = (per_quiet // 2 + per_heavy // W_MAX) // 2
    return AutoscalePolicy(
        1, W_MAX, high=float(high), low=float(low),
        cooldown=COOLDOWN, stall_high=1e9,
    )


def _multiset(result):
    return sorted(
        (e.sync_time, e.key, e.payload) for e in result.events
    )


def _timed(ingress, n, workers, autoscale=None):
    start = time.perf_counter()
    result = run_parallel(
        iter(ingress), _plan(), workers,
        batch_size=BATCH_SIZE, ring_capacity=RING_CAPACITY,
        autoscale=autoscale,
    )
    elapsed = time.perf_counter() - start
    return n / elapsed, elapsed, result


def _worker_seconds(result, workers, elapsed):
    """Pool-seconds paid for the run.

    Fixed pools pay ``workers`` for the whole wall; an autoscaled run
    pays the per-round ``workers x wall`` integral the coordinator
    accrues, plus the final pool across the drain tail the signal trace
    doesn't cover."""
    autoscale = result.parallel.get("autoscale")
    if autoscale is None:
        return workers * elapsed
    signal_wall = sum(s["wall_s"] for s in autoscale["signals"])
    tail = max(0.0, elapsed - signal_wall)
    return autoscale["worker_seconds"] + autoscale["final_workers"] * tail


def _median(samples):
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def run_comparison(n=DEFAULT_N, trials=TRIALS, rounds=ROUNDS,
                   heavy=HEAVY):
    ingress, per_heavy, per_quiet = _bursty_ingress(n, rounds, heavy)
    entries = []
    reference = None
    eps_by_leg = {}
    ws_by_leg = {}
    config = {
        "n": n, "dataset": "cloudlog", "rounds": rounds,
        "burst_rounds": len(list(heavy)), "per_heavy": per_heavy,
        "per_quiet": per_quiet, "trials": trials,
    }
    for workers in FIXED_SWEEP:
        eps_samples, ws_samples = [], []
        for _ in range(trials):
            eps, elapsed, result = _timed(ingress, n, workers)
            key = _multiset(result)
            if reference is None:
                reference = key
            elif key != reference:
                raise AssertionError(
                    f"fixed-w{workers} diverged from fixed-w1"
                )
            eps_samples.append(eps)
            ws_samples.append(_worker_seconds(result, workers, elapsed))
        eps_by_leg[f"fixed-w{workers}"] = _median(eps_samples)
        ws_by_leg[f"fixed-w{workers}"] = _median(ws_samples)
        entries.append({
            "name": f"fixed-w{workers}",
            "config": dict(config, workers=workers, mode="fixed"),
            "events_per_sec": round(_median(eps_samples), 1),
            "worker_seconds": round(_median(ws_samples), 3),
        })
    eps_samples, ws_samples, rescale_counts = [], [], []
    trajectory = None
    for _ in range(trials):
        schedule = []
        policy = _policy(per_heavy, per_quiet)
        start = time.perf_counter()
        result = run_parallel(
            iter(ingress), _plan(), 1,
            batch_size=BATCH_SIZE, ring_capacity=RING_CAPACITY,
            autoscale=policy, rescale_schedule=schedule,
        )
        elapsed = time.perf_counter() - start
        if _multiset(result) != reference:
            raise AssertionError("autoscaled run diverged from fixed-w1")
        eps_samples.append(n / elapsed)
        ws_samples.append(_worker_seconds(result, 1, elapsed))
        rescale_counts.append(len(schedule))
        trajectory = [1] + [entry["workers"] for entry in schedule]
    auto_eps = _median(eps_samples)
    auto_ws = _median(ws_samples)
    entries.append({
        "name": "auto",
        "config": dict(
            config, workers=f"auto:1-{W_MAX}", mode="autoscale",
        ),
        "events_per_sec": round(auto_eps, 1),
        "worker_seconds": round(auto_ws, 3),
        "rescales": int(_median(rescale_counts)),
        "trajectory": trajectory,
        "throughput_vs_peak_pool": round(
            auto_eps / eps_by_leg[f"fixed-w{W_MAX}"], 3
        ),
        "worker_seconds_vs_peak_pool": round(
            auto_ws / ws_by_leg[f"fixed-w{W_MAX}"], 3
        ),
    })
    return entries


def run_park_comparison(n, rounds=ROUNDS, heavy=HEAVY):
    """Worker CPU with the parkable ring wait on vs off (fixed 2-pool).

    ``PARK_ENABLED`` is consulted at wait time and workers fork at run
    start, so toggling the module flag between runs is race-free."""
    ingress, _, _ = _bursty_ingress(n, rounds, heavy)
    entries = []
    saved = shm.PARK_ENABLED
    try:
        for park in (True, False):
            shm.PARK_ENABLED = park
            _, elapsed, result = _timed(ingress, n, 2)
            cpu = sum(
                s["cpu_s"] for s in result.parallel["shards"] if s
            )
            parks = sum(
                s["ring_wait"]["parks"]
                for s in result.parallel["shards"] if s
            )
            entries.append({
                "name": "park-on" if park else "park-off",
                "config": {"n": n, "workers": 2, "park": park},
                "worker_cpu_s": round(cpu, 3),
                "parks": parks,
                "wall_s": round(elapsed, 3),
            })
    finally:
        shm.PARK_ENABLED = saved
    on, off = entries[0], entries[1]
    on["idle_cpu_reduction"] = round(
        1.0 - on["worker_cpu_s"] / max(off["worker_cpu_s"], 1e-9), 3
    )
    return entries


def check_bars(entries):
    auto = next(e for e in entries if e["name"] == "auto")
    assert auto["throughput_vs_peak_pool"] >= 0.9, (
        f"autoscaled throughput {auto['throughput_vs_peak_pool']:.2f}x "
        f"of the fixed-w{W_MAX} pool; bar is 0.9x"
    )
    assert auto["worker_seconds_vs_peak_pool"] <= 0.7, (
        f"autoscaled worker-seconds {auto['worker_seconds_vs_peak_pool']:.2f}x "
        f"of the fixed-w{W_MAX} pool; bar is 0.7x"
    )
    assert auto["rescales"] >= 2, "pool never grew and shrank"


def write_results(entries, park_entries, path=RESULTS_PATH):
    with open(path, "w") as fh:
        json.dump(
            {
                "benchmark": "autoscale",
                "results": entries,
                "ring_park": park_entries,
            },
            fh, indent=2,
        )
        fh.write("\n")


def _print_tables(entries, park_entries, n):
    rows = [
        [
            entry["name"],
            entry["config"]["workers"],
            round(entry["events_per_sec"] / 1e6, 3),
            entry["worker_seconds"],
            entry.get("rescales", "-"),
            "→".join(map(str, entry["trajectory"]))
            if "trajectory" in entry else "-",
        ]
        for entry in entries
    ]
    print(format_table(
        ["run", "workers", "M events/s", "worker-s", "rescales",
         "trajectory"],
        rows,
        title=(
            f"Autoscaled vs fixed pools (cloudlog {n}, bursty, "
            "grouped sum, equivalence-checked)"
        ),
    ))
    if park_entries:
        print()
        print(format_table(
            ["run", "worker cpu s", "parks", "wall s"],
            [
                [e["name"], e["worker_cpu_s"], e["parks"], e["wall_s"]]
                for e in park_entries
            ],
            title="Ring wait: park vs pure spin (fixed 2-pool)",
        ))
        print(
            "idle-cpu reduction with parking: "
            f"{park_entries[0]['idle_cpu_reduction']:.1%}"
        )


def report(n=None):
    """Report-section entry point; refreshes the JSON only at the
    canonical ``DEFAULT_N``."""
    n = n or DEFAULT_N
    entries = run_comparison(n)
    park_entries = run_park_comparison(n)
    _print_tables(entries, park_entries, n)
    if n == DEFAULT_N:
        check_bars(entries)
        write_results(entries, park_entries)
        print(f"wrote {RESULTS_PATH}")
    else:
        print(f"n={n} != default {DEFAULT_N}; skipping {RESULTS_PATH} "
              "write")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=None,
                        help=f"stream length (default {DEFAULT_N})")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: small stream, one trial, no JSON "
                             "write — exercises the rescale machinery "
                             "and the equivalence assert only")
    parser.add_argument("--json", default=None,
                        help=f"results path (default {RESULTS_PATH}; "
                             "ignored with --smoke unless given)")
    args = parser.parse_args(argv)

    if args.smoke:
        n = args.n or SMOKE_N
        entries = run_comparison(
            n, SMOKE_TRIALS, SMOKE_ROUNDS, SMOKE_HEAVY
        )
        park_entries = run_park_comparison(
            n, SMOKE_ROUNDS, SMOKE_HEAVY
        )
        _print_tables(entries, park_entries, n)
        auto = next(e for e in entries if e["name"] == "auto")
        assert auto["rescales"] >= 2, "smoke run never rescaled"
        if args.json:
            write_results(entries, park_entries, args.json)
            print(f"wrote {args.json}")
        print("smoke OK")
        return
    n = args.n or DEFAULT_N
    entries = run_comparison(n)
    park_entries = run_park_comparison(n)
    _print_tables(entries, park_entries, n)
    if n == DEFAULT_N:
        check_bars(entries)
    if args.json is None and n != DEFAULT_N:
        print(f"n={n} != default {DEFAULT_N}; skipping {RESULTS_PATH} "
              "write (pass --json PATH to record a non-canonical run)")
        return
    path = args.json or RESULTS_PATH
    write_results(entries, park_entries, path)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
