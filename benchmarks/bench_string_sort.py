"""String-keyed sorting — offset-value-coded merges vs naive byte
comparison on long-shared-prefix service names.

The headline measurement behind the string stack (see
``docs/strings.md``): merging sorted runs of service-name keys like
``prod.cluster-03.svc.zone-1.host-00197`` — where hundreds of hosts
share a long cluster/zone prefix — with the naive comparator merge
(every comparison re-walks the shared prefix from byte 0) versus the
OVC-annotated merge (each key carries an offset-value code relative to
its run predecessor, so most comparisons are one integer compare and
ties resume at the first divergent byte).  Both merge the *same*
row-index runs over the *same* arena column, so the delta is purely the
comparison strategy.

Three invariants are *asserted*, not just reported:

* every timed merge's output is multiset- and order-equivalent to the
  row engine: the same keys pushed through the row-path
  :class:`~repro.core.impatience.ImpatienceSorter` with the ``"ovc"``
  merge strategy must produce the identical byte sequence;
* at the canonical scale the OVC merge is at least **2x** faster than
  the naive merge (the acceptance bar; measured ~4-5x);
* a 64 MB-budget :class:`~repro.sorting.external.ExternalColumnarSorter`
  carrying the string column through CRC-framed spill blocks is
  **byte-identical** (arena and offsets both) to the unbudgeted
  in-memory columnar sorter on the same stream.

``python -m benchmarks.bench_string_sort`` writes machine-readable
results to ``BENCH_strings.json``; the file is only refreshed at the
canonical ``n`` so a quick ``--n`` pass can't replace the baseline with
a toy trajectory.  ``--smoke`` runs a seconds-scale subset (20k events,
256 KB budget so the spill path actually spills) and skips the write.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.bench.reporting import format_table
from repro.core.columnar import ColumnarImpatienceSorter
from repro.core.impatience import ImpatienceSorter
from repro.core.strings import (
    OvcCounters,
    ovc_annotate_indices,
    ovc_index_merge,
    naive_index_merge,
)
from repro.sorting.external import ExternalColumnarSorter
from repro.workloads.strings import generate_cloudlog_strings

DEFAULT_N = 500_000
DEFAULT_BUDGET = 64 * 1024 ** 2
RESULTS_PATH = "BENCH_strings.json"

SMOKE_N = 20_000
SMOKE_BUDGET = 256 * 1024

N_SERVICES = 387
RUNS = 64        # sorted runs handed to the merge legs
BATCH = 16_384   # ingress batch size for the budgeted leg
PUNCTUATIONS = 3


def _workload(n):
    """Cloudlog-strings stream: per-event service-name column + codes.

    Service names repeat — log analytics groups millions of events onto
    hundreds of services — so sorted runs contain *streaks* of equal
    keys.  That is exactly where OVC pays: a duplicate carries code 0,
    so the merge bulk-copies whole streaks without touching a single
    key byte, while a comparator merge re-walks the ~30-byte shared
    prefix for every element it passes.
    """
    ds = generate_cloudlog_strings(n, n_services=N_SERVICES, seed=7)
    column = ds.string_payloads[0]
    codes = np.asarray(ds.keys, dtype=np.int64)
    ts = np.asarray(ds.timestamps, dtype=np.int64)
    return codes, column, ts


def _make_runs(codes, n_runs):
    """Split arrival order into ``n_runs`` internally-sorted index runs.

    Sorting each slice by dictionary code is sorting by bytes (the
    dictionary is order-preserving), so run formation is cheap and the
    timed legs isolate the *merge*.
    """
    n = codes.size
    runs = []
    for r in range(n_runs):
        lo = (n * r) // n_runs
        hi = (n * (r + 1)) // n_runs
        order = np.argsort(codes[lo:hi], kind="stable") + lo
        runs.append(order.tolist())
    return runs


def _row_engine_reference(column):
    """Sorted byte sequence per the row engine's OVC string sorter."""
    sorter = ImpatienceSorter(merge="ovc")
    for value in column.tolist():
        sorter.insert(value)
    return sorter.flush()


def _assert_row_equivalent(indices, column, reference, leg):
    got = column.take(np.asarray(indices, dtype=np.int64)).tolist()
    if got != reference:
        raise AssertionError(
            f"{leg} merge diverged from the row engine "
            f"({len(got)} vs {len(reference)} keys)"
        )


def _budgeted_leg(ts, column, budget):
    """Byte-identity of the budgeted external sorter on string columns."""
    lag = max((int(ts.max()) - int(ts.min())) // 6, 1)
    n = ts.size
    marks = {(n * (i + 1)) // (PUNCTUATIONS + 1)
             for i in range(PUNCTUATIONS)}

    def drive(sorter):
        outputs = []
        high = None
        for start in range(0, n, BATCH):
            stop = min(start + BATCH, n)
            sorter.insert_batch(
                ts[start:stop],
                string_columns=(column.slice(start, stop),),
            )
            top = int(ts[start:stop].max())
            high = top if high is None else max(high, top)
            if any(start < mark <= stop for mark in marks):
                outputs.append(sorter.on_punctuation(high - lag))
        outputs.append(sorter.flush())
        return outputs

    start = time.perf_counter()
    baseline = drive(ColumnarImpatienceSorter(string_columns=1))
    memory_eps = n / (time.perf_counter() - start)

    external = ExternalColumnarSorter(budget, string_columns=1)
    try:
        start = time.perf_counter()
        got = drive(external)
        external_eps = n / (time.perf_counter() - start)
        spill = external.spill_doc()
    finally:
        external.close()

    assert len(got) == len(baseline)
    for g, w in zip(got, baseline):
        gt, _, gs = g
        wt, _, ws = w
        if not np.array_equal(gt, wt):
            raise AssertionError("budgeted timestamps diverged")
        for gc, wc in zip(gs, ws):
            if gc.arena != wc.arena or not np.array_equal(
                gc.offsets, wc.offsets
            ):
                raise AssertionError(
                    f"budgeted string column not byte-identical "
                    f"(budget={budget})"
                )
    return memory_eps, external_eps, spill


def run_bench(n=DEFAULT_N, budget=DEFAULT_BUDGET):
    """Time the merge legs + the budgeted leg; returns the JSON entries."""
    codes, column, ts = _workload(n)
    runs = _make_runs(codes, min(RUNS, max(n // 64, 2)))
    reference = _row_engine_reference(column)

    start = time.perf_counter()
    naive_out = naive_index_merge(list(runs), column)
    naive_s = time.perf_counter() - start
    _assert_row_equivalent(naive_out, column, reference, "naive")

    start = time.perf_counter()
    annotated = [
        (run, ovc_annotate_indices(run, column)) for run in runs
    ]
    encode_s = time.perf_counter() - start

    counters = OvcCounters()
    start = time.perf_counter()
    ovc_out = ovc_index_merge(annotated, column, counters=counters)
    ovc_s = time.perf_counter() - start
    _assert_row_equivalent(ovc_out, column, reference, "ovc")

    merge_speedup = naive_s / ovc_s
    total_speedup = naive_s / (encode_s + ovc_s)
    if n >= DEFAULT_N:
        assert merge_speedup >= 2.0, (
            f"OVC merge speedup {merge_speedup:.2f}x below the 2x "
            f"acceptance bar at canonical scale"
        )

    memory_eps, external_eps, spill = _budgeted_leg(ts, column, budget)

    config = {
        "n": n, "dataset": "cloudlog-strings", "services": N_SERVICES,
        "runs": len(runs), "arena_bytes": len(column.arena),
        "avg_key_bytes": round(len(column.arena) / max(n, 1), 1),
    }
    return [
        {
            "name": "naive-merge",
            "config": config,
            "seconds": round(naive_s, 4),
            "keys_per_sec": round(n / naive_s, 1),
            "speedup_vs_naive": 1.0,
        },
        {
            "name": "ovc-merge",
            "config": config,
            "seconds": round(ovc_s, 4),
            "encode_seconds": round(encode_s, 4),
            "keys_per_sec": round(n / ovc_s, 1),
            "speedup_vs_naive": round(merge_speedup, 2),
            "speedup_including_encode": round(total_speedup, 2),
            "tie_rate": round(counters.ties / max(n, 1), 4),
            "tie_bytes_per_key": round(counters.tie_bytes / max(n, 1), 3),
        },
        {
            "name": f"external-strings-{budget // (1024 ** 2) or budget}",
            "config": {**config, "budget_bytes": budget},
            "events_per_sec": round(external_eps, 1),
            "slowdown_vs_memory": round(memory_eps / external_eps, 2),
            "spill": spill,
            "byte_identical": True,
        },
    ]


def write_results(entries, path=RESULTS_PATH):
    with open(path, "w") as fh:
        json.dump({"benchmark": "string_sort", "results": entries},
                  fh, indent=2)
        fh.write("\n")


def _print_table(entries, n, budget):
    rows = []
    for entry in entries:
        rows.append([
            entry["name"],
            entry.get("seconds", "-"),
            entry.get("speedup_vs_naive", "-"),
            entry.get("speedup_including_encode", "-"),
            entry.get("tie_rate", "-"),
            entry.get("slowdown_vs_memory", "-"),
        ])
    print(format_table(
        ["leg", "seconds", "speedup", "enc+merge", "tie rate",
         "ext slowdown"],
        rows,
        title=(
            f"String sort (cloudlog-strings {n}, {N_SERVICES} services, "
            f"budget {budget // 1024} KB, row-engine equivalence + "
            f"byte-identity checked)"
        ),
    ))


def report(n=None):
    """Report-section entry point; refreshes BENCH_strings.json only at
    the canonical DEFAULT_N."""
    n = n or DEFAULT_N
    budget = DEFAULT_BUDGET if n == DEFAULT_N else SMOKE_BUDGET
    entries = run_bench(n, budget)
    _print_table(entries, n, budget)
    if n == DEFAULT_N:
        write_results(entries)
        print(f"wrote {RESULTS_PATH}")
    else:
        print(f"n={n} != default {DEFAULT_N}; skipping {RESULTS_PATH} write")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=None,
                        help=f"stream length (default {DEFAULT_N})")
    parser.add_argument("--budget", type=int, default=None,
                        help=f"external-leg budget in bytes "
                             f"(default {DEFAULT_BUDGET})")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: 20k events under 256 KB, no JSON "
                             "write — exercises both merges, the row-"
                             "engine equivalence and the byte-identity "
                             "asserts")
    parser.add_argument("--json", default=None,
                        help="results path (default BENCH_strings.json; "
                             "ignored with --smoke unless given)")
    args = parser.parse_args(argv)

    if args.smoke:
        n = args.n or SMOKE_N
        budget = args.budget or SMOKE_BUDGET
        entries = run_bench(n, budget)
        _print_table(entries, n, budget)
        if args.json:
            write_results(entries, args.json)
            print(f"wrote {args.json}")
        print("smoke OK")
        return
    n = args.n or DEFAULT_N
    budget = args.budget or DEFAULT_BUDGET
    entries = run_bench(n, budget)
    _print_table(entries, n, budget)
    if args.json is None and (n != DEFAULT_N or budget != DEFAULT_BUDGET):
        print(f"non-canonical run (n={n}, budget={budget}); skipping "
              f"{RESULTS_PATH} write (pass --json PATH to record it)")
        return
    path = args.json or RESULTS_PATH
    write_results(entries, path)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
