"""Compiled parallel shard workers vs the row pipeline they replace.

The headline measurement for kernel-complete columnar lowering shipped
to shard workers (see ``docs/parallelism.md``): the canonical 500k-event
cloudlog workload — two derived payload columns, a two-predicate filter,
window push-down, grouped sum — run through
:func:`repro.parallel.run_parallel` at workers ∈ {1, 2, 4} twice per
worker count:

``row``
    The pre-compiler path end to end: per-event ``Event`` ingress and
    :class:`~repro.parallel.RowPlan` shard workers running the
    per-event operator pipeline (exactly what
    ``repro run --parallel N --engine row`` executes).

``compiled``
    The same element sequence as columnar :class:`EventBatch` ingress
    and :class:`~repro.parallel.CompiledShardPlan` workers running the
    fused columnar kernel pipeline.

Both legs see the same events, the same punctuation cadence, and hence
the same late set, through the same coordinator/merge runtime at the
same worker count — the speedup isolates the ingress representation and
the shard executor, which is precisely what the compiler work changed.
Every timed run is equivalence-checked against the row leg's output
multiset, so a speedup obtained by dropping or corrupting events can
never be recorded.

Timing is **median-of-paired-trials**: each trial times the row leg and
the compiled leg back to back, and the recorded ``speedup_vs_row`` is
the median of the per-trial ratios (``events_per_sec`` is the per-leg
median).  Multi-process runs on an oversubscribed host are
scheduler-noisy — the slow row leg especially, where one 4-worker run
can vary ~1.7x — and a best-of scheme would let one lucky row sample
swing the recorded ratio; paired medians track the typical, reproducible
comparison instead.

``python -m benchmarks.bench_compiled_parallel`` writes the machine-
readable trajectory to ``BENCH_compiled_parallel.json`` (schema per
entry: ``name``, ``config``, ``events_per_sec``, ``speedup_vs_row``);
the file is only refreshed at the canonical ``DEFAULT_N`` so a quick
``--n`` pass can't replace the regression-tracking baseline with a toy
trajectory.  ``--smoke`` runs a seconds-scale subset for CI and skips
the JSON write.  The acceptance bar: ``speedup_vs_row`` at 4 workers
must stay >= 20x.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.bench.reporting import format_table
from repro.core.impatience import ImpatienceSorter
from repro.core.late import LatePolicy
from repro.engine import QueryPlan
from repro.engine.batch import EventBatch
from repro.engine.event import Event, Punctuation
from repro.engine.kernels import field
from repro.engine.operators.aggregates import Sum
from repro.metrics.profile import suggest_reorder_latency
from repro.parallel import CompiledShardPlan, RowPlan, run_parallel
from repro.workloads import load_dataset

DEFAULT_N = 500_000
WORKER_SWEEP = (1, 2, 4)
BATCH_SIZE = 65_536
PUNCT_EVERY = 65_536
RING_CAPACITY = 1 << 23
TRIALS = 5
RESULTS_PATH = "BENCH_compiled_parallel.json"

SMOKE_N = 20_000
SMOKE_WORKERS = (1, 2)
SMOKE_TRIALS = 2

FILTER_SEV = 3      # field(0) > FILTER_SEV
FILTER_LAT = 20     # field(1) < FILTER_LAT


def _workload(n):
    """Timestamps, keys, two derived payload columns, window, latency.

    The payload columns model a severity-like and a latency-like field
    so the canonical query exercises multi-column predicates — per-event
    lambdas on the row path, fused masks on the compiled path."""
    dataset = load_dataset("cloudlog", n)
    ts = np.asarray(dataset.timestamps, dtype=np.int64)
    keys = np.asarray(dataset.keys, dtype=np.int64)
    sev = ts % 17
    lat = (ts * 7 + keys) % 23
    window = max(n // 100, 1)
    latency = suggest_reorder_latency(dataset.timestamps, 0.99)
    return ts, keys, sev, lat, window, latency


def _row_ingress(ts, keys, sev, lat, latency):
    """Arrival-order per-event stream (the pre-compiler ingress)."""
    out = []
    high = None
    next_punct = PUNCT_EVERY
    tl, kl, sl, ll = ts.tolist(), keys.tolist(), sev.tolist(), lat.tolist()
    for i in range(len(tl)):
        t = tl[i]
        out.append(Event(t, t + 1, kl[i], (sl[i], ll[i])))
        high = t if high is None or t > high else high
        if i + 1 >= next_punct:
            out.append(Punctuation(high - latency))
            next_punct += PUNCT_EVERY
    out.append(Punctuation(high))
    return out


def _columnar_ingress(ts, keys, sev, lat, latency):
    """The same element sequence as columnar EventBatch blocks.

    ``PUNCT_EVERY`` is a multiple of ``BATCH_SIZE`` (blocks never
    straddle a punctuation), so the sequence — and therefore which
    events count as late — is identical to the row stream's."""
    out = []
    high = None
    next_punct = PUNCT_EVERY
    for i in range(0, len(ts), BATCH_SIZE):
        chunk = ts[i:i + BATCH_SIZE]
        out.append(EventBatch(
            chunk, chunk + 1, keys[i:i + BATCH_SIZE],
            [sev[i:i + BATCH_SIZE], lat[i:i + BATCH_SIZE]],
        ))
        top = int(chunk.max())
        high = top if high is None else max(high, top)
        if i + BATCH_SIZE >= next_punct:
            out.append(Punctuation(high - latency))
            next_punct += PUNCT_EVERY
    out.append(Punctuation(high))
    return out


def _query_plan(window):
    """The canonical compiled plan: filter x2 |> window |> grouped sum."""
    return (
        QueryPlan()
        .where(field(0) > FILTER_SEV)
        .where(field(1) < FILTER_LAT)
        .tumbling_window(window)
        .sort(late_policy=LatePolicy.DROP)
        .group_aggregate(Sum(field(1)))
    )


def _row_plan(window):
    """The row-operator twin of :func:`_query_plan` (per-shard)."""
    def _sync(event):
        return event.sync_time

    return RowPlan(
        lambda s: s.group_aggregate(Sum(field(1))),
        sorter=lambda: ImpatienceSorter(
            key=_sync, late_policy=LatePolicy.DROP
        ),
        pre=lambda d: d.where(lambda e: e.payload[0] > FILTER_SEV)
        .where(lambda e: e.payload[1] < FILTER_LAT)
        .tumbling_window(window),
    )


def _event_key(event):
    return (event.sync_time, event.other_time, event.key, event.payload)


def _timed(ingress, plan_fn, workers, n):
    """One timed run; returns ``(events_per_sec, result)``."""
    start = time.perf_counter()
    result = run_parallel(
        iter(ingress), plan_fn(), workers,
        batch_size=BATCH_SIZE, ring_capacity=RING_CAPACITY,
    )
    return n / (time.perf_counter() - start), result


def _median(samples):
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def run_comparison(n=DEFAULT_N, workers_sweep=WORKER_SWEEP,
                   trials=TRIALS):
    """Run both legs across the worker sweep; returns the entry list.

    Every trial's compiled run is equivalence-checked against the same
    worker count's row output multiset (shard tie-break order in the
    merged stream legitimately varies *across* worker counts, the
    multiset never does)."""
    ts, keys, sev, lat, window, latency = _workload(n)
    row_ingress = _row_ingress(ts, keys, sev, lat, latency)
    col_ingress = _columnar_ingress(ts, keys, sev, lat, latency)
    entries = []
    reference = None
    for workers in workers_sweep:
        row_samples, compiled_samples, ratios = [], [], []
        for _ in range(trials):
            row_eps, row_result = _timed(
                row_ingress, lambda: _row_plan(window), workers, n
            )
            row_key = sorted(map(_event_key, row_result.events))
            if reference is None:
                reference = row_key
            elif row_key != reference:
                raise AssertionError(
                    f"row leg at workers={workers} diverged from "
                    f"workers={workers_sweep[0]}"
                )
            compiled_eps, compiled_result = _timed(
                col_ingress,
                lambda: CompiledShardPlan(_query_plan(window)),
                workers, n,
            )
            if sorted(map(_event_key, compiled_result.events)) != row_key:
                raise AssertionError(
                    f"compiled leg at workers={workers} diverged from "
                    "the row pipeline"
                )
            row_samples.append(row_eps)
            compiled_samples.append(compiled_eps)
            ratios.append(compiled_eps / row_eps)
        config = {
            "n": n, "dataset": "cloudlog", "window": window,
            "workers": workers, "batch_size": BATCH_SIZE,
            "punct_every": PUNCT_EVERY, "trials": trials,
        }
        entries.append({
            "name": f"row-w{workers}",
            "config": dict(config, ingress="events", plan="row"),
            "events_per_sec": round(_median(row_samples), 1),
            "speedup_vs_row": 1.0,
        })
        entries.append({
            "name": f"compiled-w{workers}",
            "config": dict(config, ingress="columnar", plan="compiled"),
            "events_per_sec": round(_median(compiled_samples), 1),
            "speedup_vs_row": round(_median(ratios), 2),
        })
    return entries


def write_results(entries, path=RESULTS_PATH):
    with open(path, "w") as fh:
        json.dump(
            {"benchmark": "compiled_parallel", "results": entries},
            fh, indent=2,
        )
        fh.write("\n")


def _print_table(entries, n):
    rows = [
        [
            entry["name"],
            entry["config"]["workers"],
            entry["config"]["plan"],
            round(entry["events_per_sec"] / 1e6, 3),
            entry["speedup_vs_row"],
        ]
        for entry in entries
    ]
    print(format_table(
        ["run", "workers", "plan", "M events/s", "speedup vs row"],
        rows,
        title=(
            f"Compiled shard workers vs row pipeline (cloudlog {n}, "
            "filtered grouped sum, equivalence-checked)"
        ),
    ))


def report(n=None):
    """Report-section entry point; refreshes the JSON only at the
    canonical ``DEFAULT_N``."""
    n = n or DEFAULT_N
    entries = run_comparison(n)
    _print_table(entries, n)
    if n == DEFAULT_N:
        write_results(entries)
        print(f"wrote {RESULTS_PATH}")
    else:
        print(f"n={n} != default {DEFAULT_N}; skipping {RESULTS_PATH} write")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=None,
                        help=f"stream length (default {DEFAULT_N})")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: small stream, workers {1,2}, no "
                             "JSON write — exercises both legs and the "
                             "equivalence assert only")
    parser.add_argument("--json", default=None,
                        help="results path (default "
                             f"{RESULTS_PATH}; ignored with --smoke "
                             "unless given)")
    args = parser.parse_args(argv)

    if args.smoke:
        n = args.n or SMOKE_N
        entries = run_comparison(n, SMOKE_WORKERS, SMOKE_TRIALS)
        _print_table(entries, n)
        if args.json:
            write_results(entries, args.json)
            print(f"wrote {args.json}")
        print("smoke OK")
        return
    n = args.n or DEFAULT_N
    entries = run_comparison(n)
    _print_table(entries, n)
    if args.json is None and n != DEFAULT_N:
        print(f"n={n} != default {DEFAULT_N}; skipping {RESULTS_PATH} "
              "write (pass --json PATH to record a non-canonical run)")
        return
    path = args.json or RESULTS_PATH
    write_results(entries, path)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
