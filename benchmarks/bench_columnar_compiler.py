"""Fused columnar compiler vs the row engine — same plan, both paths.

The headline measurement behind ``src/repro/engine/compiler.py``: the
500k-event cloudlog windowed grouped-aggregate plans run through
``QueryPlan.run`` once with ``engine="row"`` (the reference operator
DAG) and once with ``engine="auto"`` (which must compile — the run
asserts the columnar path was actually taken).  Every timed compiled run
is equivalence-checked byte-for-byte against the row run — events,
emission order, and punctuation stream — so a speedup obtained by
diverging from row semantics can never be recorded.

``python -m benchmarks.bench_columnar_compiler`` writes the machine-
readable trajectory to ``BENCH_columnar.json`` (schema per entry:
``name``, ``config``, ``row_events_per_sec``,
``columnar_events_per_sec``, ``speedup``) so future PRs can track
regressions; ``--smoke`` runs a seconds-scale subset for CI and skips
the JSON write.  The JSON is only refreshed at the canonical stream
length so a quick ``--n`` pass can't replace the regression baseline
with a toy trajectory.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.bench.reporting import format_table
from repro.engine import QueryPlan
from repro.engine.kernels import field
from repro.engine.operators.aggregates import Avg, Count, Max, Sum
from repro.metrics.profile import suggest_reorder_latency
from repro.workloads import load_dataset

DEFAULT_N = 500_000
PUNCT_EVERY = 8_192
RESULTS_PATH = "BENCH_columnar.json"

SMOKE_N = 20_000


def _queries(window):
    """Named plan builders, all compilable windowed grouped/ungrouped
    aggregates (window below the sort, §IV push-down)."""
    return [
        ("grouped-count",
         QueryPlan().tumbling_window(window).sort()
         .group_aggregate(Count())),
        ("grouped-sum",
         QueryPlan().tumbling_window(window).sort()
         .group_aggregate(Sum(field(0)))),
        ("grouped-avg",
         QueryPlan().tumbling_window(window).sort()
         .group_aggregate(Avg(field(1)))),
        ("grouped-max-top3",
         QueryPlan().tumbling_window(window).sort()
         .group_aggregate(Max(field(2))).top_k(3)),
        ("windowed-count",
         QueryPlan().tumbling_window(window).sort().count()),
        ("filtered-grouped-count",
         QueryPlan().where(field(3) % 4 != 0).tumbling_window(window)
         .sort().group_aggregate(Count())),
    ]


def run_compiler_bench(n=DEFAULT_N):
    """Run every query on both engines; returns the entry list.

    Raises ``AssertionError`` if a compiled run diverges from its row
    run or silently falls back to the row engine.
    """
    dataset = load_dataset("cloudlog", n)
    window = max(n // 100, 1)
    latency = suggest_reorder_latency(dataset.timestamps, 0.99)
    entries = []
    for name, plan in _queries(window):
        start = time.perf_counter()
        row = plan.run(dataset, PUNCT_EVERY, latency, engine="row")
        row_eps = n / (time.perf_counter() - start)

        start = time.perf_counter()
        compiled = plan.run(dataset, PUNCT_EVERY, latency, engine="auto")
        columnar_eps = n / (time.perf_counter() - start)

        if compiled.engine != "columnar":
            raise AssertionError(
                f"{name}: expected the columnar path, got "
                f"{compiled.engine} ({compiled.reason})"
            )
        if compiled.events != row.events:
            raise AssertionError(f"{name}: compiled events diverge from row")
        if compiled.punctuations != row.punctuations:
            raise AssertionError(
                f"{name}: compiled punctuations diverge from row"
            )
        entries.append({
            "name": name,
            "config": {
                "n": n, "dataset": "cloudlog", "window": window,
                "punct_every": PUNCT_EVERY, "reorder_latency": latency,
            },
            "row_events_per_sec": round(row_eps, 1),
            "columnar_events_per_sec": round(columnar_eps, 1),
            "speedup": round(columnar_eps / row_eps, 2),
        })
    return entries


def write_results(entries, path=RESULTS_PATH):
    with open(path, "w") as fh:
        json.dump({"benchmark": "columnar_compiler", "results": entries},
                  fh, indent=2)
        fh.write("\n")


def _print_table(entries, n):
    rows = [
        [
            entry["name"],
            round(entry["row_events_per_sec"] / 1e6, 3),
            round(entry["columnar_events_per_sec"] / 1e6, 3),
            entry["speedup"],
        ]
        for entry in entries
    ]
    print(format_table(
        ["query", "row M events/s", "columnar M events/s", "speedup"],
        rows,
        title=(
            f"Fused columnar compiler vs row engine (cloudlog {n}, "
            "equivalence-checked)"
        ),
    ))


def report(n=None):
    """Report-section entry point; refreshes BENCH_columnar.json only
    when run at the canonical DEFAULT_N."""
    n = n or DEFAULT_N
    entries = run_compiler_bench(n)
    _print_table(entries, n)
    if n == DEFAULT_N:
        write_results(entries)
        print(f"wrote {RESULTS_PATH}")
    else:
        print(f"n={n} != default {DEFAULT_N}; skipping {RESULTS_PATH} write")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=None,
                        help=f"stream length (default {DEFAULT_N})")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: small stream, no JSON write — "
                             "exercises both engines and the equivalence "
                             "assert only")
    parser.add_argument("--json", default=None,
                        help="results path (default BENCH_columnar.json; "
                             "ignored with --smoke unless given)")
    args = parser.parse_args(argv)

    if args.smoke:
        n = args.n or SMOKE_N
        entries = run_compiler_bench(n)
        _print_table(entries, n)
        if args.json:
            write_results(entries, args.json)
            print(f"wrote {args.json}")
        print("smoke OK")
        return
    n = args.n or DEFAULT_N
    entries = run_compiler_bench(n)
    _print_table(entries, n)
    if args.json is None and n != DEFAULT_N:
        print(f"n={n} != default {DEFAULT_N}; skipping {RESULTS_PATH} write "
              "(pass --json PATH to record a non-canonical run)")
        return
    path = args.json or RESULTS_PATH
    write_results(entries, path)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
