"""Parallel shard-runtime scaling — events/s across workers × batch size.

The headline measurement behind the parallel runtime (see
``docs/parallelism.md``): the 500k-event cloudlog grouped-count workload
run through :func:`repro.parallel.run_parallel` at workers ∈ {1, 2, 4, 8}
and ingress batch sizes {1k, 8k, 64k}, against the single-process
``shard_disordered`` row-operator baseline the runtime must match
byte-for-byte.  Every timed parallel run is also equivalence-checked
against the baseline's output multiset, so a speedup obtained by
dropping events can never be recorded.

Two speedup columns, because they answer different questions:

``speedup_vs_1``
    Same configuration relative to ``workers=1`` — pure process-scaling.
    On a single-core container this hovers around 1× (the workers share
    one CPU); on real multi-core hardware it is the scaling curve.

``speedup_vs_row``
    Relative to the single-process sharded *row* path — the end-to-end
    win of the columnar exchange + vectorized shard kernels, which does
    not need extra cores to materialize.

``python -m benchmarks.bench_parallel_scaling`` writes the machine-
readable trajectory to ``BENCH_parallel.json`` (schema per entry:
``name``, ``config``, ``events_per_sec``, ``speedup_vs_1``) so future
PRs can track regressions; ``--smoke`` runs a seconds-scale subset for
CI and skips the JSON write.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.bench.reporting import format_table
from repro.engine.batch import EventBatch
from repro.engine.event import Event, Punctuation
from repro.engine.operators.aggregates import Count
from repro.engine.sharded import shard_disordered
from repro.engine.stream import Streamable
from repro.metrics.profile import suggest_reorder_latency
from repro.parallel import GroupedAggregatePlan, run_parallel
from repro.workloads import load_dataset

DEFAULT_N = 500_000
WORKER_SWEEP = (1, 2, 4, 8)
BATCH_SWEEP = (1_024, 8_192, 65_536)
PUNCT_EVERY = 8_192
BASELINE_SHARDS = 4
RESULTS_PATH = "BENCH_parallel.json"

SMOKE_N = 20_000
SMOKE_WORKERS = (1, 2)
SMOKE_BATCHES = (1_024, 8_192)


def _workload(n):
    """Timestamps/keys plus the derived window and reorder latency."""
    dataset = load_dataset("cloudlog", n)
    ts = np.asarray(dataset.timestamps, dtype=np.int64)
    keys = np.asarray(dataset.keys, dtype=np.int64)
    window = max(n // 100, 1)
    latency = suggest_reorder_latency(dataset.timestamps, 0.99)
    return ts, keys, window, latency


def _row_elements(ts, keys, latency, punct_every):
    """Arrival-order Event/Punctuation stream for the row baseline."""
    out = []
    high = None
    next_punct = punct_every
    for i in range(len(ts)):
        t = int(ts[i])
        out.append(Event(t, t + 1, int(keys[i])))
        high = t if high is None or t > high else high
        if i + 1 >= next_punct:
            out.append(Punctuation(high - latency))
            next_punct += punct_every
    out.append(Punctuation(high))
    return out


def _columnar_ingress(ts, keys, latency, batch_size, punct_every):
    """The same stream as columnar EventBatch blocks + punctuations.

    ``punct_every`` must be a multiple of ``batch_size`` (blocks never
    straddle a punctuation) so the element sequence — and therefore
    which events count as late — is identical to the row stream's.
    """
    out = []
    high = None
    next_punct = punct_every
    for i in range(0, len(ts), batch_size):
        chunk = ts[i:i + batch_size]
        out.append(EventBatch(chunk, chunk + 1, keys[i:i + batch_size], []))
        top = int(chunk.max())
        high = top if high is None else max(high, top)
        if i + batch_size >= next_punct:
            out.append(Punctuation(high - latency))
            next_punct += punct_every
    out.append(Punctuation(high))
    return out


def _ring_capacity(batch_size):
    """A ring comfortably holding a few of the largest ingress frames."""
    need = 4 * (EventBatch.packed_size(batch_size, 0) + 64)
    capacity = 1 << 20
    while capacity < need:
        capacity <<= 1
    return capacity


def _event_key(event):
    return (event.sync_time, event.other_time, event.key, event.payload)


def run_scaling(n=DEFAULT_N, workers_sweep=WORKER_SWEEP,
                batch_sweep=BATCH_SWEEP):
    """Run the full grid; returns ``(entries, baseline_events_per_sec)``.

    Each entry follows the ``BENCH_parallel.json`` schema; the row
    baseline is included as its own entry (``speedup_vs_1`` is null —
    it has no worker axis).
    """
    ts, keys, window, latency = _workload(n)
    query = lambda s: s.tumbling_window(window).group_aggregate(  # noqa: E731
        Count()
    )
    # One row baseline per punctuation cadence: blocks never straddle a
    # punctuation, so a batch size above PUNCT_EVERY stretches the
    # cadence and needs its own (identical-stream) reference.
    references = {}

    def baseline_for(punct_every):
        cached = references.get(punct_every)
        if cached is not None:
            return cached
        elements = _row_elements(ts, keys, latency, punct_every)
        start = time.perf_counter()
        collected = shard_disordered(
            Streamable.from_elements(elements), query, BASELINE_SHARDS
        ).collect()
        eps = n / (time.perf_counter() - start)
        cached = (sorted(map(_event_key, collected.events)), eps)
        references[punct_every] = cached
        return cached

    _, baseline_eps = baseline_for(PUNCT_EVERY)
    entries = [{
        "name": f"sharded-row-{BASELINE_SHARDS}-shard",
        "config": {
            "n": n, "dataset": "cloudlog", "window": window,
            "shards": BASELINE_SHARDS, "punct_every": PUNCT_EVERY,
        },
        "events_per_sec": round(baseline_eps, 1),
        "speedup_vs_1": None,
        "speedup_vs_row": 1.0,
    }]
    for batch_size in batch_sweep:
        punct_every = max(PUNCT_EVERY, batch_size)
        reference, row_eps = baseline_for(punct_every)
        ingress = _columnar_ingress(
            ts, keys, latency, batch_size, punct_every
        )
        capacity = _ring_capacity(batch_size)
        base_eps = None
        for workers in workers_sweep:
            start = time.perf_counter()
            result = run_parallel(
                iter(ingress), GroupedAggregatePlan(window), workers,
                batch_size=batch_size, ring_capacity=capacity,
            )
            eps = n / (time.perf_counter() - start)
            got = sorted(map(_event_key, result.events))
            if got != reference:
                raise AssertionError(
                    f"parallel(workers={workers}, batch={batch_size}) "
                    "diverged from the row baseline"
                )
            if base_eps is None:
                base_eps = eps
            entries.append({
                "name": f"parallel-w{workers}-b{batch_size}",
                "config": {
                    "n": n, "dataset": "cloudlog", "window": window,
                    "workers": workers, "batch_size": batch_size,
                    "punct_every": punct_every,
                },
                "events_per_sec": round(eps, 1),
                "speedup_vs_1": round(eps / base_eps, 2),
                "speedup_vs_row": round(eps / row_eps, 2),
            })
    return entries, baseline_eps


def write_results(entries, path=RESULTS_PATH):
    with open(path, "w") as fh:
        json.dump({"benchmark": "parallel_scaling", "results": entries},
                  fh, indent=2)
        fh.write("\n")


def _print_table(entries, n):
    rows = [
        [
            entry["name"],
            entry["config"].get("workers", "-"),
            entry["config"].get("batch_size", "-"),
            round(entry["events_per_sec"] / 1e6, 3),
            entry["speedup_vs_1"] if entry["speedup_vs_1"] is not None
            else "-",
            entry["speedup_vs_row"],
        ]
        for entry in entries
    ]
    print(format_table(
        ["run", "workers", "batch", "M events/s", "speedup vs w=1",
         "speedup vs row"],
        rows,
        title=(
            f"Parallel shard-runtime scaling (cloudlog {n}, "
            "grouped count, equivalence-checked)"
        ),
    ))


def report(n=None):
    """Report-section entry point; refreshes BENCH_parallel.json only when
    run at the canonical DEFAULT_N so a quick ``--n`` pass can't replace
    the regression-tracking baseline with a toy trajectory."""
    n = n or DEFAULT_N
    entries, _ = run_scaling(n)
    _print_table(entries, n)
    if n == DEFAULT_N:
        write_results(entries)
        print(f"wrote {RESULTS_PATH}")
    else:
        print(f"n={n} != default {DEFAULT_N}; skipping {RESULTS_PATH} write")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=None,
                        help=f"stream length (default {DEFAULT_N})")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: small stream, workers {1,2}, no "
                             "JSON write — exercises the exchange path "
                             "and the equivalence assert only")
    parser.add_argument("--json", default=None,
                        help="results path (default BENCH_parallel.json; "
                             "ignored with --smoke unless given)")
    args = parser.parse_args(argv)

    if args.smoke:
        n = args.n or SMOKE_N
        entries, _ = run_scaling(n, SMOKE_WORKERS, SMOKE_BATCHES)
        _print_table(entries, n)
        if args.json:
            write_results(entries, args.json)
            print(f"wrote {args.json}")
        print("smoke OK")
        return
    n = args.n or DEFAULT_N
    entries, _ = run_scaling(n)
    _print_table(entries, n)
    if args.json is None and n != DEFAULT_N:
        print(f"n={n} != default {DEFAULT_N}; skipping {RESULTS_PATH} write "
              "(pass --json PATH to record a non-canonical run)")
        return
    path = args.json or RESULTS_PATH
    write_results(entries, path)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
