"""Ablation — columnar versus row-at-a-time pre-sort processing.

Trill's order-of-magnitude advantage over first-generation SPEs comes
from columnar batching (§I-A); this ablation shows the same lever inside
our substrate: applying the order-insensitive push-down operators
(selection + windowing) on a numpy ``EventBatch``, then feeding only the
surviving timestamps to Impatience sort, versus running the identical
logic through the row-oriented operator pipeline.

Also validates equivalence: both paths must deliver identical sorted
timestamp sequences.

A second sweep compares the vectorized
:class:`~repro.core.columnar.ColumnarImpatienceSorter` (run-*segment*
dealing over numpy batches) against the scalar sorter across disorder
levels.  Expected crossover: segment dealing wins several-fold when
natural runs are long (low p) and degenerates to per-segment overhead
when runs shrink toward single events (high p).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import stream_length
from repro.bench.reporting import format_table
from repro.core.columnar import ColumnarImpatienceSorter
from repro.core.impatience import ImpatienceSorter
from repro.workloads import load_dataset
from repro.engine.batch import EventBatch
from repro.engine.disordered import DisorderedStreamable

DATASETS = ("cloudlog", "androidlog")
SELECT_BOUND = 50   # keep events with key < 50 (≈50% selectivity)
WINDOW = 1_000
DISORDER_SWEEP = (1, 3, 10, 30)
BATCH = 8_192
SORT_LATENCY = 5_000


def columnar_path(dataset):
    """Batch filter + window + sort; returns (elapsed, sorted_times)."""
    start = time.perf_counter()
    batch = EventBatch.from_dataset(dataset)
    batch = batch.filter(batch.keys < SELECT_BOUND)
    batch = batch.compact().tumbling_window(WINDOW)
    sorter = ImpatienceSorter()
    sorter.extend(batch.timestamps())
    out = sorter.flush()
    return time.perf_counter() - start, out


def row_path(dataset):
    """Row operators + sort; returns (elapsed, sorted_times)."""
    start = time.perf_counter()
    result = (
        DisorderedStreamable.from_dataset(dataset)
        .where(lambda e: e.key < SELECT_BOUND)
        .tumbling_window(WINDOW)
        .to_streamable()
        .collect()
    )
    return time.perf_counter() - start, result.sync_times


@pytest.mark.parametrize("name", DATASETS)
def bench_columnar_pushdown(benchmark, datasets, name):
    dataset = datasets[name]
    elapsed, out = benchmark.pedantic(
        lambda: columnar_path(dataset), rounds=1, iterations=1
    )
    benchmark.extra_info["throughput_meps"] = len(dataset) / elapsed / 1e6
    benchmark.extra_info["survivors"] = len(out)


@pytest.mark.parametrize("name", DATASETS)
def bench_row_pushdown(benchmark, datasets, name):
    dataset = datasets[name]
    elapsed, out = benchmark.pedantic(
        lambda: row_path(dataset), rounds=1, iterations=1
    )
    benchmark.extra_info["throughput_meps"] = len(dataset) / elapsed / 1e6
    benchmark.extra_info["survivors"] = len(out)


def columnar_sorter_throughput(timestamps):
    """Batched ColumnarImpatienceSorter run; returns M events/s."""
    times = np.asarray(timestamps, dtype=np.int64)
    sorter = ColumnarImpatienceSorter()
    start = time.perf_counter()
    for i in range(0, len(times), BATCH):
        chunk = times[i:i + BATCH]
        sorter.insert_batch(chunk)
        ts = int(chunk.max()) - SORT_LATENCY
        if sorter.watermark == float("-inf") or ts > sorter.watermark:
            sorter.on_punctuation(ts)
    sorter.flush()
    return len(times) / (time.perf_counter() - start) / 1e6


def scalar_sorter_throughput(timestamps):
    """Batched scalar ImpatienceSorter run; returns M events/s."""
    sorter = ImpatienceSorter()
    start = time.perf_counter()
    for i in range(0, len(timestamps), BATCH):
        chunk = timestamps[i:i + BATCH]
        sorter.extend(chunk)
        ts = max(chunk) - SORT_LATENCY
        if sorter.watermark == float("-inf") or ts > sorter.watermark:
            sorter.on_punctuation(ts)
    sorter.flush()
    return len(timestamps) / (time.perf_counter() - start) / 1e6


@pytest.mark.parametrize("percent", DISORDER_SWEEP)
def bench_columnar_sorter_sweep(benchmark, N, percent):
    dataset = load_dataset(
        "synthetic", min(N, 100_000), percent_disorder=percent,
        amount_disorder=64,
    )
    columnar = benchmark.pedantic(
        lambda: columnar_sorter_throughput(dataset.timestamps),
        rounds=1, iterations=1,
    )
    scalar = scalar_sorter_throughput(dataset.timestamps)
    benchmark.extra_info["columnar_meps"] = columnar
    benchmark.extra_info["scalar_meps"] = scalar
    benchmark.extra_info["speedup"] = columnar / scalar


def bench_paths_equivalent(benchmark, datasets):
    """Both paths deliver the same sorted stream (correctness gate)."""
    def check():
        for name in DATASETS:
            _, columnar = columnar_path(datasets[name])
            _, row = row_path(datasets[name])
            assert columnar == row, name
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def report(n=None):
    n = n or stream_length()
    rows = []
    for name in DATASETS:
        dataset = load_dataset(name, n)
        col_elapsed, col_out = columnar_path(dataset)
        row_elapsed, row_out = row_path(dataset)
        assert col_out == row_out
        rows.append([
            name,
            round(len(dataset) / col_elapsed / 1e6, 3),
            round(len(dataset) / row_elapsed / 1e6, 3),
            round(row_elapsed / col_elapsed, 1),
        ])
    print(format_table(
        ["dataset", "columnar M/s", "row M/s", "columnar speedup"],
        rows,
        title=(
            "Ablation: columnar vs row pre-sort push-down "
            f"(selectivity ≈{SELECT_BOUND}%, window {WINDOW})"
        ),
    ))
    print()
    rows = []
    for percent in DISORDER_SWEEP:
        dataset = load_dataset(
            "synthetic", n, percent_disorder=percent, amount_disorder=64
        )
        columnar = columnar_sorter_throughput(dataset.timestamps)
        scalar = scalar_sorter_throughput(dataset.timestamps)
        rows.append([
            percent, round(columnar, 2), round(scalar, 2),
            round(columnar / scalar, 1),
        ])
    print(format_table(
        ["% disorder", "columnar sorter M/s", "scalar sorter M/s",
         "speedup"],
        rows,
        title="Ablation: ColumnarImpatienceSorter (run-segment dealing)",
    ))


if __name__ == "__main__":
    report()
