"""Bounded-memory external sorting — throughput and run lengths under
a hard budget.

The headline measurement behind the out-of-core run pool (see
``docs/external_sort.md``): the 10M-event cloudlog stream — ~240 MB of
columnar state at 24 B/event — sorted to completion under a **64 MB**
memory budget by :class:`repro.sorting.external.ExternalColumnarSorter`,
against the unbudgeted in-memory :class:`ColumnarImpatienceSorter` it
must match byte-for-byte.  Every timed budgeted run is equivalence-
checked against the in-memory output, so a speedup (or a survived
budget) obtained by dropping or reordering events can never be recorded.

Two invariants are *asserted*, not just reported:

* ``peak_buffered_bytes <= budget`` — the budget is a hard cap on the
  resting buffer, enforced by the spill metrics the sorter itself
  publishes;
* ``avg_run_bytes >= 2 * budget`` — on the nearly-sorted cloudlog
  arrival order, batched replacement selection must produce on-disk
  runs at least twice the memory budget (the classic expected run
  length, unbounded for sorted input).

``python -m benchmarks.bench_external_sort`` writes the machine-readable
results to ``BENCH_external.json`` (schema per entry: ``name``,
``config``, ``events_per_sec``, ``spill``) so future PRs can track
regressions; the file is only refreshed at the canonical ``n`` so a
quick ``--n`` pass can't replace the baseline with a toy trajectory.
``--smoke`` runs a seconds-scale subset (200k events, 512 KB budget)
for CI and skips the JSON write.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.bench.reporting import format_table
from repro.core.columnar import ColumnarImpatienceSorter
from repro.sorting.external import ExternalColumnarSorter
from repro.workloads.cloudlog import cloudlog_arrays

DEFAULT_N = 10_000_000
DEFAULT_BUDGET = 64 * 1024 ** 2
RESULTS_PATH = "BENCH_external.json"

SMOKE_N = 200_000
SMOKE_BUDGET = 512 * 1024

BATCH = 65_536
PUNCTUATIONS = 3  # mid-stream cuts; the deep lag keeps runs alive
COLUMNS = 2       # grouping key + one payload column = 24 B/event


def _workload(n):
    """Cloudlog arrival-order timestamps plus two payload columns."""
    ts, keys, _rng = cloudlog_arrays(n)
    payload = (ts * np.int64(2654435761)) & np.int64(0x7FFFFFFF)
    return ts, (keys, payload)


def _drive(sorter, ts, cols, lag):
    """Feed the stream in ingress batches with ``PUNCTUATIONS`` deep
    mid-stream cuts; returns the list of emitted (keys, cols) cuts."""
    n = len(ts)
    marks = {(n * (i + 1)) // (PUNCTUATIONS + 1)
             for i in range(PUNCTUATIONS)}
    outputs = []
    high = None
    for start in range(0, n, BATCH):
        stop = min(start + BATCH, n)
        sorter.insert_batch(
            ts[start:stop], tuple(col[start:stop] for col in cols)
        )
        top = int(ts[start:stop].max())
        high = top if high is None else max(high, top)
        if any(start < mark <= stop for mark in marks):
            outputs.append(sorter.on_punctuation(high - lag))
    outputs.append(sorter.flush())
    return outputs


def _assert_identical(got, want, budget):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        gk, gc = g
        wk, wc = w
        if not np.array_equal(gk, wk) or any(
            not np.array_equal(a, b) for a, b in zip(gc, wc)
        ):
            raise AssertionError(
                f"budgeted run (budget={budget}) diverged from the "
                "in-memory sorter"
            )


def run_bench(n=DEFAULT_N, budget=DEFAULT_BUDGET):
    """Time the in-memory baseline and the budgeted external sorter on
    the same stream; returns the ``BENCH_external.json`` entry list."""
    ts, cols = _workload(n)
    lag = max((int(ts.max()) - int(ts.min())) // 6, 1)
    bytes_per_row = 8 * (1 + COLUMNS)

    start = time.perf_counter()
    baseline = _drive(
        ColumnarImpatienceSorter(columns=COLUMNS), ts, cols, lag
    )
    memory_eps = n / (time.perf_counter() - start)

    external = ExternalColumnarSorter(budget, columns=COLUMNS)
    try:
        start = time.perf_counter()
        got = _drive(external, ts, cols, lag)
        external_eps = n / (time.perf_counter() - start)
        _assert_identical(got, baseline, budget)
        spill = external.spill_doc()
    finally:
        external.close()

    assert spill["peak_buffered_bytes"] <= budget, (
        f"budget violated: peak {spill['peak_buffered_bytes']} "
        f"> {budget}"
    )
    assert spill["avg_run_bytes"] >= 2 * budget, (
        f"replacement selection underperformed on nearly-sorted input: "
        f"avg run {spill['avg_run_bytes']:.0f} B < 2x budget {budget} B"
    )

    config = {
        "n": n, "dataset": "cloudlog", "columns": COLUMNS,
        "bytes_per_event": bytes_per_row, "batch": BATCH,
        "punctuations": PUNCTUATIONS,
    }
    return [
        {
            "name": "in-memory-columnar",
            "config": config,
            "events_per_sec": round(memory_eps, 1),
            "spill": None,
            "slowdown_vs_memory": 1.0,
        },
        {
            "name": f"external-{budget // (1024 ** 2) or budget}",
            "config": {**config, "budget_bytes": budget},
            "events_per_sec": round(external_eps, 1),
            "spill": spill,
            "slowdown_vs_memory": round(memory_eps / external_eps, 2),
            "avg_run_to_budget": round(spill["avg_run_bytes"] / budget, 2),
        },
    ]


def write_results(entries, path=RESULTS_PATH):
    with open(path, "w") as fh:
        json.dump({"benchmark": "external_sort", "results": entries},
                  fh, indent=2)
        fh.write("\n")


def _print_table(entries, n, budget):
    rows = []
    for entry in entries:
        spill = entry["spill"]
        rows.append([
            entry["name"],
            round(entry["events_per_sec"] / 1e6, 3),
            entry["slowdown_vs_memory"],
            spill["runs_spilled"] if spill else "-",
            round(spill["bytes_written"] / 1e6, 1) if spill else "-",
            round(spill["peak_buffered_bytes"] / 1e6, 2) if spill else "-",
            entry.get("avg_run_to_budget", "-"),
        ])
    print(format_table(
        ["run", "M events/s", "slowdown", "runs",
         "MB written", "peak MB", "run/budget"],
        rows,
        title=(
            f"External sort (cloudlog {n}, budget "
            f"{budget // 1024} KB, byte-identity checked)"
        ),
    ))


def report(n=None):
    """Report-section entry point; refreshes BENCH_external.json only
    at the canonical DEFAULT_N."""
    n = n or DEFAULT_N
    budget = DEFAULT_BUDGET if n == DEFAULT_N else \
        max(n * 24 // 4, 4096)
    entries = run_bench(n, budget)
    _print_table(entries, n, budget)
    if n == DEFAULT_N:
        write_results(entries)
        print(f"wrote {RESULTS_PATH}")
    else:
        print(f"n={n} != default {DEFAULT_N}; skipping {RESULTS_PATH} write")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=None,
                        help=f"stream length (default {DEFAULT_N})")
    parser.add_argument("--budget", type=int, default=None,
                        help=f"memory budget in bytes "
                             f"(default {DEFAULT_BUDGET})")
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: 200k events under 512 KB, no "
                             "JSON write — exercises spill + merge and "
                             "the byte-identity and run-length asserts")
    parser.add_argument("--json", default=None,
                        help="results path (default BENCH_external.json; "
                             "ignored with --smoke unless given)")
    args = parser.parse_args(argv)

    if args.smoke:
        n = args.n or SMOKE_N
        budget = args.budget or SMOKE_BUDGET
        entries = run_bench(n, budget)
        _print_table(entries, n, budget)
        if args.json:
            write_results(entries, args.json)
            print(f"wrote {args.json}")
        print("smoke OK")
        return
    n = args.n or DEFAULT_N
    budget = args.budget or DEFAULT_BUDGET
    entries = run_bench(n, budget)
    _print_table(entries, n, budget)
    if args.json is None and (n != DEFAULT_N or budget != DEFAULT_BUDGET):
        print(f"non-canonical run (n={n}, budget={budget}); skipping "
              f"{RESULTS_PATH} write (pass --json PATH to record it)")
        return
    path = args.json or RESULTS_PATH
    write_results(entries, path)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
