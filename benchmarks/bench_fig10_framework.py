"""Figure 10 — throughput and memory with and without the Impatience
framework, queries Q1–Q4 on CloudLog and AndroidLog.

Methods (Section VI-D): advanced framework, basic framework (same query
re-run per latency), MinLatency, MaxLatency.  Punctuation frequency is
10,000, as in the paper.

Expected shape (paper, CloudLog): advanced ≈2.3–2.8× the basic
framework's throughput and ≈29–31× less memory; advanced within 4–22% of
MinLatency throughput; MaxLatency memory ≈ basic memory.  On AndroidLog
the memory gap narrows (≈1.9×) because most events are severely delayed.
"""

from __future__ import annotations

import pytest

from repro.bench import stream_length
from repro.bench.reporting import format_table
from repro.framework.audit import run_method
from repro.framework.queries import make_query
from repro.workloads import load_dataset

PUNCTUATION_FREQUENCY = 10_000
QUERIES = ("Q1", "Q2", "Q3", "Q4")
METHODS = ("advanced", "basic", "min", "max")


def latencies_for(name, n):
    """The {1s, 1m, 1h} analogue, scaled to the stream horizon.

    The paper uses {1s, 1m, 1h} for CloudLog and {10m, 1h, 1d} for
    AndroidLog against multi-day logs; at bench scale the horizon is N ms,
    so the latency ladder spans three geometric steps inside it.
    """
    return [max(n // 500, 1), max(n // 50, 1), max(n // 5, 1)]


def window_for(n):
    """Tumbling window sized to yield ~200 windows over the horizon."""
    return max(n // 200, 1)


def run_cell(method, name, query_name, n):
    dataset = load_dataset(name, n)
    query = make_query(query_name, window_size=window_for(n))
    return run_method(
        method, dataset, query, latencies_for(name, n),
        punctuation_frequency=PUNCTUATION_FREQUENCY,
    )


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("query_name", QUERIES)
@pytest.mark.parametrize("name", ["cloudlog", "androidlog"])
def bench_fig10_framework(benchmark, N, name, query_name, method):
    result = benchmark.pedantic(
        lambda: run_cell(method, name, query_name, N),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["throughput_meps"] = result.throughput_meps
    benchmark.extra_info["peak_memory_mb"] = result.peak_memory_mb
    benchmark.extra_info["completeness"] = result.final_completeness


def report(n=None):
    n = n or stream_length()
    for name in ("cloudlog", "androidlog"):
        throughput_rows = []
        memory_rows = []
        for query_name in QUERIES:
            results = {
                method: run_cell(method, name, query_name, n)
                for method in METHODS
            }
            throughput_rows.append(
                [query_name]
                + [round(results[m].throughput_meps, 3) for m in METHODS]
            )
            memory_rows.append(
                [query_name]
                + [round(results[m].peak_memory_mb, 3) for m in METHODS]
            )
        print(format_table(
            ["query", *METHODS], throughput_rows,
            title=f"Figure 10 ({name}): throughput, M events/s",
        ))
        print()
        print(format_table(
            ["query", *METHODS], memory_rows,
            title=f"Figure 10 ({name}): peak buffered memory, MB",
        ))
        print()


if __name__ == "__main__":
    report()
