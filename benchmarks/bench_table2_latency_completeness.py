"""Table II — latency and completeness of the four execution methods.

Paper reference:

                       CloudLog                AndroidLog
    Method             latency    complete     latency     complete
    Impatience (adv)   {1s,1m,1h}  100%        {10m,1h,1d}  92.2%
    MinLatency         {1s}        98.1%       {10m}        20.5%
    MaxLatency         {1h}        100%        {1d}         92.2%
    Impatience (basic) cascade     100%        cascade      92.2%

The shape: MinLatency loses a little on CloudLog and a lot on AndroidLog
(most events arrive a full upload-cycle late); both Impatience frameworks
always match MaxLatency's completeness while also serving the MinLatency
output stream.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_fig10_framework import (
    PUNCTUATION_FREQUENCY,
    latencies_for,
    window_for,
)
from repro.bench import stream_length
from repro.bench.reporting import format_table
from repro.framework.audit import table2_rows
from repro.framework.queries import make_query
from repro.workloads import load_dataset


@pytest.mark.parametrize("name", ["cloudlog", "androidlog"])
def bench_table2(benchmark, N, name):
    dataset = load_dataset(name, N)
    query = make_query("Q1", window_size=window_for(N))
    rows = benchmark.pedantic(
        lambda: table2_rows(
            dataset, query, latencies_for(name, N),
            punctuation_frequency=PUNCTUATION_FREQUENCY,
        ),
        rounds=1, iterations=1,
    )
    by_method = {row["method"]: row for row in rows}
    assert by_method["min"]["completeness"] <= by_method["max"]["completeness"]
    assert by_method["advanced"]["completeness"] == pytest.approx(
        by_method["max"]["completeness"]
    )
    assert by_method["basic"]["completeness"] == pytest.approx(
        by_method["max"]["completeness"]
    )
    for row in rows:
        benchmark.extra_info[row["method"]] = row["completeness"]


def report(n=None):
    n = n or stream_length()
    for name in ("cloudlog", "androidlog"):
        dataset = load_dataset(name, n)
        query = make_query("Q1", window_size=window_for(n))
        rows = table2_rows(
            dataset, query, latencies_for(name, n),
            punctuation_frequency=PUNCTUATION_FREQUENCY,
        )
        print(format_table(
            ["method", "latencies", "measured mean lag", "completeness"],
            [
                [row["method"], str(row["latencies"]),
                 str(row["measured_latency"]),
                 f"{row['completeness']:.1%}"]
                for row in rows
            ],
            title=f"Table II ({name})",
        ))
        print()


if __name__ == "__main__":
    report()
