"""Tests for measured delivery latency (LatencyCollector)."""

from __future__ import annotations

import pytest

from repro.engine import DisorderedStreamable
from repro.framework.streamables import LatencyCollector
from repro.workloads import generate_synthetic


def run_framework(latencies, frequency=100, n=20_000):
    dataset = generate_synthetic(
        n, percent_disorder=30, amount_disorder=64, seed=9
    )
    return (
        DisorderedStreamable.from_dataset(
            dataset, punctuation_frequency=frequency
        )
        .to_streamables(latencies)
        .run()
    )


class TestMeasuredLatency:
    def test_stats_shape(self):
        result = run_framework([500, 5_000])
        stats = result.measured_latency(0)
        assert set(stats) == {"mean", "p95", "max", "samples"}
        assert stats["samples"] > 0
        assert 0 <= stats["mean"] <= stats["p95"] <= stats["max"]

    def test_latency_grows_with_ladder(self):
        result = run_framework([500, 5_000])
        early = result.measured_latency(0)["mean"]
        late = result.measured_latency(1)["mean"]
        assert late > early

    def test_mean_tracks_configured_latency(self):
        """With fine punctuations (period ≪ L) the mean lag converges to
        the configured reorder latency plus ~half a punctuation period."""
        latency = 2_000
        frequency = 100  # ≈100 time units between punctuations
        result = run_framework([50, latency], frequency=frequency)
        mean = result.measured_latency(1)["mean"]
        assert latency * 0.8 <= mean <= latency * 1.5

    def test_coarse_punctuations_add_staleness(self):
        fine = run_framework([500, 5_000], frequency=100)
        coarse = run_framework([500, 5_000], frequency=5_000)
        assert (
            coarse.measured_latency(0)["mean"]
            > fine.measured_latency(0)["mean"]
        )

    def test_plain_collector_rejects_latency_query(self):
        from repro.engine.operators import Collector
        from repro.framework.streamables import StreamablesResult

        result = StreamablesResult([Collector()], None, None, [1])
        with pytest.raises(TypeError, match="did not measure"):
            result.measured_latency(0)

    def test_collector_without_clock_still_collects(self):
        collector = LatencyCollector({})
        from repro.engine.event import Event

        collector.on_event(Event(1))
        assert len(collector.events) == 1
        assert collector.latency_stats()["samples"] == 0
