"""Tests for the stateless and windowed operators (repro.engine.operators)."""

from __future__ import annotations

import pytest

from repro.engine.event import Event, Punctuation
from repro.engine.operators import (
    Avg,
    Collector,
    Count,
    GroupedWindowAggregate,
    HoppingWindow,
    Max,
    Min,
    Select,
    SelectColumns,
    Sum,
    TumblingWindow,
    Where,
    WindowAggregate,
    WindowTopK,
)


def wire(operator):
    sink = Collector()
    operator.add_downstream(sink)
    return sink


def feed(operator, events, punctuation=None, flush=True):
    for event in events:
        operator.on_event(event)
    if punctuation is not None:
        operator.on_punctuation(Punctuation(punctuation))
    if flush:
        operator.on_flush()


class TestWhere:
    def test_filters_and_counts(self):
        op = Where(lambda e: e.payload[0] % 2 == 0)
        sink = wire(op)
        feed(op, [Event(i, payload=(i,)) for i in range(10)])
        assert [e.payload[0] for e in sink.events] == [0, 2, 4, 6, 8]
        assert op.selectivity == 0.5
        assert sink.completed

    def test_selectivity_before_input(self):
        assert Where(lambda e: True).selectivity == 1.0

    def test_punctuations_pass_through(self):
        op = Where(lambda e: False)
        sink = wire(op)
        op.on_punctuation(Punctuation(5))
        assert sink.punctuations == [5]


class TestSelect:
    def test_payload_projection(self):
        op = Select(lambda p: (p[0] * 2,))
        sink = wire(op)
        feed(op, [Event(1, payload=(21,))])
        assert sink.events[0].payload == (42,)

    def test_select_columns(self):
        op = SelectColumns([2, 0])
        sink = wire(op)
        feed(op, [Event(1, payload=(10, 11, 12, 13))])
        assert sink.events[0].payload == (12, 10)

    def test_select_columns_requires_columns(self):
        with pytest.raises(ValueError):
            SelectColumns([])


class TestWindows:
    def test_tumbling_alignment(self):
        op = TumblingWindow(10)
        sink = wire(op)
        feed(op, [Event(17), Event(20), Event(9)])
        assert [(e.sync_time, e.other_time) for e in sink.events] == [
            (10, 20), (20, 30), (0, 10),
        ]

    def test_hopping_window(self):
        op = HoppingWindow(60, 10)
        sink = wire(op)
        feed(op, [Event(25)])
        assert (sink.events[0].sync_time, sink.events[0].other_time) == (20, 80)

    def test_window_reduces_distinct_timestamps(self):
        op = TumblingWindow(100)
        sink = wire(op)
        feed(op, [Event(t) for t in range(500)])
        assert len({e.sync_time for e in sink.events}) == 5

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            TumblingWindow(0)
        with pytest.raises(ValueError):
            HoppingWindow(10, 0)


class TestAggregateFunctions:
    def test_count(self):
        agg = Count()
        state = agg.initial()
        for _ in range(3):
            state = agg.accumulate(state, Event(0))
        assert agg.result(state) == 3

    def test_sum_with_selector(self):
        agg = Sum(lambda p: p[1])
        state = agg.initial()
        state = agg.accumulate(state, Event(0, payload=(0, 5)))
        state = agg.accumulate(state, Event(0, payload=(0, 7)))
        assert agg.result(state) == 12

    def test_avg(self):
        agg = Avg()
        state = agg.initial()
        for v in (2, 4):
            state = agg.accumulate(state, Event(0, payload=v))
        assert agg.result(state) == 3.0
        assert agg.result(agg.initial()) is None

    def test_min_max(self):
        for agg, expected in ((Min(), 1), (Max(), 9)):
            state = agg.initial()
            for v in (5, 1, 9):
                state = agg.accumulate(state, Event(0, payload=v))
            assert agg.result(state) == expected


class TestWindowAggregate:
    def _window_events(self, values, window=10):
        return [
            Event(t - t % window, t - t % window + window, payload=t)
            for t in values
        ]

    def test_counts_per_window_on_punctuation(self):
        op = WindowAggregate(Count())
        sink = wire(op)
        feed(op, self._window_events([1, 2, 11, 12, 13]), punctuation=25,
             flush=False)
        assert [(e.sync_time, e.payload) for e in sink.events] == [
            (0, 2), (10, 3),
        ]

    def test_window_not_closed_before_its_end(self):
        op = WindowAggregate(Count())
        sink = wire(op)
        feed(op, self._window_events([1, 2]), punctuation=5, flush=False)
        assert sink.events == []  # window [0,10) can still receive t=6..9
        op.on_punctuation(Punctuation(9))
        assert [(e.sync_time, e.payload) for e in sink.events] == [(0, 2)]

    def test_flush_closes_everything(self):
        op = WindowAggregate(Count())
        sink = wire(op)
        feed(op, self._window_events([1, 11, 21]))
        assert len(sink.events) == 3
        assert sink.completed

    def test_windows_emitted_in_order(self):
        op = WindowAggregate(Count())
        sink = wire(op)
        feed(op, self._window_events([21, 1, 11]))
        assert sink.sync_times == [0, 10, 20]

    def test_buffered_count_tracks_open_windows(self):
        op = WindowAggregate(Count())
        wire(op)
        feed(op, self._window_events([1, 11, 21]), flush=False)
        assert op.buffered_count() == 3
        op.on_punctuation(Punctuation(19))
        assert op.buffered_count() == 1


class TestGroupedWindowAggregate:
    def test_counts_per_group(self):
        op = GroupedWindowAggregate(Count())
        sink = wire(op)
        events = [Event(0, 10, key=k) for k in (1, 2, 1, 1)]
        feed(op, events)
        assert [(e.key, e.payload) for e in sink.events] == [(1, 3), (2, 1)]

    def test_custom_key_fn(self):
        op = GroupedWindowAggregate(Count(), key_fn=lambda e: e.payload % 2)
        sink = wire(op)
        feed(op, [Event(0, 10, payload=v) for v in range(5)])
        assert [(e.key, e.payload) for e in sink.events] == [(0, 3), (1, 2)]

    def test_groups_sorted_within_window(self):
        op = GroupedWindowAggregate(Count())
        sink = wire(op)
        feed(op, [Event(0, 10, key=k) for k in (5, 3, 9)])
        assert [e.key for e in sink.events] == [3, 5, 9]

    def test_buffered_counts_group_states(self):
        op = GroupedWindowAggregate(Count())
        wire(op)
        feed(op, [Event(0, 10, key=k) for k in (1, 2)], flush=False)
        feed(op, [Event(10, 20, key=1)], flush=False)
        assert op.buffered_count() == 3


class TestWindowTopK:
    def test_emits_top_k_by_payload(self):
        op = WindowTopK(2)
        sink = wire(op)
        feed(op, [Event(0, 10, key=k, payload=p)
                  for k, p in [(1, 5), (2, 9), (3, 1), (4, 7)]])
        assert [(e.key, e.payload) for e in sink.events] == [(2, 9), (4, 7)]

    def test_running_trim_keeps_true_top_k(self):
        op = WindowTopK(3)
        sink = wire(op)
        feed(op, [Event(0, 1000, payload=p) for p in range(500)])
        assert sorted(e.payload for e in sink.events) == [497, 498, 499]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            WindowTopK(0)
