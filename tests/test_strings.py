"""String keys end-to-end: arena columns, dictionary codes, OVC merges.

Covers the string stack layer by layer — :class:`StringColumn` /
:class:`StringDictionary` foundations, offset-value-coded merge
correctness against ``sorted()``, the ``"ovc"`` merge strategy inside
the row sorter, the SDATA wire frame and the multi-worker parallel
round-trip, budgeted spilling with byte-identity and corruption
detection, the string-keyed workload generators, and the dictionary-
coded string predicates on both the row and compiled engines.
"""

from __future__ import annotations

import random
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columnar import ColumnarImpatienceSorter
from repro.core.errors import SpillCorruptionError
from repro.core.impatience import ImpatienceSorter
from repro.core.strings import (
    OVC_K,
    OvcCounters,
    StringColumn,
    StringDictionary,
    full_code,
    naive_index_merge,
    ovc_annotate,
    ovc_annotate_indices,
    ovc_index_merge,
    ovc_merge_runs,
)
from repro.engine.batch import EventBatch
from repro.engine.event import Event
from repro.sorting.external import ExternalColumnarSorter
from repro.workloads.strings import (
    LOG_LEVELS,
    generate_androidlog_strings,
    generate_cloudlog_strings,
)

KEYS = st.lists(st.binary(min_size=0, max_size=12), min_size=0,
                max_size=80)


# -- StringColumn -----------------------------------------------------------


class TestStringColumn:
    def test_from_values_and_getitem(self):
        col = StringColumn.from_values([b"abc", b"", "dä"])
        assert len(col) == 3
        assert col[0] == b"abc"
        assert col[1] == b""
        assert col[2] == "dä".encode("utf-8")
        assert col[-1] == col[2]

    def test_slice_take_filter_concat(self):
        values = [b"aa", b"bb", b"cc", b"dd", b"ee"]
        col = StringColumn.from_values(values)
        assert col.slice(1, 4).tolist() == values[1:4]
        assert col.take([4, 0, 2]).tolist() == [b"ee", b"aa", b"cc"]
        assert col.filter([1, 0, 1, 0, 1]).tolist() == \
            [b"aa", b"cc", b"ee"]
        both = StringColumn.concat([col.slice(0, 2), col.slice(3, 5)])
        assert both.tolist() == [b"aa", b"bb", b"dd", b"ee"]

    def test_slice_is_standalone(self):
        """A slice trims its arena: it serializes without the parent."""
        col = StringColumn.from_values([b"xxxx", b"mid", b"yyyy"])
        part = col.slice(1, 2)
        assert part.arena == b"mid"
        assert int(part.offsets[0]) == 0

    def test_pack_unpack_roundtrip(self):
        col = StringColumn.from_values([b"", b"abc", b"\x00\xff", b"zz"])
        buf = bytearray(col.packed_size())
        end = col.pack_into(buf)
        assert end == len(buf)
        clone, consumed = StringColumn.unpack_from(bytes(buf), len(col))
        assert consumed == len(buf)
        assert clone == col
        assert clone.tolist() == col.tolist()

    def test_empty(self):
        empty = StringColumn.empty()
        assert len(empty) == 0
        assert StringColumn.concat([]).tolist() == []


# -- StringDictionary -------------------------------------------------------


class TestStringDictionary:
    def test_codes_are_order_preserving_and_dense(self):
        values = [b"svc.b", b"svc.a", b"svc.c", b"svc.a"]
        d = StringDictionary(values)
        assert len(d) == 3
        assert [d.decode(i) for i in range(3)] == \
            [b"svc.a", b"svc.b", b"svc.c"]
        for a in d.values:
            for b in d.values:
                assert (d.code(a) < d.code(b)) == (a < b)

    def test_encode_decode_roundtrip(self):
        values = [b"w", b"q", b"w", b"a"]
        d = StringDictionary(values)
        codes = d.encode(values)
        assert codes.dtype == np.int64
        assert d.decode_column(codes).tolist() == values

    def test_missing_value_matches_nothing(self):
        d = StringDictionary([b"a", b"b"])
        assert d.code(b"zz") == -1

    @given(st.lists(st.binary(max_size=6), min_size=1, max_size=40),
           st.binary(max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_prefix_range_matches_startswith(self, values, prefix):
        d = StringDictionary(values)
        lo, hi = d.prefix_range(prefix)
        expected = {v for v in values if v.startswith(prefix)}
        got = {d.decode(c) for c in range(lo, hi)}
        assert got == expected


# -- OVC codes and merges ---------------------------------------------------


class TestOvcMerge:
    def test_annotate_invariants(self):
        keys = [b"aa", b"aa", b"ab", b"b"]
        codes = ovc_annotate(keys)
        assert codes[0] == full_code(b"aa") == ((OVC_K - 0) << 8) | ord("a")
        assert codes[1] == 0                      # duplicate
        assert codes[2] == ((OVC_K - 1) << 8) | ord("b")
        assert codes[3] == ((OVC_K - 0) << 8) | ord("b")

    @given(KEYS, st.integers(1, 6))
    @settings(max_examples=120, deadline=None)
    def test_merge_runs_matches_sorted(self, values, n_runs):
        runs = []
        for r in range(n_runs):
            chunk = sorted(values[r::n_runs])
            runs.append((chunk, chunk))
        merged, items = ovc_merge_runs(runs)
        assert merged == sorted(values)
        assert items == merged

    @given(KEYS, st.integers(1, 5))
    @settings(max_examples=120, deadline=None)
    def test_index_merge_matches_naive_and_sorted(self, values, n_runs):
        column = StringColumn.from_values(values)
        runs = []
        for r in range(n_runs):
            idx = sorted(range(r, len(values), n_runs),
                         key=values.__getitem__)
            runs.append(idx)
        counters = OvcCounters()
        ovc = ovc_index_merge(
            [(run, ovc_annotate_indices(run, column)) for run in runs],
            column, counters=counters,
        )
        naive = naive_index_merge([list(r) for r in runs], column)
        assert [values[i] for i in ovc] == sorted(values)
        assert [values[i] for i in naive] == sorted(values)

    def test_duplicate_streaks_bulk_copy_without_ties(self):
        """Low-cardinality runs (the cloudlog service-key regime) merge
        with almost no byte-walk ties: duplicates carry code 0."""
        names = [b"svc.alpha", b"svc.beta", b"svc.gamma"]
        values = [names[i % 3] for i in range(600)]
        column = StringColumn.from_values(values)
        runs = [
            sorted(range(r, 600, 4), key=values.__getitem__)
            for r in range(4)
        ]
        counters = OvcCounters()
        merged = ovc_index_merge(
            [(run, ovc_annotate_indices(run, column)) for run in runs],
            column, counters=counters,
        )
        assert [values[i] for i in merged] == sorted(values)
        # 3 distinct keys x 3 two-way merges: ties are O(distinct), not
        # O(n).
        assert counters.ties < 60


class TestOvcSorterStrategy:
    """The ``"ovc"`` merge strategy inside the row ImpatienceSorter."""

    def _stream(self, seed, n=500):
        rng = random.Random(seed)
        names = [
            f"svc.zone-{i % 5}.host-{i:04d}".encode() for i in range(40)
        ]
        return [names[rng.randrange(len(names))] for _ in range(n)]

    def test_string_keys_match_sorted_per_punctuation(self):
        """Reference model (buffer + ``sorted()`` + DROP-late) on bytes
        keys, punctuating at a trailing quantile so both emission and
        the late path are exercised."""
        values = self._stream(3)
        sorter = ImpatienceSorter(merge="ovc")
        pending = []
        watermark = None
        dropped = 0
        for i, value in enumerate(values):
            if watermark is not None and value <= watermark:
                dropped += 1
                sorter.insert(value)
                continue
            sorter.insert(value)
            pending.append(value)
            if i % 97 == 96:
                mark = sorted(pending)[len(pending) // 2]
                if watermark is not None and mark <= watermark:
                    continue
                watermark = mark
                got = sorter.on_punctuation(mark)
                want = sorted(v for v in pending if v <= mark)
                assert got == want, f"divergence at punctuation {mark!r}"
                pending = [v for v in pending if v > mark]
        assert sorter.flush() == sorted(pending)
        assert dropped > 0, "stream must exercise the late path"
        assert sorter.late.dropped == dropped

    def test_matches_huffman_strategy(self):
        values = self._stream(11)
        ovc = ImpatienceSorter(merge="ovc")
        huffman = ImpatienceSorter(merge="huffman")
        for value in values:
            ovc.insert(value)
            huffman.insert(value)
        assert ovc.flush() == huffman.flush()

    def test_int_keys_still_work(self):
        sorter = ImpatienceSorter(merge="ovc")
        for v in [5, 3, 9, 1, 3]:
            sorter.insert(v)
        assert sorter.flush() == [1, 3, 3, 5, 9]


# -- SDATA wire frames and the parallel runtime -----------------------------


def _string_batch(n, seed=0):
    rng = random.Random(seed)
    names = [f"svc-{i:03d}".encode() for i in range(17)]
    return EventBatch(
        sync_times=[rng.randrange(1000) for _ in range(n)],
        other_times=[rng.randrange(1000) + 1000 for _ in range(n)],
        keys=[rng.randrange(8) for _ in range(n)],
        payload_columns=[[rng.randrange(50) for _ in range(n)]],
        string_columns=[
            [names[rng.randrange(len(names))] for _ in range(n)],
            [LOG_LEVELS[rng.randrange(len(LOG_LEVELS))]
             for _ in range(n)],
        ],
    )


class _FakeRing:
    """Captures the reserve-and-fill write exactly as a ring slot would."""

    def write(self, kind, reserve=None, pump=None, alive=None):
        size, fill = reserve
        buffer = bytearray(size)
        fill(buffer)
        self.kind = kind
        self.payload = bytes(buffer)


class TestSdataWire:
    def test_roundtrip(self):
        from repro.parallel import exchange

        batch = _string_batch(200, seed=5)
        ring = _FakeRing()
        exchange.write_string_batch(ring, batch)
        assert ring.kind == exchange.SDATA
        clone = exchange.read_string_batch(ring.payload, copy=True)
        assert np.array_equal(clone.sync_times, batch.sync_times)
        assert np.array_equal(clone.keys, batch.keys)
        for got, want in zip(clone.string_columns, batch.string_columns):
            assert got.tolist() == want.tolist()
        assert list(clone.events()) == list(batch.events())

    def test_sdata_kind_is_named(self):
        from repro.parallel import exchange

        assert exchange.KIND_NAMES[exchange.SDATA] == "SDATA"

    def test_events_append_string_fields(self):
        batch = _string_batch(4, seed=9)
        for i, event in enumerate(batch.events()):
            assert event.payload[-2] == batch.string_columns[0][i]
            assert event.payload[-1] == batch.string_columns[1][i]


class TestParallelStrings:
    """String columns ship to shard workers as SDATA (no pickling) and
    come back identical to the single-worker run."""

    def _blocks(self, n=900, seed=2):
        from repro.engine.event import Punctuation

        blocks = []
        high = 0
        for start in range(0, n, 150):
            batch = _string_batch(150, seed=seed + start)
            high = max(high, int(batch.sync_times.max()))
            blocks.append(batch)
            blocks.append(Punctuation(high))
        return blocks

    def test_row_plan_multi_worker_matches_single(self):
        from repro.parallel import RowPlan, run_parallel

        blocks = self._blocks()
        single = run_parallel(list(blocks), RowPlan(lambda s: s), 1)
        multi = run_parallel(list(blocks), RowPlan(lambda s: s), 3)
        key = lambda e: (e.sync_time, e.key, e.payload)
        assert sorted(map(key, multi.events)) == \
            sorted(map(key, single.events))
        assert any(
            isinstance(p[-1], bytes) and p[-1] in LOG_LEVELS
            for p in (e.payload for e in multi.events)
        )

    def test_grouped_plan_decodes_string_keys(self):
        from repro.parallel import GroupedAggregatePlan, run_parallel
        from repro.engine.event import Punctuation

        names = [f"svc.zone-{i}".encode() for i in range(6)]
        d = StringDictionary(names)
        rng = random.Random(7)
        elements = []
        raw = []
        for t in range(600):
            name = names[rng.randrange(len(names))]
            raw.append((t // 10, name))
            elements.append(Event(t, t + 1, int(d.code(name)), (1, 1)))
            if t % 50 == 49:
                elements.append(Punctuation(t))
        result = run_parallel(
            elements, GroupedAggregatePlan(10, key_dictionary=d), 3,
            batch_size=64,
        )
        expected = Counter(raw)
        got = {(e.sync_time // 10, e.key): e.payload
               for e in result.events}
        assert got == dict(expected)
        assert all(isinstance(e.key, bytes) for e in result.events)


# -- budgeted spilling ------------------------------------------------------


def _drive_columnar(sorter, ts, column, batch=512, punctuate_every=4):
    outputs = []
    high = None
    n = len(ts)
    for i, start in enumerate(range(0, n, batch)):
        stop = min(start + batch, n)
        sorter.insert_batch(
            ts[start:stop], string_columns=(column.slice(start, stop),)
        )
        top = int(ts[start:stop].max())
        high = top if high is None else max(high, top)
        if i % punctuate_every == punctuate_every - 1:
            outputs.append(sorter.on_punctuation(high - 50))
    outputs.append(sorter.flush())
    return outputs


def _disordered_strings(n, seed=0):
    rng = np.random.default_rng(seed)
    ts = np.arange(n, dtype=np.int64) + rng.integers(0, 40, size=n)
    names = [f"svc.zone-{i % 3}.host-{i:04d}".encode() for i in range(25)]
    column = StringColumn.from_values(
        [names[i] for i in rng.integers(0, len(names), size=n)]
    )
    return ts, column


class TestExternalStringSpill:
    @pytest.mark.parametrize("budget", [1024, 16 * 1024, 64 * 1024 ** 2])
    def test_byte_identity_at_any_budget(self, budget):
        ts, column = _disordered_strings(6000, seed=4)
        baseline = _drive_columnar(
            ColumnarImpatienceSorter(string_columns=1), ts, column
        )
        external = ExternalColumnarSorter(budget, string_columns=1)
        try:
            got = _drive_columnar(external, ts, column)
            spill = external.spill_doc()
        finally:
            external.close()
        assert len(got) == len(baseline)
        for g, w in zip(got, baseline):
            assert np.array_equal(g[0], w[0])
            for gc, wc in zip(g[2], w[2]):
                assert gc.arena == wc.arena
                assert np.array_equal(gc.offsets, wc.offsets)
        assert spill["peak_buffered_bytes"] <= budget
        if budget <= 16 * 1024:
            assert spill["runs_spilled"] > 0

    def test_string_bytes_count_against_the_budget(self):
        """Arena bytes drive spilling: a tiny budget spills even when
        the row-count footprint alone would fit."""
        ts, column = _disordered_strings(3000, seed=9)
        external = ExternalColumnarSorter(2048, string_columns=1)
        try:
            _drive_columnar(external, ts, column)
            assert external.spill_doc()["runs_spilled"] > 0
        finally:
            external.close()

    def test_corrupted_string_block_is_detected(self):
        ts, column = _disordered_strings(4000, seed=2)
        external = ExternalColumnarSorter(2048, string_columns=1)
        try:
            n = len(ts)
            for start in range(0, n, 512):
                stop = min(start + 512, n)
                external.insert_batch(
                    ts[start:stop],
                    string_columns=(column.slice(start, stop),),
                )
            runs = external.pool.runs
            assert runs, "expected at least one spilled run"
            run = runs[0]
            with open(run.path, "r+b") as fh:
                fh.seek(run.length - 9)
                byte = fh.read(1)
                fh.seek(run.length - 9)
                fh.write(bytes([byte[0] ^ 0xFF]))
            with pytest.raises(SpillCorruptionError):
                external.flush()
        finally:
            external.close()


# -- workload generators ----------------------------------------------------


class TestStringWorkloads:
    @pytest.mark.parametrize("generate", [
        generate_cloudlog_strings, generate_androidlog_strings,
    ])
    def test_keys_are_dictionary_codes_of_the_name_column(self, generate):
        ds = generate(1500, seed=5)
        d = ds.key_dictionary
        names, levels = ds.string_payloads
        assert len(names) == len(ds) == len(levels)
        for i in range(0, len(ds), 113):
            assert d.decode(ds.keys[i]) == names[i]
            assert levels[i] in LOG_LEVELS

    def test_batch_carries_the_string_payloads(self):
        ds = generate_cloudlog_strings(400, seed=1)
        batch = EventBatch.from_dataset(ds)
        assert len(batch.string_columns) == 2
        event = next(batch.events())
        assert event.payload[-2] == ds.string_payloads[0][0]

    def test_deterministic(self):
        a = generate_cloudlog_strings(300, seed=8)
        b = generate_cloudlog_strings(300, seed=8)
        assert a.keys == b.keys
        assert a.string_payloads[0] == b.string_payloads[0]


# -- string predicates on the row and compiled engines ----------------------


class TestStringPredicates:
    def _events(self, d, names, n=400, seed=6):
        rng = random.Random(seed)
        events = []
        for t in range(n):
            name = names[rng.randrange(len(names))]
            events.append(
                Event(t, t + 1, int(d.code(name)),
                      (rng.randrange(50), int(d.code(name))))
            )
        return events

    @pytest.mark.parametrize("predicate", ["key-eq", "key-prefix",
                                           "field-eq", "field-prefix"])
    def test_row_vs_compiled_identical_and_no_fallback(self, predicate):
        from repro.engine import QueryPlan
        from repro.engine.compiler import analyze_plan
        from repro.engine.kernels import (
            field_str_eq,
            field_str_prefix,
            key_str_eq,
            key_str_prefix,
        )

        names = [b"auth.api", b"auth.web", b"billing.core", b"cart.svc"]
        d = StringDictionary(names)
        where = {
            "key-eq": key_str_eq(d, b"auth.web"),
            "key-prefix": key_str_prefix(d, b"auth."),
            "field-eq": field_str_eq(1, d, b"cart.svc"),
            "field-prefix": field_str_prefix(1, d, b"b"),
        }[predicate]
        plan = (QueryPlan().where(where).tumbling_window(8).sort()
                .group_aggregate(Count_()))
        path, reason = analyze_plan(plan)
        assert path == "columnar", reason
        events = self._events(d, names)
        row = plan.run(list(events), 32, 20, engine="row")
        auto = plan.run(list(events), 32, 20, engine="auto")
        assert auto.engine == "columnar"
        assert row.events == auto.events
        assert row.punctuations == auto.punctuations
        assert row.events, "predicate must select something"

    def test_prefix_miss_selects_nothing(self):
        from repro.engine import QueryPlan
        from repro.engine.kernels import key_str_prefix

        d = StringDictionary([b"aa", b"ab"])
        plan = (QueryPlan().where(key_str_prefix(d, b"zz"))
                .tumbling_window(8).sort().count())
        result = plan.run([Event(1, 2, 0, (1, 1))], 4, 0, engine="auto")
        assert result.events == []

    def test_raw_string_constant_points_at_dictionary_helpers(self):
        from repro.engine.kernels import key_field

        with pytest.raises(TypeError, match="dictionary"):
            key_field() == b"svc.a"


def Count_():
    from repro.engine.operators.aggregates import Count

    return Count()
