"""Tests for ingress helpers and the graph/pipeline machinery."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryBuildError
from repro.engine import (
    Event,
    Punctuation,
    ingress_events,
    ingress_timestamps,
)
from repro.engine.event import is_punctuation
from repro.engine.graph import Pipeline, QueryNode, source_node
from repro.engine.operators import Collector, PassThrough


class TestIngressEvents:
    def test_punctuation_cadence(self):
        events = [Event(t) for t in range(10)]
        elements = list(ingress_events(events, frequency=4))
        puncts = [e for e in elements if is_punctuation(e)]
        # Two cadence punctuations (after 4 and 8 events) + final.
        assert [p.timestamp for p in puncts] == [3, 7, 9]

    def test_reorder_latency_applied(self):
        events = [Event(t) for t in range(10)]
        elements = list(ingress_events(events, frequency=5,
                                       reorder_latency=2))
        puncts = [p.timestamp for p in elements if is_punctuation(p)]
        assert puncts == [2, 7, 9]

    def test_no_frequency_only_final(self):
        events = [Event(t) for t in (3, 1, 2)]
        elements = list(ingress_events(events))
        puncts = [p.timestamp for p in elements if is_punctuation(p)]
        assert puncts == [3]

    def test_no_final_punctuation(self):
        events = [Event(1)]
        elements = list(ingress_events(events, final_punctuation=False))
        assert not any(is_punctuation(e) for e in elements)

    def test_empty_stream(self):
        assert list(ingress_events([])) == []

    def test_event_order_preserved(self):
        events = [Event(t) for t in (5, 2, 9)]
        elements = [e for e in ingress_events(events, frequency=100)
                    if not is_punctuation(e)]
        assert [e.sync_time for e in elements] == [5, 2, 9]


class TestIngressTimestamps:
    def test_tagged_stream(self):
        tagged = list(ingress_timestamps([5, 1, 9], frequency=2))
        assert tagged == [
            ("event", 5), ("event", 1), ("punct", 5), ("event", 9),
            ("punct", 9),
        ]

    def test_latency(self):
        tagged = list(
            ingress_timestamps([10, 20], frequency=1, reorder_latency=5)
        )
        assert tagged == [
            ("event", 10), ("punct", 5), ("event", 20), ("punct", 15),
            ("punct", 20),
        ]


class TestPipeline:
    def test_requires_source(self):
        floating = QueryNode(PassThrough, ((source_node(), None),))
        pipeline = Pipeline([floating])
        assert len(pipeline.operators) == 2

    def test_no_source_rejected(self):
        # A node graph whose "parents" list is empty but is not a true
        # source still registers as one; an actually empty graph cannot be
        # expressed, so test the multi-source run restriction instead.
        a = source_node("a")
        b = source_node("b")
        merged = QueryNode(PassThrough, ((a, None), (b, None)))
        pipeline = Pipeline([merged])
        with pytest.raises(QueryBuildError, match="exactly one source"):
            pipeline.run([])

    def test_diamond_materializes_once(self):
        src = source_node()
        left = QueryNode(PassThrough, ((src, None),), name="l")
        right = QueryNode(PassThrough, ((src, None),), name="r")
        sink_l = QueryNode(Collector, ((left, None),))
        sink_r = QueryNode(Collector, ((right, None),))
        pipeline = Pipeline([sink_l, sink_r])
        pipeline.run([Event(1)])
        assert len(pipeline.operator_for(sink_l).events) == 1
        assert len(pipeline.operator_for(sink_r).events) == 1
        # src materialized once: 5 operators total, not 6.
        assert len(pipeline.operators) == 5

    def test_operator_for_unknown_node(self):
        src = source_node()
        sink = QueryNode(Collector, ((src, None),))
        pipeline = Pipeline([sink])
        with pytest.raises(QueryBuildError, match="not part of this pipeline"):
            pipeline.operator_for(source_node())

    def test_manual_driving(self):
        src = source_node()
        sink = QueryNode(Collector, ((src, None),))
        pipeline = Pipeline([sink])
        pipeline.push_event(Event(1))
        pipeline.push_punctuation(5)
        pipeline.flush()
        collector = pipeline.operator_for(sink)
        assert collector.sync_times == [1]
        assert collector.punctuations == [5]
        assert collector.completed

    def test_on_punctuation_hook(self):
        src = source_node()
        sink = QueryNode(Collector, ((src, None),))
        pipeline = Pipeline([sink])
        samples = []
        pipeline.run(
            [Event(1), Punctuation(1), Event(2), Punctuation(2)],
            on_punctuation=lambda p: samples.append(p.buffered_events()),
        )
        assert len(samples) == 2

    def test_buffered_events_sums_operators(self):
        from repro.engine.operators.sort import Sort

        src = source_node()
        sort = QueryNode(Sort, ((src, None),))
        sink = QueryNode(Collector, ((sort, None),))
        pipeline = Pipeline([sink])
        pipeline.push_event(Event(5))
        pipeline.push_event(Event(3))
        assert pipeline.buffered_events() == 2
        pipeline.flush()
        assert pipeline.buffered_events() == 0
