"""Tests for the event model and punctuation policy (repro.engine)."""

from __future__ import annotations

import pytest

from repro.engine.event import EVENT_BYTES, Event, Punctuation, is_punctuation
from repro.engine.punctuation import PunctuationPolicy


class TestEvent:
    def test_default_other_time_is_point_interval(self):
        event = Event(10)
        assert event.other_time == 11

    def test_with_times(self):
        event = Event(10, 11, key=3, payload=(1, 2))
        adjusted = event.with_times(0, 100)
        assert (adjusted.sync_time, adjusted.other_time) == (0, 100)
        assert adjusted.key == 3 and adjusted.payload == (1, 2)
        assert event.sync_time == 10  # original untouched

    def test_with_payload_and_key(self):
        event = Event(1, 2, key=0, payload=(9,))
        assert event.with_payload((7,)).payload == (7,)
        assert event.with_key(5).key == 5

    def test_equality_and_hash(self):
        a = Event(1, 2, 3, (4,))
        b = Event(1, 2, 3, (4,))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Event(1, 2, 3, (5,))
        assert a != "not an event"

    def test_event_bytes_matches_trill_layout(self):
        # 2×64-bit timestamps + 32-bit key + 64-bit hash + 4×32-bit payload.
        assert EVENT_BYTES == 8 + 8 + 4 + 8 + 16

    def test_repr(self):
        assert "sync=1" in repr(Event(1))


class TestPunctuation:
    def test_identity(self):
        assert Punctuation(5) == Punctuation(5)
        assert Punctuation(5) != Punctuation(6)
        assert hash(Punctuation(5)) == hash(Punctuation(5))

    def test_is_punctuation(self):
        assert is_punctuation(Punctuation(1))
        assert not is_punctuation(Event(1))


class TestPunctuationPolicy:
    def test_every_n_events_at_watermark(self):
        policy = PunctuationPolicy(frequency=3)
        assert policy.observe(10) is None
        assert policy.observe(12) is None
        assert policy.observe(11) == 12  # high watermark, latency 0

    def test_reorder_latency_subtracted(self):
        policy = PunctuationPolicy(frequency=2, reorder_latency=5)
        policy.observe(10)
        assert policy.observe(20) == 15

    def test_monotonicity_skips_stale(self):
        policy = PunctuationPolicy(frequency=1, reorder_latency=0)
        assert policy.observe(10) == 10
        assert policy.observe(3) is None  # watermark did not advance
        assert policy.observe(11) == 11

    def test_disabled_frequency(self):
        policy = PunctuationPolicy(frequency=None)
        assert policy.observe(1) is None
        assert policy.high_watermark == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PunctuationPolicy(frequency=0)
        with pytest.raises(ValueError):
            PunctuationPolicy(frequency=1, reorder_latency=-1)

    def test_high_watermark_tracks_max(self):
        policy = PunctuationPolicy(frequency=10)
        for t in [5, 3, 8, 2]:
            policy.observe(t)
        assert policy.high_watermark == 8
