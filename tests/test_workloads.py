"""Tests for workload simulators and their Table I calibration."""

from __future__ import annotations

import pytest

from repro.metrics import measure_disorder
from repro.workloads import (
    Dataset,
    generate_androidlog,
    generate_cloudlog,
    generate_synthetic,
    load_dataset,
)


class TestDataset:
    def test_parallel_columns_enforced(self):
        with pytest.raises(ValueError, match="parallel"):
            Dataset("x", [1, 2], payloads=[(1,)], keys=[0, 0])

    def test_default_payloads_and_keys(self):
        ds = Dataset("x", [5, 6, 7])
        assert len(ds.payloads) == 3
        assert len(ds.keys) == 3

    def test_events_iteration(self):
        ds = Dataset("x", [5, 6], payloads=[(1,), (2,)], keys=[9, 8])
        events = list(ds.events())
        assert [(e.sync_time, e.key, e.payload) for e in events] == [
            (5, 9, (1,)), (6, 8, (2,)),
        ]

    def test_head_prefix(self):
        ds = Dataset("x", [1, 2, 3])
        head = ds.head(2)
        assert head.timestamps == [1, 2]
        assert len(head.payloads) == 2
        assert head.params["head"] == 2

    def test_span(self):
        assert Dataset("x", [5, 1, 9]).span == (1, 9)


class TestSynthetic:
    def test_deterministic(self):
        a = generate_synthetic(1000, seed=5)
        b = generate_synthetic(1000, seed=5)
        assert a.timestamps == b.timestamps
        assert a.payloads == b.payloads

    def test_zero_disorder_is_sorted(self):
        ds = generate_synthetic(1000, percent_disorder=0)
        assert ds.timestamps == sorted(ds.timestamps)

    def test_disorder_percentage_scales_inversions(self):
        low = generate_synthetic(3000, percent_disorder=1, seed=1)
        high = generate_synthetic(3000, percent_disorder=100, seed=1)
        assert (
            measure_disorder(high.timestamps).inversions
            > 10 * measure_disorder(low.timestamps).inversions
        )

    def test_disorder_amount_scales_distance(self):
        small = generate_synthetic(3000, amount_disorder=4, seed=1)
        large = generate_synthetic(3000, amount_disorder=1024, seed=1)
        assert (
            measure_disorder(large.timestamps).distance
            > measure_disorder(small.timestamps).distance
        )

    def test_timestamps_never_negative(self):
        ds = generate_synthetic(2000, percent_disorder=100,
                                amount_disorder=10_000)
        assert min(ds.timestamps) >= 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_synthetic(10, percent_disorder=101)
        with pytest.raises(ValueError):
            generate_synthetic(10, amount_disorder=-1)


class TestCloudLog:
    """Table I shape: chaotic at fine granularity, ordered coarsely."""

    def test_deterministic(self):
        assert (
            generate_cloudlog(2000, seed=2).timestamps
            == generate_cloudlog(2000, seed=2).timestamps
        )

    def test_tiny_natural_runs(self, cloudlog_small):
        stats = measure_disorder(cloudlog_small.timestamps)
        assert stats.mean_run_length < 5  # paper: ≈2.7

    def test_interleaved_far_below_runs(self, cloudlog_small):
        stats = measure_disorder(cloudlog_small.timestamps)
        assert stats.interleaved < stats.runs / 10

    def test_burst_creates_large_distance(self, cloudlog_small):
        stats = measure_disorder(cloudlog_small.timestamps)
        assert stats.distance > len(cloudlog_small) * 0.3

    def test_no_bursts_means_small_distance(self):
        ds = generate_cloudlog(5000, n_bursts=0, delay_spread_ms=50,
                               seed=7)
        stats = measure_disorder(ds.timestamps)
        assert stats.distance < len(ds) * 0.05

    def test_invalid_servers(self):
        with pytest.raises(ValueError):
            generate_cloudlog(10, n_servers=0)


class TestAndroidLog:
    """Table I shape: ordered at fine granularity, chaotic coarsely."""

    def test_deterministic(self):
        assert (
            generate_androidlog(2000, seed=2).timestamps
            == generate_androidlog(2000, seed=2).timestamps
        )

    def test_long_natural_runs(self, androidlog_small):
        stats = measure_disorder(androidlog_small.timestamps)
        assert stats.mean_run_length > 5

    def test_interleaved_bounded_by_phones(self):
        ds = generate_androidlog(3000, n_phones=10, seed=1)
        stats = measure_disorder(ds.timestamps)
        assert stats.interleaved <= 10 + 1

    def test_inversions_orders_of_magnitude_above_cloudlog(
        self, cloudlog_small, androidlog_small
    ):
        cloud = measure_disorder(cloudlog_small.timestamps)
        android = measure_disorder(androidlog_small.timestamps)
        assert android.inversions > 2 * cloud.inversions
        assert android.runs < cloud.runs / 4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_androidlog(10, n_phones=0)
        with pytest.raises(ValueError):
            generate_androidlog(10, uploads_per_phone=0)
        with pytest.raises(ValueError):
            generate_androidlog(10, rare_uploader_fraction=1.5)


class TestRegistry:
    def test_load_dataset_memoizes(self):
        a = load_dataset("synthetic", 500, seed=9)
        b = load_dataset("synthetic", 500, seed=9)
        assert a is b

    def test_load_dataset_kwargs_distinguish(self):
        a = load_dataset("synthetic", 500, seed=9, percent_disorder=10)
        b = load_dataset("synthetic", 500, seed=9, percent_disorder=20)
        assert a is not b

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("oracle", 10)

    def test_all_names_loadable(self):
        for name in ("synthetic", "cloudlog", "androidlog"):
            ds = load_dataset(name, 300)
            assert len(ds) == 300
            assert ds.name == name
