"""Crash-recovery acceptance: byte-identity across the chaos matrix.

The resilience contract: for every chaos seed, a supervised run whose
source is chaos-wrapped (transient I/O faults, injected crashes,
duplicates, malformed events, regressing punctuations) delivers output
**byte-identical** to the fault-free run — across late policies and
checkpoint frequencies.  ``drop`` faults model genuine upstream data
loss and are asserted via accounting instead of identity.

Extra seeds can be exercised from CI via ``REPRO_CHAOS_SEED=<n>``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import ImpatienceSorter
from repro.core.late import LatePolicy
from repro.engine import DisorderedStreamable
from repro.metrics.profile import suggest_reorder_latency
from repro.observability import MetricsRegistry
from repro.framework.memory import MemoryMeter
from repro.resilience import (
    LoadSheddingGuard,
    QuarantineLedger,
    Reason,
    SorterSupervisor,
    run_supervised,
)
from repro.workloads import load_dataset

SEEDS = [0, 1, 2]
_env_seed = os.environ.get("REPRO_CHAOS_SEED")
if _env_seed is not None and int(_env_seed) not in SEEDS:
    SEEDS.append(int(_env_seed))

N = 1_200
_DATASET = load_dataset("cloudlog", N)
_LATENCY = suggest_reorder_latency(_DATASET.timestamps, 0.95)


def build_query(late_policy):
    """A windowed count over the shared disordered dataset, with the
    sort operator running the given late policy."""
    disordered = DisorderedStreamable.from_dataset(
        _DATASET, punctuation_frequency=100, reorder_latency=_LATENCY
    )
    return (
        disordered.tumbling_window(200)
        .to_streamable(
            sorter=lambda: ImpatienceSorter(
                key=lambda e: e.sync_time, late_policy=late_policy
            )
        )
        .count()
    )


def fault_free(late_policy):
    """The reference output: supervised but chaos-free (quarantine on,
    so ``RAISE`` runs complete)."""
    return run_supervised(build_query(late_policy), quarantine=True).events


class TestCrashRecoveryMatrix:
    @pytest.mark.parametrize("late_policy", [
        LatePolicy.DROP, LatePolicy.ADJUST, LatePolicy.RAISE,
    ])
    @pytest.mark.parametrize("checkpoint_every", [1, 3])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_byte_identity_io_and_crash(self, late_policy,
                                        checkpoint_every, seed):
        expected = fault_free(late_policy)
        result = run_supervised(
            build_query(late_policy),
            chaos="io:p=0.01;crash:punct=2+5,limit=2",
            seed=seed,
            checkpoint_every=checkpoint_every,
            quarantine=True,
            sleep=lambda s: None,
        )
        assert result.events == expected
        assert result.punctuations == run_supervised(
            build_query(late_policy), quarantine=True
        ).punctuations
        assert result.completed
        assert result.restarts == 2
        # Every restore reports its recovery position honestly.
        for restore in result.restores:
            assert restore["replayed"] >= restore["checkpoint_offset"]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_byte_identity_dup_malform_regress(self, seed):
        """Additive faults (duplicates, malformed events, regressing
        punctuations) are absorbed by dedup + quarantine: output stays
        byte-identical."""
        expected = fault_free(LatePolicy.DROP)
        result = run_supervised(
            build_query(LatePolicy.DROP),
            chaos="dup:p=0.01;malform:p=0.005;regress:p=0.05,delta=3",
            seed=seed,
            quarantine=True,
            sleep=lambda s: None,
        )
        assert result.events == expected
        fired = result.injector.fired
        assert result.ledger.count(Reason.MALFORMED) == \
            fired.get("malform", 0)
        assert result.ledger.count(Reason.DUPLICATE) == \
            fired.get("dup", 0)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_drop_faults_accounted_not_identical(self, seed):
        """``drop`` is genuine upstream loss: the output may shrink, and
        the injector's firing count states by exactly how much input was
        lost."""
        expected = fault_free(LatePolicy.DROP)
        result = run_supervised(
            build_query(LatePolicy.DROP),
            chaos="drop:p=0.01", seed=seed, quarantine=True,
            sleep=lambda s: None,
        )
        dropped = result.injector.fired.get("drop", 0)
        assert dropped > 0
        # Windowed counts: total counted events shrink by the dropped
        # events that were not already late-dropped.
        total = sum(e.payload for e in result.events)
        baseline_total = sum(e.payload for e in expected)
        assert baseline_total - total <= dropped

    def test_crash_during_replay_still_recovers(self):
        """A crash while another crash's replay is still running (crash
        at punctuations 2 and 3) must not corrupt delivery."""
        expected = fault_free(LatePolicy.ADJUST)
        result = run_supervised(
            build_query(LatePolicy.ADJUST),
            chaos="crash:punct=2+3+4", seed=0, quarantine=True,
            checkpoint_every=1, sleep=lambda s: None,
        )
        assert result.events == expected
        assert result.restarts == 3


class TestSorterCheckpointRecovery:
    def elements(self, seed):
        import random

        rng = random.Random(seed)
        values = list(range(1_500))
        for _ in range(300):
            i = rng.randrange(len(values))
            j = max(0, i - rng.randint(1, 40))
            values[i], values[j] = values[j], values[i]
        out, high = [], None
        for i, v in enumerate(values):
            out.append(("event", v))
            high = v if high is None else max(high, v)
            if (i + 1) % 100 == 0:
                out.append(("punct", high - 60))
        return out

    def reference(self, elements):
        sorter = ImpatienceSorter()
        out = []
        for kind, value in elements:
            if kind == "event":
                sorter.insert(value)
            else:
                out.extend(sorter.on_punctuation(value))
        out.extend(sorter.flush())
        return out

    @pytest.mark.parametrize("checkpoint_every", [1, 2, 5])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_true_restore_byte_identity(self, checkpoint_every, seed):
        elements = self.elements(seed)
        expected = self.reference(elements)
        supervisor = SorterSupervisor(
            checkpoint_every=checkpoint_every,
            chaos="io:p=0.005;crash:punct=3+8,limit=2",
            seed=seed,
            sleep=lambda s: None,
        )
        result = supervisor.run(elements)
        assert result.output == expected
        assert result.restarts == 2
        assert result.checkpoints > 0
        # Truncation: the retained journal is the post-checkpoint delta,
        # far smaller than the full stream.
        assert result.journal_len < len(elements) // 4

    def test_recovery_is_restore_not_full_replay(self):
        elements = self.elements(0)
        supervisor = SorterSupervisor(
            checkpoint_every=1,
            chaos="crash:punct=10", seed=0,
            sleep=lambda s: None,
        )
        result = supervisor.run(elements)
        assert result.output == self.reference(elements)
        [restore] = result.restores
        assert restore["from_checkpoint"] is True
        # The delta replayed after restoring is at most one
        # checkpoint interval of elements, not the whole prefix.
        assert restore["replayed"] <= 110


class TestExternalSpillRecovery:
    """The chaos matrix extended to disk: a supervised bounded-memory
    sorter whose spilled run files suffer injected OSErrors, corruption,
    and truncation must recover from its checkpoint with byte-identical,
    exactly-once delivery — a wrong answer is never an option."""

    BUDGET = 512

    def elements(self, seed):
        import random

        rng = random.Random(seed)
        values = list(range(1_500))
        for _ in range(300):
            i = rng.randrange(len(values))
            j = max(0, i - rng.randint(1, 40))
            values[i], values[j] = values[j], values[i]
        out, high = [], None
        for i, v in enumerate(values):
            out.append(("event", v))
            high = v if high is None else max(high, v)
            if (i + 1) % 100 == 0:
                out.append(("punct", high - 60))
        return out

    def reference(self, elements):
        sorter = ImpatienceSorter()
        out = []
        for kind, value in elements:
            if kind == "event":
                sorter.insert(value)
            else:
                out.extend(sorter.on_punctuation(value))
        out.extend(sorter.flush())
        return out

    def supervise(self, elements, chaos, seed, **kwargs):
        from repro.sorting.external import ExternalImpatienceSorter

        supervisor = SorterSupervisor(
            lambda: ExternalImpatienceSorter(self.BUDGET),
            checkpoint_every=2, quarantine=True,
            chaos=chaos, seed=seed, sleep=lambda s: None, **kwargs,
        )
        result = supervisor.run(elements)
        result.sorter.close()
        return result

    @pytest.mark.parametrize("mode", ["oserror", "corrupt", "truncate"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_spill_fault_byte_identity(self, mode, seed):
        elements = self.elements(seed)
        expected = self.reference(elements)
        result = self.supervise(
            elements,
            chaos=f"spill:p=0.05,mode={mode},on=both,limit=2",
            seed=seed,
        )
        assert result.output == expected
        if result.injector.fired.get("spill", 0):
            assert result.restarts >= 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_spill_and_crash_combined(self, seed):
        """Disk corruption layered on process crashes: both recovery
        paths compose without disturbing delivery."""
        elements = self.elements(seed)
        expected = self.reference(elements)
        result = self.supervise(
            elements,
            chaos="spill:p=0.04,mode=corrupt,on=read,limit=1;"
                  "crash:punct=4+9,limit=2",
            seed=seed,
        )
        assert result.output == expected
        assert result.restarts >= 2  # the two crashes, plus any spill hit

    def test_corrupt_run_is_quarantined_with_location(self):
        elements = self.elements(0)
        result = self.supervise(
            elements,
            chaos="spill:p=1.0,mode=corrupt,on=read,limit=1", seed=0,
        )
        assert result.output == self.reference(elements)
        spills = [
            entry for entry in result.ledger.entries
            if str(entry.element).startswith("spill:")
        ]
        assert len(spills) == 1
        assert "@" in str(spills[0].element)  # file path + byte offset


class TestObservabilityExport:
    def test_snapshot_carries_quarantine_and_degradations(self, tmp_path):
        registry = MetricsRegistry()
        meter = MemoryMeter()
        guard = LoadSheddingGuard(max_buffered_events=40, check_interval=16)
        result = run_supervised(
            build_query(LatePolicy.RAISE),
            chaos="malform:p=0.01;crash:punct=4", seed=1,
            quarantine=QuarantineLedger(max_entries=50),
            guard=guard, metrics=registry, memory=meter,
            sleep=lambda s: None,
        )
        snapshot = registry.snapshot(
            memory=meter, resilience=result.resilience_doc()
        )
        doc = json.loads(snapshot.to_json())
        res = doc["resilience"]
        assert res["restarts"] == 1
        assert res["quarantine"]["by_reason"].get("malformed", 0) > 0
        assert isinstance(res["degradations"], list)
        assert res["chaos"]["seed"] == 1
        assert "crash" in res["chaos"]["fired"]
        # The per-operator late dict now reports quarantined counts.
        sort_ops = [
            op for op in doc["operators"] if "late" in op
        ]
        assert sort_ops
        assert all("quarantined" in op["late"] for op in sort_ops)
        out = tmp_path / "metrics.json"
        snapshot.save(out)
        assert json.loads(out.read_text())["resilience"] == res

    def test_metrics_describe_logical_run_not_attempts(self):
        """After two crash-restarts, event counts must match a crash-free
        run — the registry resets per attempt instead of triple
        counting."""
        clean_registry = MetricsRegistry()
        run_supervised(
            build_query(LatePolicy.DROP), quarantine=True,
            metrics=clean_registry,
        )
        crash_registry = MetricsRegistry()
        run_supervised(
            build_query(LatePolicy.DROP),
            chaos="crash:punct=3+6", seed=0, quarantine=True,
            metrics=crash_registry, sleep=lambda s: None,
        )
        clean = clean_registry.snapshot().totals
        crashed = crash_registry.snapshot().totals
        assert crashed["events_in"] == clean["events_in"]
        assert crashed["events_out"] == clean["events_out"]


class TestStreamablesSupervised:
    def latencies(self):
        return [0, _LATENCY]

    def test_supervised_framework_run_matches_plain(self):
        disordered = DisorderedStreamable.from_dataset(
            _DATASET, punctuation_frequency=100, reorder_latency=_LATENCY
        )
        plain = disordered.to_streamables(self.latencies()).run()
        disordered2 = DisorderedStreamable.from_dataset(
            _DATASET, punctuation_frequency=100, reorder_latency=_LATENCY
        )
        supervised = disordered2.to_streamables(self.latencies()).run(
            supervised={
                "chaos": "crash:punct=3;io:p=0.005",
                "seed": 2,
                "sleep": lambda s: None,
            }
        )
        assert supervised.supervised.restarts == 1
        for i in range(len(self.latencies())):
            assert [
                (e.sync_time, e.other_time, e.payload)
                for e in supervised.output_events(i)
            ] == [
                (e.sync_time, e.other_time, e.payload)
                for e in plain.output_events(i)
            ]
            assert supervised.completeness(i) == plain.completeness(i)
