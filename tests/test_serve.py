"""Tests for the always-on serve layer (repro.serve).

Covers the wire protocol and standing-query spec grammar, the durable
ingress journal (torn-tail tolerance included), standing-query /
batch-run byte-identity, the tenant state machine (dedup, quarantine,
quota shedding, journal-replay recovery), the live server end to end
(TCP + HTTP framings, snapshot ``serve`` section, SIGTERM drain), and —
the acceptance centerpiece — a chaos soak: three tenants under seeded
net faults (disconnect, slowloris, malform, dup, split) with the server
``kill -9``-ed mid-stream and restarted, asserting results byte-identical
to the uninterrupted batch run and fault counters reconciling exactly
with the injector.

Extra soak seeds can be exercised from CI via ``REPRO_CHAOS_SEED=<n>``.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.core.errors import (
    ReplayDivergenceError,
    ServeProtocolError,
)
from repro.engine import DisorderedStreamable, Event, Punctuation
from repro.resilience.chaos import FaultInjector
from repro.resilience.quarantine import QuarantineLedger
from repro.serve import (
    ServeClient,
    StandingQuery,
    TenantJournal,
    TenantRuntime,
    load_state,
    parse_query_spec,
    save_state,
)
from repro.serve.protocol import (
    decode_data_frame,
    decode_element,
    encode_element,
    parse_result_line,
    result_line,
)

SEEDS = [17]
_env_seed = os.environ.get("REPRO_CHAOS_SEED")
if _env_seed is not None and int(_env_seed) not in SEEDS:
    SEEDS.append(int(_env_seed))


def make_stream(n=60, punct_every=10, key_mod=3, payload=None):
    """A deterministic in-order element stream with punctuations."""
    elements = []
    for i in range(n):
        elements.append(Event(i, i + 1, i % key_mod,
                              payload(i) if payload else (i,)))
        if i % punct_every == punct_every - 1:
            elements.append(Punctuation(i))
    return elements


def batch_reference(spec, elements):
    """The uninterrupted batch run of ``spec`` over ``elements``."""
    plan = parse_query_spec(spec)
    return plan.bind(DisorderedStreamable.from_elements(elements)).collect()


def drive(query, elements, flush=True):
    for element in elements:
        if isinstance(element, Punctuation):
            query.push_punctuation(element.timestamp)
        else:
            query.push_event(element)
    if flush:
        query.flush()


class TestQuerySpec:
    def test_compiles_the_paper_grouped_count(self):
        plan = parse_query_spec("window=10|sort|group-count")
        described = plan.describe()
        assert "tumbling_window" in described
        assert "sort" in described

    def test_all_steps_compile(self):
        parse_query_spec(
            "where=key<2|window=5|hop=10/5|sort=adjust|group-sum=0"
        )
        parse_query_spec("window=4|sort|count")
        parse_query_spec("where=sync>3|sort=drop|group-sum")

    @pytest.mark.parametrize("spec", [
        "",
        "window=10",                 # no sort step
        "window=0|sort",
        "window=x|sort",
        "hop=5/0|sort",
        "sort=sideways",
        "bogus|sort",
        "where=flavor<3|sort",
        "where=key~3|sort",
        "where=key<abc|sort",
        "group-sum=-1|sort",
    ])
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ServeProtocolError):
            parse_query_spec(spec)


class TestProtocol:
    def test_result_line_round_trips_nested_payloads(self):
        event = Event(3, 7, (1, 2), ("a", (4, 5)))
        qid, pos, back = parse_result_line(result_line("q1", 9, event))
        assert (qid, pos) == ("q1", 9)
        assert repr(back) == repr(event)

    def test_result_line_round_trips_punctuation(self):
        qid, pos, back = parse_result_line(
            result_line("q2", 0, Punctuation(42))
        )
        assert (qid, pos, back.timestamp) == ("q2", 0, 42)

    def test_reof_round_trip(self):
        assert parse_result_line("REOF q3 12") == ("q3", 12, None)

    def test_encode_decode_element_round_trip(self):
        for element in (Event(1, 2, 0, (1, (2, 3))), Punctuation(5)):
            assert repr(decode_element(encode_element(element))) == \
                repr(element)

    @pytest.mark.parametrize("parts", [
        ["not-an-int"],
        ["1", "2", "3"],
        ["x", "2", "0", "[1]"],
        ["1", "2", "{bad", "[1]"],
    ])
    def test_decode_rejects_malformed_frames(self, parts):
        with pytest.raises(ServeProtocolError):
            decode_data_frame(parts)


class TestJournal:
    def test_append_and_load_round_trip(self, tmp_path):
        journal = TenantJournal(tmp_path / "journal-t.jsonl")
        journal.append_event(Event(1, 2, 0, (5,)))
        journal.append_punctuation(1)
        journal.append_punctuation(3, forced=True)
        journal.append_flush()
        journal.close()

        fresh = TenantJournal(tmp_path / "journal-t.jsonl")
        replay = list(fresh.load())
        assert [kind for kind, _ in replay] == ["e", "p", "g", "f"]
        assert repr(replay[0][1]) == repr(Event(1, 2, 0, (5,)))
        assert replay[2][1].timestamp == 3
        assert fresh.length == 4

    def test_torn_trailing_line_is_truncated(self, tmp_path):
        path = tmp_path / "journal-t.jsonl"
        journal = TenantJournal(path)
        journal.append_event(Event(1, 2, 0, (1,)))
        journal.append_punctuation(1)
        journal.close()
        with open(path, "a") as fh:
            fh.write('["e", 2, 9, 10')  # torn mid-append by the crash

        fresh = TenantJournal(path)
        assert [kind for kind, _ in fresh.load()] == ["e", "p"]
        assert fresh.length == 2
        # The torn bytes are gone: appends continue from a clean tail.
        fresh.append_event(Event(9, 10, 0, (9,)))
        fresh.close()
        again = TenantJournal(path)
        assert [kind for kind, _ in again.load()] == ["e", "p", "e"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "journal-t.jsonl"
        with open(path, "w") as fh:
            fh.write('["e", 0, 1, 2, 0, [1]]\n')
            fh.write("garbage\n")
            fh.write('["p", 2, 5]\n')
        with pytest.raises(ServeProtocolError):
            list(TenantJournal(path).load())

    def test_state_round_trip_and_first_boot(self, tmp_path):
        assert load_state(tmp_path) == {}
        save_state(tmp_path, {"tenants": {"a": {"journal": 3}}})
        assert load_state(tmp_path)["tenants"]["a"]["journal"] == 3


class TestStandingQuery:
    @pytest.mark.parametrize("spec", [
        "window=10|sort|group-count",
        "window=10|sort|count",
        "where=key<2|window=5|sort|group-sum=0",
    ])
    def test_byte_identical_to_batch_run(self, spec):
        elements = make_stream()
        query = StandingQuery("q", spec)
        drive(query, elements)
        reference = batch_reference(spec, elements)
        served_events = [e for e in query.results
                         if not isinstance(e, Punctuation)]
        served_puncts = [e.timestamp for e in query.results
                         if isinstance(e, Punctuation)]
        assert [repr(e) for e in served_events] == \
            [repr(e) for e in reference.events]
        assert served_puncts == reference.punctuations
        assert query.completed

    def test_verify_replay_accepts_exact_regeneration(self):
        elements = make_stream(n=30)
        first = StandingQuery("q", "window=10|sort|group-count")
        drive(first, elements)
        expected = first.as_state()

        replayed = StandingQuery("q", "window=10|sort|group-count")
        drive(replayed, elements)
        replayed.verify_replay(expected)  # must not raise

    def test_verify_replay_rejects_divergence(self):
        elements = make_stream(n=30)
        first = StandingQuery("q", "window=10|sort|group-sum=0")
        drive(first, elements)
        expected = first.as_state()

        # Forked history: every payload differs, so the sums diverge.
        forked = [Event(e.sync_time, e.other_time, e.key, (999,))
                  if not isinstance(e, Punctuation) else e
                  for e in elements]
        replayed = StandingQuery("q", "window=10|sort|group-sum=0")
        drive(replayed, forked)
        with pytest.raises(ReplayDivergenceError):
            replayed.verify_replay(expected)

    def test_verify_replay_rejects_short_replay(self):
        elements = make_stream(n=30)
        first = StandingQuery("q", "window=10|sort|group-count")
        drive(first, elements)
        expected = first.as_state()

        replayed = StandingQuery("q", "window=10|sort|group-count")
        drive(replayed, elements[: len(elements) // 3], flush=False)
        with pytest.raises(ReplayDivergenceError):
            replayed.verify_replay(expected)

    def test_delivery_lag_samples_accumulate(self):
        query = StandingQuery("q", "window=5|sort|count")
        drive(query, make_stream(n=20, punct_every=5))
        assert query.lags
        assert all(lag >= 0 for lag in query.lags)


class TestTenantRuntime:
    def _runtime(self, tmp_path, quota=None):
        ledger = QuarantineLedger(
            sidecar=os.path.join(tmp_path, "quarantine.jsonl")
        )
        return TenantRuntime("t1", str(tmp_path), ledger, quota=quota)

    def test_duplicate_offsets_are_dropped_and_counted(self, tmp_path):
        runtime = self._runtime(tmp_path)
        runtime.subscribe("q", "window=10|sort|count")
        event = Event(0, 1, 0, (0,))
        assert runtime.accept_event(0, event)
        assert not runtime.accept_event(0, event)
        assert runtime.counters["duplicates"] == 1
        assert runtime.journal.length == 1

    def test_offset_gap_raises(self, tmp_path):
        runtime = self._runtime(tmp_path)
        with pytest.raises(ServeProtocolError):
            runtime.accept_event(5, Event(0, 1, 0, (0,)))

    def test_quarantine_records_net_source(self, tmp_path):
        runtime = self._runtime(tmp_path)
        runtime.quarantine(7, "EVENT 7 garbage", "unparseable")
        assert runtime.counters["quarantined"] == 1
        entry = runtime.ledger.entries[-1]
        assert entry.context["source"] == "net:t1@7"

    def test_quota_breach_sheds_via_forced_punctuation(self, tmp_path):
        runtime = self._runtime(tmp_path, quota=8)
        runtime.subscribe("q", "window=100|sort|count")
        offset = 0
        for i in range(40):
            runtime.accept_event(offset, Event(i, i + 1, 0, (i,)))
            offset += 1
        assert runtime.counters["shed"] > 0
        # Forced punctuations are journaled as "g" lines...
        runtime.journal.close()
        tags = [json.loads(line)[0]
                for line in open(runtime.journal.path)]
        assert "g" in tags
        # ...and the shed produced early results.
        assert runtime.queries["q"].results

    def test_recovery_replays_and_verifies(self, tmp_path):
        runtime = self._runtime(tmp_path, quota=8)
        runtime.subscribe("q", "window=100|sort|count")
        offset = 0
        for i in range(40):
            runtime.accept_event(offset, Event(i, i + 1, 0, (i,)))
            offset += 1
        state = runtime.as_state()
        before = [repr(e) for e in runtime.queries["q"].results]
        runtime.close()

        # Fresh runtime, same dir: journal replay must regenerate the
        # exact result prefix — guard decisions included, replayed from
        # "g" lines rather than re-decided.
        recovered = TenantRuntime(
            "t1", str(tmp_path), QuarantineLedger(), quota=8
        )
        recovered.recover(state)
        after = [repr(e) for e in recovered.queries["q"].results]
        assert after == before
        assert recovered.journal.length == runtime.journal.length

    def test_recovery_detects_forked_journal(self, tmp_path):
        runtime = self._runtime(tmp_path)
        runtime.subscribe("q", "window=10|sort|group-sum=0")
        offset = 0
        for element in make_stream(n=20, punct_every=5):
            if isinstance(element, Punctuation):
                runtime.accept_punctuation(offset, element.timestamp)
            else:
                runtime.accept_event(offset, element)
            offset += 1
        state = runtime.as_state()
        runtime.close()

        # Tamper with a journaled payload: replay must refuse to serve
        # the forked result stream.
        lines = open(runtime.journal.path).read().splitlines()
        doc = json.loads(lines[3])
        doc[5] = [12345]
        lines[3] = json.dumps(doc)
        with open(runtime.journal.path, "w") as fh:
            fh.write("\n".join(lines) + "\n")

        recovered = TenantRuntime("t1", str(tmp_path), QuarantineLedger())
        with pytest.raises(ReplayDivergenceError):
            recovered.recover(state)


# -- live-server helpers ----------------------------------------------------

_READY = re.compile(r"serving on ([\d.]+):(\d+) http=[\d.]+:(\d+)")


def start_server(data_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        "src" + (os.pathsep + env["PYTHONPATH"]
                 if env.get("PYTHONPATH") else "")
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--data-dir", str(data_dir), "--deadline", "0.4", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    line = proc.stdout.readline()
    match = _READY.match(line)
    if not match:
        proc.kill()
        raise AssertionError(
            f"server failed to start: {line!r}\n{proc.stderr.read()}"
        )
    return proc, match.group(1), int(match.group(2)), int(match.group(3))


def stop_server(proc):
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - safety
            proc.kill()
            proc.wait()
    return proc.returncode


def assert_byte_identical(spec, elements, served):
    reference = batch_reference(spec, elements)
    served_events = [e for e in served if not isinstance(e, Punctuation)]
    served_puncts = [e.timestamp for e in served
                     if isinstance(e, Punctuation)]
    assert [repr(e) for e in served_events] == \
        [repr(e) for e in reference.events]
    assert served_puncts == reference.punctuations


class TestServeEndToEnd:
    def test_standing_query_over_tcp_matches_batch(self, tmp_path):
        proc, host, port, _ = start_server(tmp_path)
        try:
            spec = "window=10|sort|group-count"
            elements = make_stream()
            client = ServeClient(host, port, "tenant-a")
            client.subscribe("q1", spec)
            client.feed(elements)
            client.finish()
            served = client.await_complete("q1", deadline=30)
            assert_byte_identical(spec, elements, served)
            client.close()
        finally:
            assert stop_server(proc) == 0

    def test_snapshot_serve_section_shape(self, tmp_path):
        proc, host, port, _ = start_server(tmp_path)
        try:
            spec = "window=10|sort|count"
            client = ServeClient(host, port, "tenant-a")
            client.subscribe("q1", spec)
            client.feed(make_stream(n=30))
            client.finish()
            client.await_complete("q1", deadline=30)
            snap = client.snapshot()
            serve = snap["serve"]
            assert serve["draining"] is False
            tenant = serve["tenants"]["tenant-a"]
            assert tenant["queue_capacity"] == 256
            assert set(tenant["counters"]) == {
                "quarantined", "duplicates", "reconnects", "evictions",
                "shed", "scale_ups", "scale_downs",
            }
            query = tenant["queries"]["q1"]
            assert query["spec"] == spec
            assert query["completed"] is True
            assert set(query["lag"]) == {"mean", "p95", "max", "samples"}
            client.close()
        finally:
            assert stop_server(proc) == 0

    def test_http_ingest_snapshot_and_healthz(self, tmp_path):
        proc, host, port, http_port = start_server(tmp_path)
        try:
            spec = "window=5|sort|count"
            client = ServeClient(host, port, "web")
            client.subscribe("q1", spec)

            body = "\n".join(
                [json.dumps({"sync": i, "other": i + 1, "key": 0,
                             "payload": [i]}) for i in range(10)]
                + [json.dumps({"punct": 9})]
            )
            conn = http.client.HTTPConnection(host, http_port, timeout=10)
            conn.request("POST", "/ingest/web", body=body)
            reply = json.loads(conn.getresponse().read())
            assert reply["accepted"] == 11
            assert reply["journal"] == 11
            conn.close()

            conn = http.client.HTTPConnection(host, http_port, timeout=10)
            conn.request("GET", "/healthz")
            health = json.loads(conn.getresponse().read())
            assert health == {"ok": True, "draining": False}
            conn.close()

            conn = http.client.HTTPConnection(host, http_port, timeout=10)
            conn.request("GET", "/snapshot")
            snap = json.loads(conn.getresponse().read())
            assert snap["serve"]["tenants"]["web"]["journal"] == 11
            conn.close()

            # End the stream over HTTP too; the TCP subscriber must see
            # results byte-identical to the batch run of the same feed.
            conn = http.client.HTTPConnection(host, http_port, timeout=10)
            conn.request("POST", "/ingest/web",
                         body=json.dumps({"end": True}))
            assert json.loads(conn.getresponse().read())["journal"] == 12
            conn.close()

            served = client.await_complete("q1", deadline=30)
            elements = [Event(i, i + 1, 0, (i,)) for i in range(10)]
            elements.append(Punctuation(9))
            assert_byte_identical(spec, elements, served)
            client.close()
        finally:
            assert stop_server(proc) == 0

    def test_http_malformed_ndjson_is_quarantined(self, tmp_path):
        proc, host, port, http_port = start_server(tmp_path)
        try:
            conn = http.client.HTTPConnection(host, http_port, timeout=10)
            conn.request("POST", "/ingest/web", body="{not json at all")
            reply = json.loads(conn.getresponse().read())
            assert reply["counters"]["quarantined"] == 1
            conn.close()
        finally:
            assert stop_server(proc) == 0

    def test_quota_breach_sheds_and_counts(self, tmp_path):
        proc, host, port, _ = start_server(tmp_path, "--quota", "8")
        try:
            client = ServeClient(host, port, "greedy")
            client.subscribe("q1", "window=1000|sort|count")
            client.feed([Event(i, i + 1, 0, (i,)) for i in range(64)]
                        + [Punctuation(63)])
            client.finish()
            client.await_complete("q1", deadline=30)
            snap = client.snapshot()
            assert snap["serve"]["tenants"]["greedy"]["counters"]["shed"] > 0
            client.close()
        finally:
            assert stop_server(proc) == 0

    def test_sigterm_drains_and_restart_resumes(self, tmp_path):
        spec = "window=10|sort|group-count"
        elements = make_stream()
        proc, host, port, _ = start_server(tmp_path)
        client = ServeClient(host, port, "tenant-a")
        client.subscribe("q1", spec)
        client.feed(elements)
        client.send_until(len(elements) // 2)
        # Graceful stop mid-stream: drain must exit 0, not crash.
        assert stop_server(proc) == 0
        client._drop_connections()

        proc2, host, port, _ = start_server(tmp_path)
        try:
            client.host, client.port = host, port
            client.finish()
            served = client.await_complete("q1", deadline=30)
            assert_byte_identical(spec, elements, served)
            client.close()
        finally:
            assert stop_server(proc2) == 0


TENANTS = [
    ("alpha", "window=10|sort|group-count", 3),
    ("bravo", "window=10|sort|count", 4),
    ("charlie", "where=key<3|window=10|sort|group-sum=0", 5),
]

_CHAOS = (
    "net:p=0.2,mode=malform;net:p=0.15,mode=dup;net:p=0.1,mode=disconnect;"
    "net:p=0.06,mode=slowloris;net:p=0.15,mode=split"
)


def wait_for_evictions(snapshot_client, expected, deadline=20.0):
    """Poll until every tenant's eviction counter reaches ``expected``.

    Slowloris connections are evicted on the server's read deadline, a
    beat after the fault fires, so reconciliation has to wait for the
    counter to catch up.  Returns the last snapshot seen.
    """
    snap = None
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        snap = snapshot_client.snapshot()
        if all(
            snap["serve"]["tenants"].get(name, {"counters": {
                "evictions": 0}})["counters"]["evictions"] >= want
            for name, want in expected.items()
        ):
            break
        time.sleep(0.2)
    return snap


class TestChaosSoak:
    """Three tenants, hostile traffic, ``kill -9`` mid-stream."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_soak_survives_hostile_traffic_and_hard_kill(self, tmp_path,
                                                         seed):
        streams = {
            name: make_stream(n=60, punct_every=10, key_mod=mod)
            for name, _, mod in TENANTS
        }
        proc, host, port, _ = start_server(tmp_path)
        clients = {}
        try:
            for index, (name, spec, _) in enumerate(TENANTS):
                injector = FaultInjector(_CHAOS, seed=seed + index)
                client = ServeClient(host, port, name, injector=injector)
                client.subscribe(f"q-{name}", spec)
                client.feed(streams[name])
                clients[name] = client

            # Phase 1: half of every stream under fault injection.
            for name, _, _ in TENANTS:
                clients[name].send_until(len(streams[name]) // 2)

            # Let the server evict every phase-1 slowloris connection
            # before the kill — a stalled connection destroyed by
            # SIGKILL before its read deadline would never be counted.
            wait_for_evictions(clients["alpha"], {
                name: clients[name].injector.fired.get("net:slowloris", 0)
                for name, _, _ in TENANTS
            })

            # Hard kill, mid-stream, no warning.
            proc.kill()
            proc.wait()
            assert proc.returncode == -signal.SIGKILL

            # Phase 2: restart on the same data dir; clients resume.
            proc, host, port, _ = start_server(tmp_path)
            for name, spec, _ in TENANTS:
                client = clients[name]
                client.host, client.port = host, port
                client._drop_connections()
                client.finish()

            for name, spec, _ in TENANTS:
                served = clients[name].await_complete(f"q-{name}",
                                                      deadline=60)
                assert_byte_identical(spec, streams[name], served)

            # Reconciliation: snapshot counters must sum exactly to the
            # injected fault counts (slowloris evictions land on the
            # server's read deadline, so poll briefly).
            expected_evictions = {
                name: clients[name].injector.fired.get("net:slowloris", 0)
                for name, _, _ in TENANTS
            }
            snap = wait_for_evictions(clients["alpha"], expected_evictions)

            total_malformed = 0
            for name, _, _ in TENANTS:
                fired = clients[name].injector.fired
                counters = snap["serve"]["tenants"][name]["counters"]
                assert counters["quarantined"] == \
                    fired.get("net:malform", 0)
                assert counters["duplicates"] == fired.get("net:dup", 0)
                assert counters["evictions"] == expected_evictions[name]
                # disconnect + slowloris reconnects + 1 post-kill resume
                assert counters["reconnects"] == (
                    fired.get("net:disconnect", 0)
                    + expected_evictions[name] + 1
                )
                total_malformed += fired.get("net:malform", 0)

            # The shared quarantine ledger carries every tenant's
            # malformed frames across the restart.
            assert snap["serve"]["quarantine"]["by_reason"].get(
                "malformed", 0) == total_malformed
        finally:
            for client in clients.values():
                client.close()
            assert stop_server(proc) == 0
