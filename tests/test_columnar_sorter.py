"""Tests for the columnar Impatience sorter (repro.core.columnar)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columnar import ColumnarImpatienceSorter
from repro.core.errors import LateEventError, PunctuationOrderError
from repro.core.impatience import ImpatienceSorter
from repro.core.late import LatePolicy


class TestBasics:
    def test_paper_example(self):
        sorter = ColumnarImpatienceSorter()
        sorter.insert_batch([2, 6, 5, 1])
        assert sorter.on_punctuation(2).tolist() == [1, 2]
        sorter.insert_batch([4, 3, 7, 8])
        assert sorter.on_punctuation(4).tolist() == [3, 4]
        assert sorter.flush().tolist() == [5, 6, 7, 8]

    def test_empty_batch(self):
        sorter = ColumnarImpatienceSorter()
        assert sorter.insert_batch([]) == 0
        assert sorter.flush().tolist() == []

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            ColumnarImpatienceSorter().insert_batch([[1, 2]])

    def test_single_ascending_batch_is_one_run(self):
        sorter = ColumnarImpatienceSorter()
        sorter.insert_batch(np.arange(100))
        assert sorter.run_count == 1
        assert sorter.buffered == 100

    def test_descending_batch_one_run_per_element(self):
        sorter = ColumnarImpatienceSorter()
        sorter.insert_batch(np.arange(50, 0, -1))
        assert sorter.run_count == 50

    def test_run_cleanup_on_punctuation(self):
        sorter = ColumnarImpatienceSorter()
        sorter.insert_batch([2, 6, 5, 1])
        sorter.on_punctuation(2)
        assert sorter.run_count == 2  # Figure 4's healing behaviour

    def test_regressing_punctuation_raises(self):
        sorter = ColumnarImpatienceSorter()
        sorter.on_punctuation(10)
        with pytest.raises(PunctuationOrderError):
            sorter.on_punctuation(9)


class TestLateHandling:
    def test_drop(self):
        sorter = ColumnarImpatienceSorter()
        sorter.insert_batch([10])
        sorter.on_punctuation(5)
        assert sorter.insert_batch([3, 4, 7]) == 1
        assert sorter.late.dropped == 2
        assert sorter.flush().tolist() == [7, 10]

    def test_adjust(self):
        sorter = ColumnarImpatienceSorter(late_policy=LatePolicy.ADJUST)
        sorter.insert_batch([10])
        sorter.on_punctuation(5)
        sorter.insert_batch([3, 7])
        assert sorter.late.adjusted == 1
        assert sorter.flush().tolist() == [5, 7, 10]

    def test_raise(self):
        sorter = ColumnarImpatienceSorter(late_policy=LatePolicy.RAISE)
        sorter.on_punctuation(5)
        with pytest.raises(LateEventError):
            sorter.insert_batch([3])


class TestEquivalence:
    @given(
        st.lists(
            st.lists(st.integers(0, 1000), max_size=60),
            max_size=8,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar_impatience(self, batches):
        """Identical emissions, drop counts, and run counts versus the
        scalar sorter, batch for batch, punctuation for punctuation."""
        columnar = ColumnarImpatienceSorter()
        scalar = ImpatienceSorter()
        watermark = None
        for batch in batches:
            columnar.insert_batch(batch)
            for value in batch:
                scalar.insert(value)
            high = max(
                (v for v in batch),
                default=watermark if watermark is not None else 0,
            )
            watermark = high if watermark is None else max(watermark, high)
            ts = watermark - 50
            if scalar.watermark == float("-inf") or ts > scalar.watermark:
                assert columnar.on_punctuation(ts).tolist() == \
                    scalar.on_punctuation(ts)
                assert columnar.run_count == scalar.run_count
        assert columnar.flush().tolist() == scalar.flush()
        assert columnar.late.dropped == scalar.late.dropped

    @given(st.lists(st.integers(-1000, 1000), max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_flush_is_sorted_input(self, values):
        sorter = ColumnarImpatienceSorter()
        sorter.insert_batch(values)
        assert sorter.flush().tolist() == sorted(values)

    def test_run_count_equals_interleaved_measure(self, cloudlog_small):
        from repro.metrics import count_interleaved_runs

        sorter = ColumnarImpatienceSorter()
        sorter.insert_batch(cloudlog_small.timestamps)
        assert sorter.run_count == count_interleaved_runs(
            cloudlog_small.timestamps
        )


class TestThroughputPath:
    def test_large_stream_smoke(self, cloudlog_small):
        sorter = ColumnarImpatienceSorter()
        times = np.asarray(cloudlog_small.timestamps)
        out = []
        for i in range(0, len(times), 512):
            chunk = times[i:i + 512]
            sorter.insert_batch(chunk)
            ts = int(chunk.max()) - 1500
            if sorter.watermark == float("-inf") or ts > sorter.watermark:
                out.append(sorter.on_punctuation(ts))
        out.append(sorter.flush())
        merged = np.concatenate(out)
        assert (np.diff(merged) >= 0).all()
        assert merged.size + sorter.late.dropped == len(times)


class TestPayloadColumns:
    """columns=k carries parallel payload columns through the sorter."""

    @staticmethod
    def _reference(rows):
        # Stable sort by timestamp: numpy argsort(kind="stable") on the
        # arrival order, i.e. Python's sorted() keyed on ts alone.
        return sorted(rows, key=lambda row: row[0])

    def test_columns_follow_timestamps(self):
        sorter = ColumnarImpatienceSorter(columns=2)
        sorter.insert_batch([2, 6, 5, 1], ([20, 60, 50, 10], [0, 1, 2, 3]))
        ts, (a, b) = sorter.on_punctuation(2)
        assert ts.tolist() == [1, 2]
        assert a.tolist() == [10, 20]
        assert b.tolist() == [3, 0]
        sorter.insert_batch([4, 3], ([40, 30], [4, 5]))
        ts, (a, b) = sorter.flush()
        assert ts.tolist() == [3, 4, 5, 6]
        assert a.tolist() == [30, 40, 50, 60]
        assert b.tolist() == [5, 4, 2, 1]

    def test_column_arity_enforced(self):
        sorter = ColumnarImpatienceSorter(columns=1)
        with pytest.raises(ValueError, match="payload columns"):
            sorter.insert_batch([1, 2])
        with pytest.raises(ValueError, match="parallel"):
            sorter.insert_batch([1, 2], ([1],))
        with pytest.raises(ValueError, match=">= 0"):
            ColumnarImpatienceSorter(columns=-1)

    def test_empty_outputs_keep_tuple_shape(self):
        sorter = ColumnarImpatienceSorter(columns=1)
        ts, cols = sorter.flush()
        assert ts.size == 0
        assert len(cols) == 1 and cols[0].size == 0

    def test_drop_policy_filters_columns(self):
        sorter = ColumnarImpatienceSorter(columns=1)
        sorter.insert_batch([5], ([50],))
        sorter.on_punctuation(5)
        sorter.insert_batch([3, 7, 4], ([30, 70, 40],))
        ts, (col,) = sorter.flush()
        assert ts.tolist() == [7]
        assert col.tolist() == [70]
        assert sorter.late.dropped == 2

    def test_adjust_policy_keeps_columns(self):
        sorter = ColumnarImpatienceSorter(
            late_policy=LatePolicy.ADJUST, columns=1
        )
        sorter.insert_batch([5], ([50],))
        sorter.on_punctuation(5)
        sorter.insert_batch([3, 7], ([30, 70],))
        ts, (col,) = sorter.flush()
        assert ts.tolist() == [5, 7]
        assert col.tolist() == [30, 70]
        assert sorter.late.adjusted == 1

    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=300), max_size=40),
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_stable_row_equivalence(self, batches):
        """(ts, col) output rows == stable sort of arrival rows by ts."""
        sorter = ColumnarImpatienceSorter(columns=1)
        arrival = []
        out_rows = []
        serial = 0
        watermark = None
        for batch in batches:
            ident = list(range(serial, serial + len(batch)))
            serial += len(batch)
            admitted = [
                (t, i)
                for t, i in zip(batch, ident)
                if watermark is None or t > watermark
            ]
            arrival.extend(admitted)
            sorter.insert_batch(batch, (ident,))
            if batch:
                cut = max(batch) // 2
                if watermark is None or cut > watermark:
                    ts, (col,) = sorter.on_punctuation(cut)
                    out_rows.extend(zip(ts.tolist(), col.tolist()))
                    watermark = cut
        ts, (col,) = sorter.flush()
        out_rows.extend(zip(ts.tolist(), col.tolist()))
        assert out_rows == self._reference(arrival)

    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=300), max_size=40),
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_bare_path_unchanged_by_columns(self, batches):
        """columns=0 timestamps match a columns=1 sorter's timestamps."""
        bare = ColumnarImpatienceSorter()
        wide = ColumnarImpatienceSorter(columns=1)
        for batch in batches:
            bare.insert_batch(batch)
            wide.insert_batch(batch, (list(range(len(batch))),))
            if batch:
                cut = max(batch) // 2
                if bare.watermark == float("-inf") or cut > bare.watermark:
                    lhs = bare.on_punctuation(cut)
                    rhs, _ = wide.on_punctuation(cut)
                    assert lhs.tolist() == rhs.tolist()
        lhs = bare.flush()
        rhs, _ = wide.flush()
        assert lhs.tolist() == rhs.tolist()
