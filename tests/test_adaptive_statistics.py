"""Tests for the extra disorder measures and statistical aggregates."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Streamable
from repro.engine.event import Event
from repro.engine.operators import Median, Quantile, StdDev, Variance
from repro.metrics import (
    exc,
    ham,
    longest_nondecreasing_subsequence,
    rem,
)

int_lists = st.lists(st.integers(-200, 200), max_size=150)


class TestLis:
    def test_known(self):
        assert longest_nondecreasing_subsequence([2, 6, 5, 1, 4, 3, 7, 8]) == 4

    def test_sorted(self):
        assert longest_nondecreasing_subsequence([1, 2, 2, 3]) == 4

    def test_reverse(self):
        assert longest_nondecreasing_subsequence([3, 2, 1]) == 1

    def test_empty(self):
        assert longest_nondecreasing_subsequence([]) == 0

    @given(int_lists)
    @settings(max_examples=80, deadline=None)
    def test_matches_quadratic_dp(self, data):
        data = data[:60]
        n = len(data)
        best = 0
        lengths = [1] * n
        for j in range(n):
            for i in range(j):
                if data[i] <= data[j]:
                    lengths[j] = max(lengths[j], lengths[i] + 1)
            best = max(best, lengths[j]) if n else 0
        assert longest_nondecreasing_subsequence(data) == best


class TestRemExcHam:
    def test_sorted_stream_all_zero(self):
        data = list(range(20))
        assert rem(data) == 0
        assert exc(data) == 0
        assert ham(data) == 0

    def test_single_swap(self):
        data = [0, 2, 1, 3]
        assert exc(data) == 1
        assert ham(data) == 2
        assert rem(data) == 1

    def test_reverse(self):
        data = list(range(10, 0, -1))
        assert rem(data) == 9
        assert exc(data) == 5  # swap pairs from both ends
        assert ham(data) == 10

    @given(int_lists)
    @settings(max_examples=60, deadline=None)
    def test_bounds_and_relations(self, data):
        n = len(data)
        assert 0 <= rem(data) <= max(n - 1, 0)
        assert 0 <= exc(data) <= max(n - 1, 0)
        assert 0 <= ham(data) <= n
        # One exchange fixes at most two misplaced elements.
        assert ham(data) <= 2 * exc(data)
        # Removing Rem elements leaves a sorted LIS.
        assert rem(data) == n - longest_nondecreasing_subsequence(data)

    @given(int_lists)
    @settings(max_examples=40, deadline=None)
    def test_duplicates_handled_stably(self, data):
        data = [d % 5 for d in data]  # heavy ties
        assert rem(data) >= 0
        assert exc(data) >= 0


class TestStatisticalAggregates:
    def _run(self, aggregate, values):
        state = aggregate.initial()
        for v in values:
            state = aggregate.accumulate(state, Event(0, payload=v))
        return aggregate.result(state)

    def test_variance_known(self):
        assert self._run(Variance(), [2, 4, 4, 4, 5, 5, 7, 9]) == \
            pytest.approx(4.0)

    def test_variance_empty(self):
        assert self._run(Variance(), []) is None

    def test_stddev(self):
        assert self._run(StdDev(), [2, 4, 4, 4, 5, 5, 7, 9]) == \
            pytest.approx(2.0)

    def test_median_odd_even(self):
        assert self._run(Median(), [3, 1, 2]) == 2
        assert self._run(Median(), [4, 1, 2, 3]) == 2  # nearest-rank lower

    def test_quantile_p99(self):
        values = list(range(1, 101))
        assert self._run(Quantile(0.99), values) == 99
        assert self._run(Quantile(1.0), values) == 100
        assert self._run(Quantile(0.0), values) == 1

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            Quantile(1.5)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_welford_matches_two_pass(self, values):
        mean = sum(values) / len(values)
        expected = sum((v - mean) ** 2 for v in values) / len(values)
        got = self._run(Variance(), values)
        assert math.isclose(got, expected, rel_tol=1e-6, abs_tol=1e-6)

    def test_windowed_p95_query(self):
        events = [Event(t, payload=t % 100) for t in range(300)]
        out = (
            Streamable.from_elements(events)
            .tumbling_window(100)
            .aggregate(Quantile(0.95))
            .collect()
        )
        assert out.payloads == [94, 94, 94]

    def test_selector(self):
        agg = Variance(selector=lambda p: p[1])
        state = agg.initial()
        for v in (1.0, 3.0):
            state = agg.accumulate(state, Event(0, payload=(0, v)))
        assert agg.result(state) == pytest.approx(1.0)
