"""Tests for SessionWindow, DistinctWindow and CountDistinct."""

from __future__ import annotations

import pytest

from repro.engine import Streamable
from repro.engine.event import Event, Punctuation
from repro.engine.operators import (
    Collector,
    CountDistinct,
    DistinctWindow,
    SessionWindow,
    Sum,
)


def wire(op):
    sink = Collector()
    op.add_downstream(sink)
    return sink


class TestSessionWindow:
    def test_gap_splits_sessions(self):
        op = SessionWindow(timeout=10)
        sink = wire(op)
        for t in (0, 5, 9, 30, 35):
            op.on_event(Event(t, key=1))
        op.on_flush()
        assert [(e.sync_time, e.other_time, e.payload) for e in sink.events] \
            == [(0, 19, 3), (30, 45, 2)]
        assert op.sessions == 2

    def test_exact_timeout_gap_splits(self):
        op = SessionWindow(timeout=10)
        sink = wire(op)
        op.on_event(Event(0, key=1))
        op.on_event(Event(10, key=1))  # gap == timeout: new session
        op.on_flush()
        assert len(sink.events) == 2

    def test_keys_independent(self):
        op = SessionWindow(timeout=10)
        sink = wire(op)
        op.on_event(Event(0, key=1))
        op.on_event(Event(5, key=2))
        op.on_flush()
        assert sorted(e.key for e in sink.events) == [1, 2]

    def test_custom_aggregate(self):
        op = SessionWindow(timeout=10, aggregate=Sum())
        sink = wire(op)
        op.on_event(Event(0, key=1, payload=3))
        op.on_event(Event(1, key=1, payload=4))
        op.on_flush()
        assert sink.events[0].payload == 7

    def test_punctuation_closes_expired_sessions(self):
        op = SessionWindow(timeout=10)
        sink = wire(op)
        op.on_event(Event(0, key=1))
        op.on_punctuation(Punctuation(5))
        assert sink.events == []  # still within timeout of last event
        op.on_punctuation(Punctuation(9))
        assert len(sink.events) == 1  # 0 + 10 - 1 <= 9: closed

    def test_open_session_clamps_punctuation(self):
        op = SessionWindow(timeout=100)
        sink = wire(op)
        op.on_event(Event(50, key=1))
        op.on_punctuation(Punctuation(60))
        assert sink.punctuations == [49]

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            SessionWindow(0)

    def test_stream_api_and_order(self, rng):
        events = []
        t = 0
        for _ in range(300):
            t += rng.randrange(1, 6)
            events.append(Event(t, key=rng.randrange(3)))
        out = Streamable.from_elements(events).session_window(8).collect()
        assert out.sync_times == sorted(out.sync_times)
        assert sum(e.payload for e in out.events) == len(events)


class TestDistinctWindow:
    def test_first_per_value_survives(self):
        op = DistinctWindow(selector=lambda p: p[0])
        sink = wire(op)
        for payload in [(1, "a"), (2, "b"), (1, "c")]:
            op.on_event(Event(0, 10, payload=payload))
        assert [e.payload for e in sink.events] == [(1, "a"), (2, "b")]

    def test_windows_independent(self):
        op = DistinctWindow()
        sink = wire(op)
        op.on_event(Event(0, 10, payload=7))
        op.on_event(Event(10, 20, payload=7))
        assert len(sink.events) == 2

    def test_punctuation_evicts_closed_window_state(self):
        op = DistinctWindow()
        wire(op)
        op.on_event(Event(0, 10, payload=1))
        assert op.buffered_count() == 1
        op.on_punctuation(Punctuation(9))
        assert op.buffered_count() == 0

    def test_stream_api(self):
        events = [Event(0, 10, payload=v) for v in (1, 1, 2, 3, 2)]
        out = Streamable.from_elements(events).distinct().collect()
        assert [e.payload for e in out.events] == [1, 2, 3]


class TestCountDistinct:
    def test_aggregate(self):
        agg = CountDistinct()
        state = agg.initial()
        for v in (1, 2, 2, 3, 1):
            state = agg.accumulate(state, Event(0, payload=v))
        assert agg.result(state) == 3

    def test_in_windowed_query(self):
        events = [
            Event(t, payload=t % 3) for t in range(30)
        ]
        out = (
            Streamable.from_elements(events)
            .tumbling_window(10)
            .aggregate(CountDistinct())
            .collect()
        )
        assert out.payloads == [3, 3, 3]

    def test_selector(self):
        agg = CountDistinct(selector=lambda p: p % 2)
        state = agg.initial()
        for v in range(10):
            state = agg.accumulate(state, Event(0, payload=v))
        assert agg.result(state) == 2
