"""Tests for the stream-contract monitor, and contract fuzzing with it."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import DisorderedStreamable, Streamable
from repro.engine.event import Event, Punctuation
from repro.engine.operators import Collector
from repro.engine.operators.monitor import ContractViolation, OrderingMonitor


def wire(op):
    sink = Collector()
    op.add_downstream(sink)
    return sink


class TestOrderingMonitor:
    def test_passes_well_formed_stream(self):
        monitor = OrderingMonitor()
        sink = wire(monitor)
        monitor.on_event(Event(1))
        monitor.on_event(Event(2))
        monitor.on_punctuation(Punctuation(2))
        monitor.on_event(Event(3))
        monitor.on_flush()
        assert sink.sync_times == [1, 2, 3]
        assert monitor.events_seen == 3
        assert monitor.punctuations_seen == 1

    def test_detects_sync_regression(self):
        monitor = OrderingMonitor(label="L")
        wire(monitor)
        monitor.on_event(Event(5))
        with pytest.raises(ContractViolation, match="L: sync regressed"):
            monitor.on_event(Event(4))

    def test_scan_order_false_allows_intra_punctuation_regression(self):
        monitor = OrderingMonitor(scan_order=False)
        wire(monitor)
        monitor.on_event(Event(5))
        monitor.on_event(Event(4))  # allowed
        monitor.on_punctuation(Punctuation(5))
        with pytest.raises(ContractViolation, match="at/below punctuation"):
            monitor.on_event(Event(5))

    def test_detects_event_below_punctuation(self):
        monitor = OrderingMonitor()
        wire(monitor)
        monitor.on_punctuation(Punctuation(10))
        with pytest.raises(ContractViolation, match="at/below"):
            monitor.on_event(Event(10))

    def test_detects_punctuation_regression(self):
        monitor = OrderingMonitor()
        wire(monitor)
        monitor.on_punctuation(Punctuation(10))
        with pytest.raises(ContractViolation, match="punctuation regressed"):
            monitor.on_punctuation(Punctuation(9))

    def test_detects_empty_interval(self):
        monitor = OrderingMonitor()
        wire(monitor)
        with pytest.raises(ContractViolation, match="interval"):
            monitor.on_event(Event(5, 5))

    def test_flush_resets_watermark_for_replayed_streams(self):
        # Regression: a monitor used across replayed streams must not
        # treat the second pass's events as late against the first
        # pass's final punctuation (on_flush used to keep the watermark
        # and forbid further events entirely).
        monitor = OrderingMonitor()
        sink = wire(monitor)
        for _ in range(2):
            monitor.on_event(Event(1))
            monitor.on_punctuation(Punctuation(5))
            monitor.on_event(Event(6))
            monitor.on_flush()
        assert sink.sync_times == [1, 6, 1, 6]
        assert monitor.flushes == 2
        assert monitor.events_seen == 4

    def test_replayed_stream_reuses_monitor(self):
        from repro.engine.replay import constant_rate, replay

        monitor = OrderingMonitor(label="replayed")
        sink = wire(monitor)
        events = [Event(t) for t in range(20)]
        for _ in range(2):  # same stream replayed twice, one monitor
            for element in replay(events, constant_rate(4),
                                  punctuation_period=2):
                if isinstance(element, Punctuation):
                    monitor.on_punctuation(element)
                else:
                    monitor.on_event(element)
            monitor.on_flush()
        assert sink.sync_times == list(range(20)) * 2
        assert monitor.flushes == 2


class TestContractFuzzing:
    """Every order-sensitive operator, sandwiched between monitors."""

    STAGES = {
        "count": lambda s: s.tumbling_window(16).count(),
        "grouped": lambda s: s.tumbling_window(16).group_aggregate(
            __import__(
                "repro.engine.operators.aggregates", fromlist=["Count"]
            ).Count()
        ),
        "coalesce": lambda s: s.alter_duration(8).coalesce(),
        "session": lambda s: s.session_window(8),
        "snapshot": lambda s: s.alter_duration(8).snapshot_aggregate(),
        "distinct": lambda s: s.tumbling_window(16).distinct(
            selector=lambda p: p[0] % 3
        ),
    }

    @pytest.mark.parametrize("stage", sorted(STAGES))
    @given(
        times=st.lists(st.integers(0, 300), min_size=1, max_size=150),
        frequency=st.integers(3, 40),
        latency=st.integers(0, 60),
    )
    @settings(max_examples=40, deadline=None)
    def test_stage_preserves_contract(self, stage, times, frequency,
                                      latency):
        stream = (
            DisorderedStreamable.from_events(
                [Event(t, t + 1, key=t % 5, payload=(t,)) for t in times],
                punctuation_frequency=frequency,
                reorder_latency=latency,
            )
            .to_streamable()
            .monitor("pre", scan_order=True)
        )
        out = self.STAGES[stage](stream).monitor(f"post-{stage}")
        result = out.collect()
        assert result.completed

    def test_monitor_via_stream_api(self):
        events = [Event(t) for t in (1, 2, 3)]
        result = Streamable.from_elements(events).monitor().collect()
        assert result.sync_times == [1, 2, 3]
