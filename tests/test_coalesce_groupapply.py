"""Tests for Coalesce and GroupApply (the §V-C machinery)."""

from __future__ import annotations

from repro.engine import Streamable
from repro.engine.event import Event, Punctuation
from repro.engine.operators import Collector
from repro.engine.operators.aggregates import Count
from repro.engine.operators.coalesce import Coalesce
from repro.engine.operators.groupapply import GroupApply


def wire(op):
    sink = Collector()
    op.add_downstream(sink)
    return sink


class TestCoalesce:
    def test_overlapping_events_fuse(self):
        op = Coalesce()
        sink = wire(op)
        op.on_event(Event(0, 10, key=1))
        op.on_event(Event(5, 15, key=1))
        op.on_event(Event(14, 20, key=1))
        op.on_flush()
        assert len(sink.events) == 1
        fused = sink.events[0]
        assert (fused.sync_time, fused.other_time) == (0, 20)
        assert fused.payload == 3
        assert op.fused == 2

    def test_gap_starts_new_group(self):
        op = Coalesce()
        sink = wire(op)
        op.on_event(Event(0, 5, key=1))
        op.on_event(Event(10, 15, key=1))
        op.on_flush()
        assert [(e.sync_time, e.other_time) for e in sink.events] == [
            (0, 5), (10, 15),
        ]

    def test_touching_interval_fuses(self):
        """sync == current end: the paper's 'overlapped validity' includes
        abutting intervals for run-length semantics."""
        op = Coalesce()
        sink = wire(op)
        op.on_event(Event(0, 5, key=1))
        op.on_event(Event(5, 9, key=1))
        op.on_flush()
        assert len(sink.events) == 1

    def test_keys_kept_separate(self):
        op = Coalesce()
        sink = wire(op)
        op.on_event(Event(0, 10, key=1))
        op.on_event(Event(2, 12, key=2))
        op.on_flush()
        assert sorted(e.key for e in sink.events) == [1, 2]

    def test_custom_combine(self):
        op = Coalesce(
            combine=lambda acc, e: e.payload if acc is None else acc + e.payload
        )
        sink = wire(op)
        op.on_event(Event(0, 10, key=1, payload=3))
        op.on_event(Event(1, 11, key=1, payload=4))
        op.on_flush()
        assert sink.events[0].payload == 7

    def test_punctuation_finalizes_closed_groups_in_order(self):
        op = Coalesce()
        sink = wire(op)
        op.on_event(Event(0, 4, key=2))
        op.on_event(Event(1, 3, key=3))
        op.on_punctuation(Punctuation(10))
        assert sink.sync_times == [0, 1]
        assert sink.punctuations == [10]

    def test_open_group_clamps_punctuation(self):
        """An open group's start bounds the forwarded punctuation so the
        output stream can never regress."""
        op = Coalesce()
        sink = wire(op)
        op.on_event(Event(5, 100, key=1))   # stays open at punct 10
        op.on_event(Event(7, 9, key=2))     # closes at punct 10
        op.on_punctuation(Punctuation(10))
        assert sink.events == []            # 7 > 5-1: must wait
        assert sink.punctuations == [4]     # clamped below open start
        op.on_flush()
        assert sink.sync_times == [5, 7]

    def test_output_is_sorted_under_interleaving(self, rng):
        op = Coalesce()
        sink = wire(op)
        t = 0
        for _ in range(500):
            t += rng.randrange(3)
            op.on_event(Event(t, t + rng.randrange(1, 20), key=rng.randrange(5)))
            if rng.random() < 0.05:
                op.on_punctuation(Punctuation(t))
        op.on_flush()
        assert sink.sync_times == sorted(sink.sync_times)

    def test_stream_api(self):
        events = [Event(t, t + 5, key=0) for t in (0, 2, 4, 20)]
        out = Streamable.from_elements(events).coalesce().collect()
        assert [(e.sync_time, e.other_time, e.payload) for e in out.events] \
            == [(0, 9, 3), (20, 25, 1)]


class TestGroupApply:
    def test_per_key_windowed_count(self):
        op = GroupApply(lambda s: s.count())
        sink = wire(op)
        for key in (1, 2, 1):
            op.on_event(Event(0, 10, key=key))
        op.on_flush()
        assert sorted((e.key, e.payload) for e in sink.events) == [
            (1, 2), (2, 1),
        ]
        assert op.group_count == 2

    def test_matches_grouped_window_aggregate(self, rng):
        """GroupApply(count) must agree with the fused grouped aggregate."""
        events = [
            Event(t - t % 10, (t - t % 10) + 10, key=rng.randrange(4))
            for t in sorted(rng.randrange(200) for _ in range(300))
        ]
        via_apply = (
            Streamable.from_elements(list(events))
            .group_apply(lambda s: s.count())
            .collect()
        )
        via_fused = (
            Streamable.from_elements(list(events))
            .group_aggregate(Count())
            .collect()
        )
        assert (
            sorted((e.sync_time, e.key, e.payload) for e in via_apply.events)
            == sorted((e.sync_time, e.key, e.payload) for e in via_fused.events)
        )

    def test_custom_key_fn(self):
        op = GroupApply(lambda s: s.count(), key_fn=lambda e: e.payload % 2)
        sink = wire(op)
        for v in range(6):
            op.on_event(Event(0, 10, key=9, payload=v))
        op.on_flush()
        assert sorted((e.key, e.payload) for e in sink.events) == [
            (0, 3), (1, 3),
        ]

    def test_punctuations_broadcast(self):
        op = GroupApply(lambda s: s.count())
        sink = wire(op)
        op.on_event(Event(0, 10, key=1))
        op.on_event(Event(0, 10, key=2))
        op.on_punctuation(Punctuation(50))
        assert len(sink.events) == 2
        assert sink.punctuations == [50]

    def test_stateless_subquery_immediate(self):
        op = GroupApply(lambda s: s.where(lambda e: e.payload > 0))
        sink = wire(op)
        op.on_event(Event(1, key=1, payload=5))
        op.on_event(Event(2, key=1, payload=0))
        assert [e.payload for e in sink.events] == [5]

    def test_outputs_sorted_within_punctuation_batch(self):
        op = GroupApply(lambda s: s.count())
        sink = wire(op)
        # Group 2 touches a later window first; outputs must still be
        # sync-sorted after the drain.
        op.on_event(Event(10, 20, key=2))
        op.on_event(Event(0, 10, key=1))
        op.on_flush()
        assert sink.sync_times == [0, 10]

    def test_buffered_counts_subpipeline_state(self):
        op = GroupApply(lambda s: s.count())
        wire(op)
        op.on_event(Event(0, 10, key=1))
        op.on_event(Event(10, 20, key=2))
        assert op.buffered_count() == 2
