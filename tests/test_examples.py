"""Smoke tests: every example script must run and produce sane output.

Examples import heavy datasets, so each main() is patched down to a small
stream via its module-level knobs where available, or simply executed at
its default (small) scale.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart(capsys):
    module = _load("quickstart")
    result = module.main()
    assert result.completed
    assert "windowed counts" in capsys.readouterr().out


def test_dashboard(capsys):
    module = _load("dashboard")
    result = module.main()
    out = capsys.readouterr().out
    assert "dashboard refinement" in out
    # Later outputs are at least as complete as earlier ones.
    completeness = [
        result.completeness(i) for i in range(len(result.collectors))
    ]
    assert completeness == sorted(completeness)


def test_ad_click_patterns(capsys):
    module = _load("ad_click_patterns")
    result = module.main()
    out = capsys.readouterr().out
    assert "matches" in out
    assert len(result.output_events(1)) >= len(result.output_events(0))


def test_ad_click_patterns_optimized(capsys):
    module = _load("ad_click_patterns_optimized")
    result = module.main()
    assert "coalesced" in capsys.readouterr().out
    assert len(result.output_events(1)) >= len(result.output_events(0))


def test_disorder_analysis(tmp_path, capsys):
    module = _load("disorder_analysis")
    rows = module.main(["--n", "5000", "--csv", str(tmp_path)])
    assert len(rows) == 3
    assert (tmp_path / "figure2_cloudlog.csv").exists()
    header = (tmp_path / "figure2_cloudlog.csv").read_text().splitlines()[0]
    assert header == "arrival_position,event_time"


def test_sorter_shootout(capsys):
    module = _load("sorter_shootout")
    module.main(["--dataset", "synthetic", "--n", "5000"])
    out = capsys.readouterr().out
    assert "Offline sorting" in out
    assert "Online sorting" in out


@pytest.mark.parametrize(
    "name",
    [p.stem for p in sorted(EXAMPLES_DIR.glob("*.py"))],
)
def test_every_example_has_main_and_docstring(name):
    module = _load(name)
    assert callable(getattr(module, "main", None)), name
    assert module.__doc__ and len(module.__doc__) > 40, name
