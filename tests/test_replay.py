"""Tests for the processing-time replay ingress (repro.engine.replay)."""

from __future__ import annotations

import pytest

from repro.engine import DisorderedStreamable, Event
from repro.engine.event import is_punctuation
from repro.engine.replay import bursty_rate, constant_rate, replay


def events(times):
    return [Event(t) for t in times]


class TestRateFunctions:
    def test_constant(self):
        rate = constant_rate(5)
        assert [rate(t) for t in range(3)] == [5, 5, 5]

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            constant_rate(-1)

    def test_bursty(self):
        rate = bursty_rate(base=2, burst_every=3, burst_size=10)
        assert [rate(t) for t in range(6)] == [2, 2, 10, 2, 2, 10]

    def test_bursty_with_quiet_gap(self):
        rate = bursty_rate(base=2, burst_every=0, burst_size=0,
                           quiet_after=2, quiet_ticks=3)
        assert [rate(t) for t in range(7)] == [2, 2, 0, 0, 0, 2, 2]


class TestReplay:
    def test_punctuation_every_period(self):
        elements = list(replay(
            events(range(10)), constant_rate(2), punctuation_period=2
        ))
        puncts = [e.timestamp for e in elements if is_punctuation(e)]
        # Punctuation after ticks 2 and 4 (4 and 8 events) + final.
        assert puncts == [3, 7, 9]

    def test_all_events_delivered_in_order(self):
        elements = list(replay(
            events([5, 2, 9, 1]), constant_rate(3), punctuation_period=5
        ))
        seen = [e.sync_time for e in elements if not is_punctuation(e)]
        assert seen == [5, 2, 9, 1]

    def test_quiet_stream_stalls_without_idle_advance(self):
        rate = bursty_rate(base=1, burst_every=0, burst_size=0,
                           quiet_after=3, quiet_ticks=10)
        elements = list(replay(
            events(range(20)), rate, punctuation_period=1,
            final_punctuation=False,
        ))
        puncts = [e.timestamp for e in elements if is_punctuation(e)]
        # During the quiet gap the watermark cannot move: no duplicates.
        assert puncts == sorted(set(puncts))

    def test_idle_advance_keeps_clock_moving(self):
        rate = bursty_rate(base=1, burst_every=0, burst_size=0,
                           quiet_after=3, quiet_ticks=5)
        elements = list(replay(
            events(range(30)), rate, punctuation_period=1, idle_advance=7,
            final_punctuation=False,
        ))
        puncts = [e.timestamp for e in elements if is_punctuation(e)]
        # Strictly increasing even across the quiet gap.
        assert all(b > a for a, b in zip(puncts, puncts[1:]))
        assert len(puncts) >= 8  # quiet ticks still punctuate

    def test_idle_advance_closes_windows_on_quiet_stream(self):
        """The end-to-end payoff: with idle advance a dashboard's window
        closes *during* the quiet gap; without it, only the end-of-stream
        flush delivers the result."""
        def run_with_trace(idle_advance):
            # Events 0,1,2 arrive on tick 0; the source goes quiet for 50
            # ticks with events 4,5 still pending; window [0,4) cannot
            # close off the stalled watermark (hw = 2) alone.
            rate = bursty_rate(base=3, burst_every=0, burst_size=0,
                               quiet_after=1, quiet_ticks=50)
            elements = list(replay(
                events([0, 1, 2, 4, 5]), rate, punctuation_period=1,
                idle_advance=idle_advance, final_punctuation=False,
            ))
            first_post_gap = next(
                i for i, el in enumerate(elements)
                if not is_punctuation(el) and el.sync_time == 4
            )
            consumed = {"count": 0}

            def feed():
                for element in elements:
                    consumed["count"] += 1
                    yield element

            emitted = []
            query = (
                DisorderedStreamable.from_elements(feed())
                .tumbling_window(4)
                .to_streamable()
                .count()
            )
            pipeline = query.subscribe(
                lambda e: emitted.append((consumed["count"], e.sync_time,
                                          e.payload))
            )
            pipeline.run(query.source.elements())
            return emitted, first_post_gap

        live, live_gap_end = run_with_trace(idle_advance=3)
        stalled, stalled_gap_end = run_with_trace(idle_advance=0)
        # Both ultimately deliver the [0,4) count of 3.
        assert (0, 3) in {(sync, n) for _, sync, n in live}
        assert (0, 3) in {(sync, n) for _, sync, n in stalled}
        live_emit = next(c for c, sync, _ in live if sync == 0)
        stalled_emit = next(c for c, sync, _ in stalled if sync == 0)
        # Live: the window closes mid-gap, before post-gap data arrives.
        assert live_emit <= live_gap_end
        # Stalled: the result waits for the watermark to move again.
        assert stalled_emit > stalled_gap_end

    def test_validation(self):
        with pytest.raises(ValueError):
            list(replay([], constant_rate(1), punctuation_period=0))
        with pytest.raises(ValueError):
            list(replay([], constant_rate(1), 1, reorder_latency=-1))

    def test_empty_stream(self):
        assert list(replay([], constant_rate(1), 1)) == []

    def test_framework_over_replay(self):
        """Replay composes with the full framework unchanged."""
        elements = list(replay(
            events(range(500)), bursty_rate(3, 10, 40), punctuation_period=2
        ))
        result = (
            DisorderedStreamable.from_elements(elements)
            .to_streamables([5, 50])
            .run()
        )
        assert result.completeness(1) == 1.0
