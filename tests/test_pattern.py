"""Tests for the pattern-matching operator (repro.engine.operators.pattern)."""

from __future__ import annotations

import pytest

from repro.engine.event import Event, Punctuation
from repro.engine.operators import Collector, PatternMatch


def make(first_ad=1, second_ad=2, within=60):
    op = PatternMatch(
        first=lambda e: e.payload == first_ad,
        second=lambda e: e.payload == second_ad,
        within=within,
    )
    sink = Collector()
    op.add_downstream(sink)
    return op, sink


class TestPatternMatch:
    def test_basic_sequence_detected(self):
        op, sink = make()
        op.on_event(Event(10, key=7, payload=1))  # X
        op.on_event(Event(30, key=7, payload=2))  # Y, 20 apart
        assert [(e.key, e.payload) for e in sink.events] == [(7, (10, 30))]
        assert op.matches == 1

    def test_outside_window_not_matched(self):
        op, sink = make(within=10)
        op.on_event(Event(10, key=7, payload=1))
        op.on_event(Event(30, key=7, payload=2))
        assert sink.events == []

    def test_window_boundary_exclusive(self):
        op, sink = make(within=20)
        op.on_event(Event(10, key=7, payload=1))
        op.on_event(Event(30, key=7, payload=2))  # gap exactly 20: expired
        assert sink.events == []

    def test_keys_do_not_cross_match(self):
        op, sink = make()
        op.on_event(Event(10, key=1, payload=1))
        op.on_event(Event(20, key=2, payload=2))
        assert sink.events == []

    def test_multiple_firsts_all_match(self):
        op, sink = make()
        op.on_event(Event(10, key=7, payload=1))
        op.on_event(Event(20, key=7, payload=1))
        op.on_event(Event(30, key=7, payload=2))
        assert [e.payload for e in sink.events] == [(10, 30), (20, 30)]

    def test_simultaneous_events_do_not_match(self):
        """'Followed by' is strict: the second must be strictly later."""
        op, sink = make()
        op.on_event(Event(10, key=7, payload=1))
        op.on_event(Event(10, key=7, payload=2))
        assert sink.events == []

    def test_event_can_be_both_first_and_second(self):
        op = PatternMatch(
            first=lambda e: True, second=lambda e: True, within=100
        )
        sink = Collector()
        op.add_downstream(sink)
        op.on_event(Event(1, key=0, payload=0))
        op.on_event(Event(2, key=0, payload=0))
        op.on_event(Event(3, key=0, payload=0))
        assert [e.payload for e in sink.events] == [(1, 2), (1, 3), (2, 3)]

    def test_punctuation_evicts_stale_state(self):
        op, sink = make(within=10)
        op.on_event(Event(10, key=7, payload=1))
        assert op.buffered_count() == 1
        op.on_punctuation(Punctuation(25))
        assert op.buffered_count() == 0
        assert sink.punctuations == [25]

    def test_punctuation_keeps_live_state(self):
        op, sink = make(within=100)
        op.on_event(Event(10, key=7, payload=1))
        op.on_punctuation(Punctuation(25))
        assert op.buffered_count() == 1
        op.on_event(Event(30, key=7, payload=2))
        assert len(sink.events) == 1

    def test_invalid_within(self):
        with pytest.raises(ValueError):
            PatternMatch(lambda e: True, lambda e: True, within=0)
