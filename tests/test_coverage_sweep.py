"""Coverage sweep: exercises branches the focused suites leave thin."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryBuildError
from repro.engine import DisorderedStreamable, Event, Punctuation, Streamable
from repro.engine.operators import Collector, Count
from repro.framework import make_query
from repro.framework.audit import run_method
from repro.framework.basic import build_basic_streamables
from repro.workloads import generate_synthetic


class TestFrameworkEdges:
    def test_basic_builder_alias(self, synthetic_small):
        disordered = DisorderedStreamable.from_dataset(
            synthetic_small, punctuation_frequency=500
        )
        result = build_basic_streamables(disordered, [100, 1_000]).run()
        assert len(result.collectors) == 2

    def test_advanced_with_single_latency_falls_back(self, synthetic_small):
        """run_method('advanced') with a one-rung ladder degenerates to a
        single sorted stream plus the full query body."""
        result = run_method(
            "advanced", synthetic_small, make_query("Q1", 500), [1_000],
            punctuation_frequency=500,
        )
        assert result.latencies == [1_000]
        assert len(result.output_events) == 1

    def test_streamables_apply_maps_every_output(self, synthetic_small):
        disordered = DisorderedStreamable.from_dataset(
            synthetic_small, punctuation_frequency=500
        ).tumbling_window(500)
        streamables = disordered.to_streamables([100, 1_000])
        counted = streamables.apply(lambda s: s.count())
        result = counted.run()
        for collector in result.collectors:
            assert all(isinstance(e.payload, int) for e in collector.events)

    def test_single_latency_piq_without_merge_allowed(self, synthetic_small):
        disordered = DisorderedStreamable.from_dataset(
            synthetic_small, punctuation_frequency=500
        ).tumbling_window(500)
        q = make_query("Q1", 500)
        result = disordered.to_streamables([2_000], piq=q.piq).run()
        assert sum(
            e.payload for e in result.output_events(0)
        ) == len(synthetic_small)


class TestOperatorEdges:
    def test_advance_to_helper(self):
        from repro.engine.operators.base import PassThrough

        op = PassThrough()
        sink = Collector()
        op.add_downstream(sink)
        op.advance_to(42)
        assert sink.punctuations == [42]

    def test_selectivity_property_updates(self):
        from repro.engine.operators.where import Where

        where = Where(lambda e: e.sync_time < 5)
        for t in range(10):
            where.on_event(Event(t))
        assert where.selectivity == 0.5

    def test_hopping_window_punctuation_alignment(self):
        from repro.engine.operators.window import TumblingWindow

        op = TumblingWindow(10)
        sink = Collector()
        op.add_downstream(sink)
        op.on_punctuation(Punctuation(7))   # next raw is 8 -> aligns to 0
        op.on_punctuation(Punctuation(9))   # next raw is 10 -> aligns to 10
        assert sink.punctuations == [-1, 9]

    def test_window_then_aggregate_after_sort_still_correct(self):
        """The realigned punctuations keep post-sort windowed counts
        exact (the configuration the contract fuzz found broken)."""
        times = [17, 3, 29, 11, 5, 23, 41, 35]
        result = (
            DisorderedStreamable.from_events(
                [Event(t) for t in times], punctuation_frequency=2,
                reorder_latency=40,
            )
            .to_streamable()
            .tumbling_window(10)
            .count()
            .collect()
        )
        got = {e.sync_time: e.payload for e in result.events}
        want = {}
        for t in sorted(times):
            want[t - t % 10] = want.get(t - t % 10, 0) + 1
        assert got == want

    def test_top_k_with_score_fn(self):
        events = [Event(0, 10, key=k, payload=(k,)) for k in range(6)]
        out = (
            Streamable.from_elements(events)
            .top_k(2, score_fn=lambda e: -e.payload[0])
            .collect()
        )
        assert sorted(e.key for e in out.events) == [0, 1]

    def test_group_aggregate_after_group_apply_chain(self):
        events = [Event(0, 10, key=k % 2, payload=(k,)) for k in range(8)]
        out = (
            Streamable.from_elements(events)
            .group_apply(lambda s: s.group_aggregate(Count()))
            .collect()
        )
        assert sum(e.payload for e in out.events) == 8


class TestMiscEdges:
    def test_dataset_head_and_span_roundtrip(self):
        dataset = generate_synthetic(100, seed=0)
        head = dataset.head(10)
        low, high = head.span
        assert low <= high
        assert len(head.keys) == 10

    def test_query_build_error_is_repro_error(self):
        from repro.core.errors import ReproError

        assert issubclass(QueryBuildError, ReproError)

    def test_union_via_streamables_three_way(self, synthetic_small):
        disordered = DisorderedStreamable.from_dataset(
            synthetic_small, punctuation_frequency=500,
            reorder_latency=1_000,
        )
        result = disordered.to_streamables([10, 100, 1_000]).run()
        # The cascade's final output is complete and sorted.
        final = result.output_events(2)
        assert len(final) == len(synthetic_small)
        syncs = [e.sync_time for e in final]
        assert syncs == sorted(syncs)

    def test_stats_sample_interval_on_impatience(self):
        from repro.core import ImpatienceSorter

        sorter = ImpatienceSorter(sample_every=10)
        for v in range(35):
            sorter.insert(v)
        marks = [n for n, _ in sorter.stats.run_count_history]
        assert marks == [10, 20, 30]

    def test_callback_sink_without_optional_hooks(self):
        from repro.engine.operators.sink import CallbackSink

        seen = []
        sink = CallbackSink(seen.append)
        sink.on_event(Event(1))
        sink.on_punctuation(Punctuation(1))  # no hook: no crash
        sink.on_flush()
        assert len(seen) == 1


class TestCsvSink:
    def test_writes_result_rows(self, tmp_path):
        import io

        from repro.engine.operators import CsvSink

        buffer = io.StringIO()
        sink = CsvSink(buffer)
        sink.on_event(Event(1, 2, key=7, payload=(10, 20)))
        sink.on_event(Event(3, 4, key=8, payload=(30, 40)))
        sink.on_flush()
        lines = buffer.getvalue().strip().splitlines()
        assert lines[0] == "sync_time,other_time,key,p0,p1"
        assert lines[1] == "1,2,7,10,20"
        assert sink.rows == 2

    def test_scalar_payload_single_column(self):
        import io

        from repro.engine.operators import CsvSink

        buffer = io.StringIO()
        sink = CsvSink(buffer)
        sink.on_event(Event(0, 10, key=0, payload=42))
        assert "p0" in buffer.getvalue()
        assert ",42" in buffer.getvalue()

    def test_egress_of_windowed_query(self, tmp_path):
        from repro.engine.graph import Pipeline, QueryNode
        from repro.engine.operators import CsvSink
        from repro.workloads.io import load_dataset_csv

        dataset = generate_synthetic(500, seed=4)
        path = tmp_path / "out.csv"
        query = (
            DisorderedStreamable.from_dataset(
                dataset, punctuation_frequency=100, reorder_latency=500
            )
            .tumbling_window(50)
            .to_streamable()
            .count()
        )
        with open(path, "w", newline="") as fh:
            sink_node = QueryNode(
                lambda: CsvSink(fh), ((query.node, None),)
            )
            Pipeline([sink_node]).run(query.source.elements())
        rows = path.read_text().strip().splitlines()
        assert rows[0].startswith("sync_time,")
        assert len(rows) == 1 + 10  # 10 windows of 50 over 500 events
