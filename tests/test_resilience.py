"""Unit tests for the resilience layer's pieces in isolation.

End-to-end crash-recovery byte-identity lives in
``tests/test_chaos_recovery.py``; this file covers the mechanisms —
retry backoff, chaos-spec parsing, injector determinism, the quarantine
ledger, the load-shedding guard, and exactly-once delivery bookkeeping.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core import ImpatienceSorter
from repro.core.errors import (
    ChaosSpecError,
    LateEventError,
    MalformedEventError,
    SupervisionExhaustedError,
)
from repro.core.late import LatePolicy, LateEventTracker
from repro.engine import DisorderedStreamable, Event
from repro.engine.event import Punctuation
from repro.resilience import (
    FaultInjector,
    InjectedCrashError,
    LoadSheddingGuard,
    MalformedEvent,
    QuarantineLedger,
    Reason,
    RetryPolicy,
    SorterSupervisor,
    TransientInjectedError,
    parse_chaos_spec,
    run_supervised,
)
from repro.resilience.degradation import DEGRADE_LATE_POLICY
from repro.resilience.supervisor import PipelineSupervisor
from repro.engine.graph import Pipeline, QueryNode
from repro.engine.operators.sink import Collector


def stream_of(times, punctuation_frequency=4, reorder_latency=3):
    return DisorderedStreamable.from_events(
        [Event(t) for t in times],
        punctuation_frequency=punctuation_frequency,
        reorder_latency=reorder_latency,
    )


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=5.0,
                             jitter=0.0)
        assert [policy.delay(i) for i in range(4)] == [1.0, 2.0, 4.0, 5.0]

    def test_jitter_is_deterministic_per_seed(self):
        a = [RetryPolicy(seed=7).delay(i) for i in range(5)]
        b = [RetryPolicy(seed=7).delay(i) for i in range(5)]
        c = [RetryPolicy(seed=8).delay(i) for i in range(5)]
        assert a == b
        assert a != c

    def test_jitter_stretches_within_bounds(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        for i in range(20):
            assert 1.0 <= policy.delay(i) <= 1.5

    def test_transient_failures_use_injected_sleep(self):
        slept = []
        stream = stream_of(range(20))
        result = run_supervised(
            stream.to_streamable(),
            chaos="io:p=0.2", seed=1,
            retry=RetryPolicy(max_retries=50, jitter=0.0),
            sleep=slept.append,
        )
        assert result.retries == len(slept) > 0
        assert all(d > 0 for d in slept)

    def test_retry_budget_exhaustion_is_fatal(self):
        stream = stream_of(range(50))
        with pytest.raises(SupervisionExhaustedError, match="consecutive"):
            run_supervised(
                stream.to_streamable(),
                chaos="io:p=1.0", seed=0,
                retry=RetryPolicy(max_retries=3),
                sleep=lambda s: None,
            )

    def test_handles_classifies_timeouts_as_transient(self):
        policy = RetryPolicy()
        assert policy.handles(OSError("conn reset"))
        assert policy.handles(TimeoutError("deadline"))
        assert policy.handles(asyncio.TimeoutError())
        assert not policy.handles(ValueError("semantic"))
        narrow = RetryPolicy(retry_on=(ConnectionError,))
        assert narrow.handles(ConnectionResetError())
        assert not narrow.handles(TimeoutError())

    def test_deadline_expiry_preserves_seeded_backoff_schedule(self):
        # A source whose pulls 2 and 3 (consecutive) and 7 expire their
        # deadline must retry on exactly the schedule a twin policy with
        # the same seed produces: delay(0), delay(1) for the consecutive
        # pair, then delay(0) again — same RNG draws, same order.
        class DeadlineSource:
            def __init__(self, inner, fail_calls):
                self._it = iter(inner)
                self._fail = set(fail_calls)
                self._calls = 0

            def __iter__(self):
                return self

            def __next__(self):
                call = self._calls
                self._calls += 1
                if call in self._fail:
                    raise asyncio.TimeoutError(f"deadline at pull {call}")
                return next(self._it)

        stream = stream_of(range(12)).to_streamable()
        sink_node = QueryNode(
            Collector, ((stream.node, None),), name="collect"
        )

        def build():
            pipeline = Pipeline([sink_node])
            return pipeline, [pipeline.operator_for(sink_node)]

        slept = []
        supervisor = PipelineSupervisor(
            build,
            DeadlineSource(stream.source.elements(), {2, 3, 7}),
            retry=RetryPolicy(seed=11),
            sleep=slept.append,
        )
        result = supervisor.run()
        twin = RetryPolicy(seed=11)
        assert slept == [twin.delay(0), twin.delay(1), twin.delay(0)]
        assert result.retries == 3
        assert result.restarts == 0
        expected = stream_of(range(12)).to_streamable().collect().events
        assert result.events == expected


class TestChaosSpec:
    def test_parses_multi_clause_spec(self):
        spec = parse_chaos_spec(
            "io:p=0.01,limit=5;crash:punct=3+9,limit=2;"
            "malform:p=0.1;regress:p=0.2,delta=4"
        )
        assert spec.io_p == 0.01 and spec.io_limit == 5
        assert spec.crash_puncts == frozenset({3, 9})
        assert spec.crash_limit == 2
        assert spec.malform_p == 0.1
        assert spec.regress_delta == 4

    @pytest.mark.parametrize("bad", [
        "", "  ", "unknownfault:p=0.1", "io:q=0.1", "io:p=nope",
        "io:p=1.5", "crash", "crash:punct=0", "crash:punct=a+b",
        "io:p", "drop:p=-0.1",
    ])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ChaosSpecError):
            parse_chaos_spec(bad)

    def test_net_clauses_accumulate(self):
        spec = parse_chaos_spec(
            "net:p=0.1,mode=disconnect;"
            "net:p=0.05,mode=malform,tenant=acme,limit=3;"
            "io:p=0.01"
        )
        assert spec.net == [
            {"p": 0.1, "mode": "disconnect", "tenant": None, "limit": None},
            {"p": 0.05, "mode": "malform", "tenant": "acme", "limit": 3},
        ]
        assert "net" in repr(spec)

    @pytest.mark.parametrize("bad", [
        "net:p=0.1", "net:p=0.1,mode=flood", "net:mode=dup",
        "net:p=2,mode=dup", "net:p=0.1,mode=dup,limit=0",
    ])
    def test_rejects_bad_net_clauses(self, bad):
        with pytest.raises(ChaosSpecError):
            parse_chaos_spec(bad)

    def test_spec_passthrough(self):
        spec = parse_chaos_spec("io:p=0.5")
        assert parse_chaos_spec(spec) is spec


class TestFaultInjector:
    def elements(self, n=40, punct_every=5):
        out = []
        for i in range(n):
            out.append(Event(i))
            if (i + 1) % punct_every == 0:
                out.append(Punctuation(i))
        return out

    def test_same_seed_same_faults(self):
        def collect(seed):
            inj = FaultInjector("drop:p=0.2;dup:p=0.2", seed)
            return list(inj.wrap(self.elements())), dict(inj.fired)

        a_elems, a_fired = collect(5)
        b_elems, b_fired = collect(5)
        c_elems, _ = collect(6)
        assert a_elems == b_elems and a_fired == b_fired
        assert a_elems != c_elems

    def test_transient_io_raises_before_consuming(self):
        inj = FaultInjector("io:p=1.0,limit=1", seed=0)
        wrapped = inj.wrap(self.elements(4, punct_every=99))
        with pytest.raises(TransientInjectedError):
            next(wrapped)
        # Nothing was lost: the retry sees the full stream.
        assert [e.sync_time for e in wrapped] == [0, 1, 2, 3]

    def test_crash_fires_after_nth_punctuation(self):
        inj = FaultInjector("crash:punct=2", seed=0)
        wrapped = inj.wrap(self.elements(20, punct_every=5))
        seen = []
        with pytest.raises(InjectedCrashError, match="#2"):
            for element in wrapped:
                seen.append(element)
        # Both punctuations were delivered before the crash.
        assert sum(type(e) is Punctuation for e in seen) == 2
        # The iterator is restartable and loses nothing after the crash.
        rest = list(wrapped)
        assert len(seen) + len(rest) == len(self.elements(20, punct_every=5))

    def test_malform_injects_additional_element(self):
        inj = FaultInjector("malform:p=1.0,limit=1", seed=0)
        out = list(inj.wrap(self.elements(3, punct_every=99)))
        assert isinstance(out[0], MalformedEvent)
        # The real event follows: injection is additive, not destructive.
        assert [e.sync_time for e in out[1:]] == [0, 1, 2]

    def test_limit_bounds_firing(self):
        inj = FaultInjector("drop:p=1.0,limit=2", seed=0)
        out = list(inj.wrap(self.elements(10, punct_every=99)))
        assert inj.fired["drop"] == 2
        assert len(out) == 8

    def test_wrap_operator_injects_crash(self):
        class FakeOp:
            def instrument(self, wrappers):
                self.on_event = wrappers["on_event"](lambda e: None)
                return {}

        op = FakeOp()
        FaultInjector("op:p=1.0,limit=1", seed=0).wrap_operator(op)
        with pytest.raises(InjectedCrashError):
            op.on_event("x")
        op.on_event("y")  # limit reached: passes through

    def test_net_fault_is_seeded_and_tenant_scoped(self):
        spec = (
            "net:p=0.3,mode=disconnect;net:p=0.3,mode=malform,tenant=acme"
        )

        def roll(seed, tenant, n=50):
            inj = FaultInjector(spec, seed)
            return [inj.net_fault(tenant) for _ in range(n)], dict(inj.fired)

        a_modes, a_fired = roll(3, "acme")
        b_modes, b_fired = roll(3, "acme")
        assert a_modes == b_modes and a_fired == b_fired
        assert "net:disconnect" in a_fired and "net:malform" in a_fired
        # Another tenant never sees acme's malform clause.
        other_modes, other_fired = roll(3, "globex")
        assert "net:malform" not in other_fired
        assert set(other_modes) <= {None, "disconnect"}

    def test_net_fault_respects_limit(self):
        inj = FaultInjector("net:p=1.0,mode=dup,limit=2", seed=0)
        modes = [inj.net_fault("t") for _ in range(5)]
        assert modes == ["dup", "dup", None, None, None]
        assert inj.fired["net:dup"] == 2


class TestQuarantineLedger:
    def test_records_with_reason_and_context(self):
        ledger = QuarantineLedger()
        entry = ledger.record(Reason.MALFORMED, "garbage", offset=7)
        assert entry.seq == 0
        assert entry.context == {"offset": 7}
        assert ledger.count(Reason.MALFORMED) == 1
        doc = ledger.as_dict()
        assert doc["total"] == 1
        assert doc["by_reason"] == {"malformed": 1}
        assert doc["entries"][0]["element"] == "'garbage'"

    def test_bounded_entries_unbounded_counts(self):
        ledger = QuarantineLedger(max_entries=2)
        for i in range(5):
            ledger.record(Reason.DUPLICATE, i)
        assert len(ledger) == 2
        assert ledger.total == 5
        assert ledger.as_dict()["retained"] == 2

    def test_clear_resets_everything(self):
        ledger = QuarantineLedger()
        ledger.record(Reason.LATE_EVENT, 3)
        ledger.clear()
        assert ledger.total == 0 and len(ledger) == 0
        assert ledger.record(Reason.LATE_EVENT, 4).seq == 0

    def test_rotation_evicts_oldest_first(self):
        ledger = QuarantineLedger(max_entries=3)
        for i in range(7):
            ledger.record(Reason.MALFORMED, i)
        assert [entry.seq for entry in ledger] == [4, 5, 6]
        assert [entry.element for entry in ledger] == [4, 5, 6]
        assert ledger.rotated == 4
        assert ledger.total == 7
        doc = ledger.as_dict()
        assert doc["retained"] == 3 and doc["rotated"] == 4

    def test_rotation_appends_jsonl_sidecar(self, tmp_path):
        sidecar = tmp_path / "deadletter.jsonl"
        ledger = QuarantineLedger(max_entries=2, sidecar=sidecar)
        for i in range(5):
            ledger.record(Reason.DUPLICATE, i, offset=i * 10)
        lines = sidecar.read_text().splitlines()
        assert len(lines) == 3
        docs = [json.loads(line) for line in lines]
        assert [d["seq"] for d in docs] == [0, 1, 2]
        assert all(d["reason"] == Reason.DUPLICATE for d in docs)
        assert docs[2]["context"] == {"offset": 20}
        # in-memory window still holds the newest two
        assert [entry.seq for entry in ledger] == [3, 4]
        assert ledger.as_dict()["sidecar"] == str(sidecar)

    def test_clear_resets_rotation_counter(self):
        ledger = QuarantineLedger(max_entries=1)
        ledger.record(Reason.MALFORMED, "a")
        ledger.record(Reason.MALFORMED, "b")
        assert ledger.rotated == 1
        ledger.clear()
        assert ledger.rotated == 0

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError, match="max_entries"):
            QuarantineLedger(max_entries=0)


class TestLateQuarantine:
    def test_raise_policy_routes_to_ledger(self):
        ledger = QuarantineLedger()
        tracker = LateEventTracker(LatePolicy.RAISE, quarantine=ledger)
        assert tracker.admit(3, punctuation_time=10) is None
        assert tracker.quarantined == 1
        assert ledger.count(Reason.LATE_EVENT) == 1
        assert ledger.entries[0].context["watermark"] == 10

    def test_raise_policy_without_ledger_still_raises(self):
        tracker = LateEventTracker(LatePolicy.RAISE)
        with pytest.raises(LateEventError):
            tracker.admit(3, punctuation_time=10)

    def test_completeness_counts_quarantined_as_excluded(self):
        ledger = QuarantineLedger()
        tracker = LateEventTracker(LatePolicy.RAISE, quarantine=ledger)
        tracker.admit(1, punctuation_time=5)
        assert tracker.preserved == 0
        assert tracker.completeness(10) == 0.9

    def test_sorter_accepts_quarantine_kwarg(self):
        ledger = QuarantineLedger()
        sorter = ImpatienceSorter(
            late_policy=LatePolicy.RAISE, quarantine=ledger
        )
        sorter.extend([5, 6])
        sorter.on_punctuation(5)
        assert sorter.insert(2) is False
        assert ledger.count(Reason.LATE_EVENT) == 1


class TestLoadSheddingGuard:
    def test_requires_exactly_one_bound(self):
        with pytest.raises(ValueError, match="exactly one"):
            LoadSheddingGuard()
        with pytest.raises(ValueError, match="exactly one"):
            LoadSheddingGuard(max_buffered_events=5, max_buffered_mb=1)

    def test_mb_bound_converts_to_events(self):
        guard = LoadSheddingGuard(max_buffered_mb=1.0, bytes_per_event=1024)
        assert guard.max_buffered_events == 1024

    def test_early_punctuation_decision(self):
        class FakePipeline:
            def buffered_events(self):
                return 100

        guard = LoadSheddingGuard(max_buffered_events=10)
        assert guard.check(FakePipeline(), high_watermark=55) == 55
        assert guard.decisions[0].kind == "early-punctuation"
        assert guard.decisions[0].buffered == 100
        # Under the bound: no decision.
        guard2 = LoadSheddingGuard(max_buffered_events=1000)
        assert guard2.check(FakePipeline(), high_watermark=55) is None
        assert guard2.decisions == []

    def test_degrade_mode_flips_raise_to_adjust(self):
        sorter = ImpatienceSorter(late_policy=LatePolicy.RAISE)

        class FakeOp:
            def __init__(self, s):
                self.sorter = s

        class FakePipeline:
            operators = [FakeOp(sorter)]

            def buffered_events(self):
                return 100

        guard = LoadSheddingGuard(
            max_buffered_events=10, mode=DEGRADE_LATE_POLICY
        )
        assert guard.check(FakePipeline(), high_watermark=1) is None
        assert sorter.late.policy is LatePolicy.ADJUST
        assert guard.as_dicts()[0]["detail"]["sorters_degraded"] == 1

    def test_guard_forces_punctuation_under_starvation(self):
        # No periodic punctuations at all: only the guard's event-interval
        # check can cap the reorder buffer.
        def starved():
            return stream_of(
                range(100), punctuation_frequency=None, reorder_latency=0
            ).to_streamable()

        baseline = run_supervised(starved())
        guard = LoadSheddingGuard(max_buffered_events=10, check_interval=8)
        guarded = run_supervised(starved(), guard=guard)
        # The guard fired, and shedding did not change the output (the
        # stream is ordered, so early punctuations lose nothing).
        assert guard.decisions
        assert guarded.events == baseline.events
        doc = guarded.resilience_doc()
        assert doc["degradations"][0]["kind"] == "early-punctuation"

    def test_guard_decisions_survive_crash_recovery(self):
        def starved():
            return stream_of(
                range(100), punctuation_frequency=None, reorder_latency=0
            ).to_streamable()

        plain_guard = LoadSheddingGuard(
            max_buffered_events=10, check_interval=8
        )
        baseline = run_supervised(starved(), guard=plain_guard)
        crash_guard = LoadSheddingGuard(
            max_buffered_events=10, check_interval=8
        )
        # Forced punctuations make ingress punctuation counting moot, so
        # crash on an event via the operator path instead: use io faults
        # plus a mid-stream crash armed on the final ingress punctuation.
        crashed = run_supervised(
            starved(), guard=crash_guard, chaos="io:p=0.05", seed=9,
            sleep=lambda s: None,
        )
        assert crashed.events == baseline.events
        # Replay regenerated exactly the same decision log.
        assert [d.as_dict() for d in crash_guard.decisions] == \
            [d.as_dict() for d in plain_guard.decisions]


class TestExactlyOnceDelivery:
    def test_supervised_matches_plain_collect(self):
        stream = stream_of(range(100))
        expected = stream.to_streamable().collect().events
        result = run_supervised(stream_of(range(100)).to_streamable())
        assert result.events == expected
        assert result.completed
        assert result.restarts == 0

    def test_duplicate_ingress_suppressed_and_recorded(self):
        stream = stream_of(range(40))
        expected = stream.to_streamable().collect().events
        result = run_supervised(
            stream_of(range(40)).to_streamable(),
            chaos="dup:p=0.3", seed=2, quarantine=True,
            sleep=lambda s: None,
        )
        assert result.events == expected
        assert result.duplicates_suppressed > 0
        assert result.ledger.count(Reason.DUPLICATE) == \
            result.duplicates_suppressed

    def test_malformed_without_quarantine_is_fatal(self):
        with pytest.raises(MalformedEventError):
            run_supervised(
                stream_of(range(40)).to_streamable(),
                chaos="malform:p=0.5", seed=0,
            )

    def test_restart_budget_exhaustion(self):
        with pytest.raises(SupervisionExhaustedError, match="restarts"):
            run_supervised(
                stream_of(range(100)).to_streamable(),
                chaos="crash:every=1", seed=0, max_restarts=2,
            )


class TestSorterSupervisorUnits:
    def test_checkpoints_truncate_journal(self):
        elements = []
        for i in range(100):
            elements.append(("event", i))
            if (i + 1) % 10 == 0:
                elements.append(("punct", i - 5))
        expected = []
        plain = ImpatienceSorter()
        for kind, value in elements:
            if kind == "event":
                plain.insert(value)
            else:
                expected.extend(plain.on_punctuation(value))
        expected.extend(plain.flush())
        sup = SorterSupervisor(checkpoint_every=1)
        result = sup.run(elements)
        assert result.checkpoints == 10
        # Journal holds only the delta since the last checkpoint.
        assert result.journal_len < len(elements) / 2
        assert result.output == expected

    def test_malformed_pair_quarantined(self):
        elements = [("event", 1), "garbage", ("event", 2), ("punct", 5)]
        sup = SorterSupervisor(quarantine=True)
        result = sup.run(elements)
        assert result.output == [1, 2]
        assert result.ledger.count(Reason.MALFORMED) == 1

    def test_regressing_punctuation_suppressed(self):
        elements = [
            ("event", 1), ("punct", 5), ("punct", 2), ("event", 7),
            ("punct", 7),
        ]
        sup = SorterSupervisor(quarantine=True)
        result = sup.run(elements)
        assert result.output == [1, 7]
        assert result.punctuations_suppressed == 1
        assert result.ledger.count(Reason.PUNCTUATION_REGRESSION) == 1
