"""Out-of-core run pool acceptance: spilling must be invisible.

The bounded-memory sorters (:mod:`repro.sorting.external`) promise that
for any budget — down to one row per spill — every output batch is
byte-identical to the in-memory sorter's, the resting buffer never
exceeds the budget, spilled run files never outlive the sorter, and a
corrupt/truncated/unreadable run file surfaces as a typed
:class:`SpillCorruptionError` (recovered cleanly under supervision),
never as a silently wrong answer.  This module proves each clause;
``test_differential_sorting.py`` and ``test_fuzz_queries.py`` carry the
randomized differential halves.
"""

from __future__ import annotations

import glob
import os
import pickle
import random
import tempfile

import numpy as np
import pytest

from repro.core.columnar import ColumnarImpatienceSorter
from repro.core.errors import (
    CheckpointError,
    LateEventError,
    QueryBuildError,
    SpillCorruptionError,
    SupervisionExhaustedError,
)
from repro.core.impatience import ImpatienceSorter
from repro.core.late import LatePolicy
from repro.engine.checkpoint import (
    checkpoint_sorter,
    release_checkpoint,
    restore_sorter,
)
from repro.resilience import FaultInjector, SorterSupervisor
from repro.sorting.external import (
    ExternalColumnarSorter,
    ExternalImpatienceSorter,
    LoserTree,
    SpillDirectory,
    parse_memory_budget,
)


def spill_dirs():
    """Live spill directories, for before/after orphan accounting."""
    return set(glob.glob(
        os.path.join(tempfile.gettempdir(), "repro-spill-*")
    ))


@pytest.fixture(autouse=True)
def no_orphan_spill_dirs():
    before = spill_dirs()
    yield
    assert spill_dirs() <= before, "test leaked spill directories"


# -- budget parsing ---------------------------------------------------------


class TestParseMemoryBudget:
    @pytest.mark.parametrize("value,expected", [
        (1, 1),
        (65536, 65536),
        ("512", 512),
        ("4kb", 4096),
        ("64MB", 64 * 1024 * 1024),
        ("2 GiB", 2 * 1024 ** 3),
    ])
    def test_accepted(self, value, expected):
        assert parse_memory_budget(value) == expected

    @pytest.mark.parametrize("value", [
        "banana", "12XB", "", "-5", "0", 0, -1, True, 1.5, None,
    ])
    def test_rejected(self, value):
        with pytest.raises((ValueError, TypeError)):
            parse_memory_budget(value)


# -- loser tree -------------------------------------------------------------


class TestLoserTree:
    def merge(self, sources):
        entries = [
            (lst[0], i) if lst else None
            for i, lst in enumerate(sources)
        ]
        cursors = [1 if lst else 0 for lst in sources]
        tree = LoserTree(entries)
        out = []
        while tree.winner >= 0:
            key, i = tree.winner_entry()
            out.append(key)
            if cursors[i] < len(sources[i]):
                tree.advance((sources[i][cursors[i]], i))
                cursors[i] += 1
            else:
                tree.advance(None)
        return out

    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8, 13])
    def test_merges_sorted_sources(self, k):
        rng = random.Random(k)
        sources = [
            sorted(rng.randrange(1000) for _ in range(rng.randrange(0, 40)))
            for _ in range(k)
        ]
        expected = sorted(v for lst in sources for v in lst)
        assert self.merge(sources) == expected

    def test_ties_break_by_source_index(self):
        tree = LoserTree([(5, 2), (5, 0), (5, 1)])
        order = []
        while tree.winner >= 0:
            order.append(tree.winner_entry()[1])
            tree.advance(None)
        assert order == [0, 1, 2]

    def test_runner_up_bounds_the_winner(self):
        rng = random.Random(42)
        for _ in range(50):
            k = rng.randrange(2, 9)
            entries = [(rng.randrange(100), i) for i in range(k)]
            tree = LoserTree(list(entries))
            keys = sorted(key for key, _ in entries)
            assert tree.winner_entry()[0] == keys[0]
            assert tree.runner_up()[0] == keys[1]


# -- columnar differential --------------------------------------------------


def columnar_stream(rng, n, columns, punct_every, displacement):
    """Presorted-chunk batches + trailing punctuations, like the
    compiled ingress path feeds the sorter."""
    times = []
    for i in range(n):
        times.append(i + rng.randrange(-displacement, displacement + 1))
    batches = []
    high = None
    for start in range(0, n, punct_every):
        chunk = np.asarray(times[start:start + punct_every], dtype=np.int64)
        cols = tuple(
            np.asarray([(t * (c + 3)) % 101 for t in chunk], dtype=np.int64)
            for c in range(columns)
        )
        order = np.argsort(chunk, kind="stable")
        high = int(chunk.max()) if high is None \
            else max(high, int(chunk.max()))
        batches.append((
            chunk[order], tuple(col[order] for col in cols),
            high - displacement,
        ))
    return batches


def drive_columnar(sorter, batches, columns):
    out = []
    for chunk, cols, punct in batches:
        sorter.insert_batch(chunk, cols)
        out.append(sorter.on_punctuation(punct))
    out.append(sorter.flush())
    return out


def assert_columnar_equal(got, want, columns):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        if columns:
            gk, gc = g
            wk, wc = w
            np.testing.assert_array_equal(gk, wk)
            for a, b in zip(gc, wc):
                np.testing.assert_array_equal(a, b)
        else:
            np.testing.assert_array_equal(g, w)


class TestColumnarDifferential:
    @pytest.mark.parametrize("policy", [LatePolicy.DROP, LatePolicy.ADJUST])
    @pytest.mark.parametrize("columns", [0, 1, 2])
    @pytest.mark.parametrize("budget", [1, 24, 256, 8192, 1 << 20])
    def test_byte_identical_to_in_memory(self, policy, columns, budget):
        rng = random.Random(hash((policy.value, columns, budget)) & 0xFFFF)
        batches = columnar_stream(rng, 600, columns, 47, 30)
        reference = drive_columnar(
            ColumnarImpatienceSorter(late_policy=policy, columns=columns),
            batches, columns,
        )
        external = ExternalColumnarSorter(
            budget, late_policy=policy, columns=columns,
        )
        try:
            got = drive_columnar(external, batches, columns)
            assert_columnar_equal(got, reference, columns)
            doc = external.spill_doc()
            assert doc["peak_buffered_bytes"] <= budget
            if budget < 256:
                assert doc["runs_spilled"] > 0
        finally:
            external.close()

    def test_pathological_one_row_per_spill(self):
        """budget=1 byte: every chunk overflows, block_rows=1 — the
        1-run-per-event worst case stays byte-identical."""
        rng = random.Random(5)
        batches = columnar_stream(rng, 250, 1, 13, 40)
        reference = drive_columnar(
            ColumnarImpatienceSorter(columns=1), batches, 1,
        )
        external = ExternalColumnarSorter(1, columns=1)
        try:
            got = drive_columnar(external, batches, 1)
            assert_columnar_equal(got, reference, 1)
            assert external.spill_doc()["runs_spilled"] > 0
        finally:
            external.close()

    def test_mirrors_validation_errors(self):
        external = ExternalColumnarSorter(64, columns=1)
        try:
            with pytest.raises(ValueError, match="1-D"):
                external.insert_batch(np.zeros((2, 2), dtype=np.int64), ())
            with pytest.raises(ValueError, match="payload columns"):
                external.insert_batch(np.arange(3), ())
        finally:
            external.close()


# -- scalar differential ----------------------------------------------------


def scalar_stream(seed, n=1500, punct_every=90, displacement=50,
                  latency=35):
    rng = random.Random(seed)
    elements, high = [], None
    for i in range(n):
        v = i + rng.randrange(-displacement, displacement + 1)
        elements.append(("event", v))
        high = v if high is None else max(high, v)
        if (i + 1) % punct_every == 0:
            elements.append(("punct", high - latency))
    return elements


def drive_scalar(sorter, elements, wrap=None):
    out = []
    for kind, value in elements:
        item = wrap(value) if wrap else value
        if kind == "event":
            sorter.insert(item)
        else:
            out.append(list(sorter.on_punctuation(value)))
    out.append(list(sorter.flush()))
    return out


class TestScalarDifferential:
    @pytest.mark.parametrize("policy", [LatePolicy.DROP, LatePolicy.ADJUST])
    @pytest.mark.parametrize("budget", [1, 64, 1024, 65536])
    def test_keyless_matches_in_memory(self, policy, budget):
        elements = scalar_stream(seed=budget % 97)
        reference = drive_scalar(
            ImpatienceSorter(late_policy=policy), elements
        )
        external = ExternalImpatienceSorter(budget, late_policy=policy)
        try:
            got = drive_scalar(external, elements)
            assert got == reference
            assert external.late.dropped >= 0
            doc = external.spill_doc()
            assert doc["peak_buffered_bytes"] <= budget
        finally:
            external.close()

    @pytest.mark.parametrize("budget", [1, 512, 16384])
    def test_keyed_matches_in_memory_kway(self, budget):
        # Items are pure functions of the key, so arrival tie order
        # cannot distinguish equal items and the comparison is exact.
        def key(item):
            return item[1]

        elements = scalar_stream(seed=3, n=1200)
        reference = drive_scalar(
            ImpatienceSorter(key=key, merge="kway"), elements,
            wrap=lambda v: ("ev", v),
        )
        external = ExternalImpatienceSorter(budget, key=key)
        try:
            got = drive_scalar(external, elements, wrap=lambda v: ("ev", v))
            assert got == reference
        finally:
            external.close()

    def test_raise_policy_raises_like_in_memory(self):
        elements = scalar_stream(seed=11)
        with pytest.raises(LateEventError):
            drive_scalar(
                ImpatienceSorter(late_policy=LatePolicy.RAISE), elements
            )
        external = ExternalImpatienceSorter(
            128, late_policy=LatePolicy.RAISE
        )
        try:
            with pytest.raises(LateEventError):
                drive_scalar(external, elements)
        finally:
            external.close()

    def test_rejects_non_integer_keys(self):
        external = ExternalImpatienceSorter(128)
        try:
            with pytest.raises(TypeError, match="integer sync keys"):
                external.insert("three")
            with pytest.raises(TypeError, match="integer sync keys"):
                external.insert(True)
        finally:
            external.close()


# -- replacement selection --------------------------------------------------


class TestReplacementSelection:
    def test_nearly_sorted_runs_exceed_twice_the_budget(self):
        """On nearly-sorted input, replacement selection keeps one run
        open across spills, so on-disk runs average >= 2x the budget."""
        budget = 2048
        rng = random.Random(1)
        external = ExternalImpatienceSorter(budget)
        try:
            for i in range(60_000):
                external.insert(i + rng.randrange(0, 8))
            external.flush()
            doc = external.spill_doc()
            assert doc["runs_spilled"] >= 1
            assert doc["avg_run_bytes"] >= 2 * budget
        finally:
            external.close()

    def test_reversed_input_degrades_to_one_run_per_spill(self):
        budget = 2048
        external = ExternalImpatienceSorter(budget)
        try:
            for i in range(20_000, 0, -1):
                external.insert(i)
            external.flush()
            doc = external.spill_doc()
            # Anti-sorted input defeats replacement selection — many
            # short runs — but correctness never depends on run length.
            assert doc["runs_spilled"] > 10
        finally:
            external.close()


# -- temp-file hygiene ------------------------------------------------------


class TestTempFileHygiene:
    def fill(self, sorter, n=4000):
        for i in range(n):
            sorter.insert(i % 997)

    def test_close_removes_directory_and_runs(self):
        external = ExternalImpatienceSorter(256)
        self.fill(external)
        path = external.pool.directory.path
        assert os.path.isdir(path)
        assert external.run_count > 0
        external.close()
        assert not os.path.exists(path)

    def test_close_after_exception_removes_directory(self):
        external = ExternalImpatienceSorter(256)
        path = external.pool.directory.path
        try:
            self.fill(external)
            raise RuntimeError("mid-stream failure")
        except RuntimeError:
            pass
        finally:
            external.close()
        assert not os.path.exists(path)

    def test_finalizer_backstop_cleans_unclosed_sorter(self):
        import gc

        external = ExternalImpatienceSorter(256)
        self.fill(external)
        path = external.pool.directory.path
        del external
        gc.collect()
        assert not os.path.exists(path)

    def test_spill_directory_context_manager(self):
        with SpillDirectory() as directory:
            path = directory.path
            open(directory.file_path("x.spill"), "wb").close()
        assert not os.path.exists(path)

    def test_run_files_deleted_as_cuts_exhaust_them(self):
        external = ExternalImpatienceSorter(256)
        try:
            self.fill(external, 3000)
            directory = external.pool.directory.path
            assert len(os.listdir(directory)) > 0
            external.flush()
            assert os.listdir(directory) == []
        finally:
            external.close()


# -- disk-fault injection ---------------------------------------------------


class TestSpillFaultInjection:
    def stream_through(self, injector):
        external = ExternalImpatienceSorter(256, injector=injector)
        try:
            rng = random.Random(0)
            for _ in range(3000):
                external.insert(rng.randrange(10_000))
            external.flush()
        finally:
            external.close()

    @pytest.mark.parametrize("mode", ["corrupt", "truncate"])
    @pytest.mark.parametrize("side", ["read", "write"])
    def test_corruption_is_detected_never_silent(self, mode, side):
        injector = FaultInjector(
            f"spill:p=1.0,mode={mode},on={side},limit=1", seed=1
        )
        with pytest.raises(SpillCorruptionError) as info:
            self.stream_through(injector)
        err = info.value
        assert err.path and os.path.basename(err.path).endswith(".spill")
        assert err.offset >= 0
        assert injector.fired["spill"] == 1

    @pytest.mark.parametrize("side", ["read", "write"])
    def test_oserror_mode_raises_oserror(self, side):
        injector = FaultInjector(
            f"spill:p=1.0,mode=oserror,on={side},limit=1", seed=1
        )
        with pytest.raises(OSError) as info:
            self.stream_through(injector)
        assert not isinstance(info.value, SpillCorruptionError)
        assert "injected spill" in str(info.value)

    def test_spill_corruption_error_pickles(self):
        err = SpillCorruptionError("/tmp/x.spill", 128, "checksum mismatch")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.path == err.path
        assert clone.offset == 128
        assert "checksum mismatch" in str(clone)

    def test_truncated_file_on_disk_is_detected(self):
        """A genuinely torn file (no injector) trips the framing check."""
        external = ExternalImpatienceSorter(256)
        try:
            for i in range(3000):
                external.insert(i % 719)
            runs = external.pool.runs
            assert runs, "expected at least one spilled run"
            run = runs[0]
            with open(run.path, "r+b") as fh:
                fh.truncate(run.length - 7)
            with pytest.raises(SpillCorruptionError, match="truncated"):
                external.flush()
        finally:
            external.close()


# -- checkpoint / restore ---------------------------------------------------


class TestExternalCheckpoint:
    def split_stream(self, seed=9):
        # A punctuation lag deeper than the spill cadence keeps sorted
        # runs alive on disk across cuts — the checkpoint must capture
        # and pin them, which is the point of these tests.
        elements = scalar_stream(
            seed=seed, n=2400, punct_every=120, latency=300,
        )
        cut = (len(elements) * 2) // 3
        return elements[:cut], elements[cut:]

    def reference(self, head, tail):
        return drive_scalar(ImpatienceSorter(), head + tail)

    def run_prefix(self, sorter, head):
        out = []
        for kind, value in head:
            if kind == "event":
                sorter.insert(value)
            else:
                out.append(list(sorter.on_punctuation(value)))
        return out

    def finish(self, sorter, prefix_out, tail):
        out = list(prefix_out)
        for kind, value in tail:
            if kind == "event":
                sorter.insert(value)
            else:
                out.append(list(sorter.on_punctuation(value)))
        out.append(list(sorter.flush()))
        return out

    def test_round_trip_with_runs_on_disk(self):
        head, tail = self.split_stream()
        expected = self.reference(head, tail)
        original = ExternalImpatienceSorter(512)
        prefix_out = self.run_prefix(original, head)
        assert original.run_count > 0, "checkpoint must capture disk runs"
        state = checkpoint_sorter(original)
        assert state["format"] == 3
        assert len(state["external"]["runs"]) == original.run_count
        # The original dying — its files deleted — must not invalidate
        # the checkpoint: restore twice, close the original in between.
        twin1 = restore_sorter(state)
        original.close()
        twin2 = restore_sorter(state)
        got1 = self.finish(twin1, prefix_out, tail)
        twin1.close()
        got2 = self.finish(twin2, prefix_out, tail)
        twin2.close()
        release_checkpoint(state)
        assert got1 == expected
        assert got2 == expected

    def test_release_checkpoint_removes_pinned_files(self):
        head, _ = self.split_stream()
        original = ExternalImpatienceSorter(512)
        self.run_prefix(original, head)
        state = checkpoint_sorter(original)
        pinned = state["external"]["directory"].path
        assert os.path.isdir(pinned)
        release_checkpoint(state)
        assert not os.path.exists(pinned)
        with pytest.raises(CheckpointError, match="already released"):
            restore_sorter(state)
        original.close()

    def test_keyed_external_not_checkpointable(self):
        external = ExternalImpatienceSorter(512, key=lambda item: item[0])
        try:
            with pytest.raises(CheckpointError, match="only keyless"):
                checkpoint_sorter(external)
        finally:
            external.close()

    @pytest.mark.parametrize("checkpoint_every", [1, 3])
    def test_supervised_crash_recovery_exactly_once(self, checkpoint_every):
        """Crash mid-stream with runs on disk; the restart restores from
        the journal+checkpoint and delivery is exactly-once identical."""
        elements = scalar_stream(seed=21, n=2400, punct_every=120)
        expected = [
            v for batch in drive_scalar(ImpatienceSorter(), elements)
            for v in batch
        ]
        supervisor = SorterSupervisor(
            lambda: ExternalImpatienceSorter(512),
            checkpoint_every=checkpoint_every,
            chaos="crash:punct=4+9", seed=0,
            sleep=lambda s: None,
        )
        result = supervisor.run(elements)
        assert result.output == expected
        assert result.restarts == 2
        assert all(r["from_checkpoint"] for r in result.restores)
        result.sorter.close()


# -- supervised spill chaos -------------------------------------------------


class TestSupervisedSpillChaos:
    def expected(self, elements):
        return [
            v for batch in drive_scalar(ImpatienceSorter(), elements)
            for v in batch
        ]

    @pytest.mark.parametrize("mode", ["oserror", "corrupt", "truncate"])
    def test_recovers_byte_identical(self, mode):
        elements = scalar_stream(seed=2, n=2400, punct_every=120)
        supervisor = SorterSupervisor(
            lambda: ExternalImpatienceSorter(512),
            checkpoint_every=2, quarantine=True,
            chaos=f"spill:p=0.03,mode={mode},on=both,limit=2", seed=7,
            sleep=lambda s: None,
        )
        result = supervisor.run(elements)
        assert result.output == self.expected(elements)
        assert result.injector.fired.get("spill", 0) >= 1
        assert result.restarts >= 1
        result.sorter.close()

    def test_corruption_is_quarantined_visibly(self):
        elements = scalar_stream(seed=2, n=2400, punct_every=120)
        supervisor = SorterSupervisor(
            lambda: ExternalImpatienceSorter(512),
            checkpoint_every=2, quarantine=True,
            chaos="spill:p=0.05,mode=corrupt,on=read,limit=1", seed=3,
            sleep=lambda s: None,
        )
        result = supervisor.run(elements)
        assert result.output == self.expected(elements)
        spills = [
            entry for entry in result.ledger.entries
            if str(entry.element).startswith("spill:")
        ]
        assert len(spills) == result.restarts >= 1
        result.sorter.close()

    def test_persistent_corruption_exhausts_never_lies(self):
        elements = scalar_stream(seed=2, n=1200, punct_every=120)
        supervisor = SorterSupervisor(
            lambda: ExternalImpatienceSorter(256),
            checkpoint_every=2, max_restarts=2,
            chaos="spill:p=1.0,mode=corrupt,on=write", seed=0,
            sleep=lambda s: None,
        )
        with pytest.raises(SupervisionExhaustedError):
            supervisor.run(elements)


# -- engine / framework wiring ----------------------------------------------


class TestEngineWiring:
    def events(self):
        from repro.engine.event import Event

        rng = random.Random(13)
        return [
            Event(rng.randrange(500), key=rng.randrange(5),
                  payload=(rng.randrange(50), rng.randrange(9)))
            for _ in range(1500)
        ]

    def plan(self):
        from repro.engine import QueryPlan
        from repro.engine.operators.aggregates import Count

        return (QueryPlan().tumbling_window(16).sort()
                .group_aggregate(Count()))

    @pytest.mark.parametrize("engine", ["auto", "row"])
    def test_budgeted_plan_identical_with_spill_metrics(self, engine):
        events = self.events()
        plain = self.plan().run(list(events), 64, 30, engine=engine)
        budgeted = self.plan().run(
            list(events), 64, 30, engine=engine, memory_budget=256,
        )
        assert budgeted.events == plain.events
        assert budgeted.punctuations == plain.punctuations
        doc = budgeted.spill
        assert doc is not None
        assert doc["peak_buffered_bytes"] <= 256
        assert doc["runs_spilled"] > 0
        assert plain.spill is None
        if engine == "auto":  # row runs carry no snapshot sans registry
            snapshot = budgeted.snapshot()
            assert snapshot.spill == doc
            assert snapshot.as_dict()["meta"]["memory_budget"] == 256

    def test_string_budget_and_custom_sorter_rejection(self):
        events = self.events()[:200]
        result = self.plan().run(list(events), 64, 30,
                                 memory_budget="4KB")
        assert result.spill["budget_bytes"] == 4096
        from repro.engine import QueryPlan

        custom = (QueryPlan().tumbling_window(16)
                  .sort(sorter=lambda: ImpatienceSorter())
                  .count())
        with pytest.raises(QueryBuildError, match="default sorter"):
            custom.run(list(events), 64, 30, memory_budget=1024)

    def test_streamables_budgeted_run_identical(self):
        from repro.engine import DisorderedStreamable
        from repro.workloads import load_dataset

        dataset = load_dataset("cloudlog", 1500)

        def build():
            return DisorderedStreamable.from_dataset(
                dataset, punctuation_frequency=100, reorder_latency=500,
            ).to_streamables([0, 500])

        plain = build().run()
        budgeted = build().run(memory_budget=2048)
        for i in range(2):
            assert budgeted.output_events(i) == plain.output_events(i)
        assert len(budgeted.spill["paths"]) == 2
        for doc in budgeted.spill["paths"]:
            assert doc["peak_buffered_bytes"] <= 2048
        with pytest.raises(QueryBuildError, match="supervised"):
            build().run(memory_budget=1024, supervised=True)
        with pytest.raises(QueryBuildError, match="parallel"):
            build().run(memory_budget=1024, parallel=2)

    def test_cli_memory_budget(self, capsys):
        from repro.cli import main

        code = main([
            "run", "--query", "grouped-count", "--n", "4000",
            "--memory-budget", "16KB",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "spill: budget 16,384 B" in out

    def test_cli_memory_budget_rejections(self, capsys):
        from repro.cli import main

        for extra in (["--supervised"], ["--parallel", "2"]):
            code = main([
                "run", "--n", "500", "--memory-budget", "1KB", *extra,
            ])
            assert code == 2
            assert "error: QueryBuildError" in capsys.readouterr().err
        code = main(["run", "--n", "500", "--memory-budget", "nope"])
        assert code == 2
        assert "error: ValueError" in capsys.readouterr().err
