"""Tests for the from-scratch baseline sorters (repro.sorting)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sorting import (
    OFFLINE_SORTS,
    binary_insertion_sort,
    heapsort,
    offline_sort,
    quicksort,
    timsort,
)
from repro.sorting.timsort import count_natural_runs_with_reversals

ADVERSARIAL = {
    "empty": [],
    "single": [5],
    "sorted": list(range(500)),
    "reverse": list(range(500, 0, -1)),
    "all_equal": [3] * 500,
    "organ_pipe": list(range(250)) + list(range(250, 0, -1)),
    "sawtooth": [i % 17 for i in range(500)],
    "two_runs": list(range(250)) + list(range(250)),
    "alternating": [i % 2 for i in range(500)],
}


@pytest.mark.parametrize("sorter", [quicksort, timsort, heapsort])
@pytest.mark.parametrize("pattern", sorted(ADVERSARIAL))
def test_adversarial_patterns(sorter, pattern):
    data = ADVERSARIAL[pattern]
    assert sorter(data) == sorted(data)


@pytest.mark.parametrize("sorter", [quicksort, timsort, heapsort])
def test_does_not_mutate_input(sorter):
    data = [3, 1, 2]
    sorter(data)
    assert data == [3, 1, 2]


@pytest.mark.parametrize("sorter", [quicksort, timsort, heapsort])
def test_key_function(sorter):
    data = [(1, "b"), (0, "c"), (2, "a")]
    out = sorter(data, key=lambda p: p[1])
    assert [p[1] for p in out] == ["a", "b", "c"]


@pytest.mark.parametrize("name", sorted(OFFLINE_SORTS))
@given(data=st.lists(st.integers(-10_000, 10_000)))
@settings(max_examples=60, deadline=None)
def test_registry_sorters_match_builtin(name, data):
    assert offline_sort(name, data) == sorted(data)


def test_registry_unknown_name():
    with pytest.raises(ValueError, match="unknown offline sorter"):
        offline_sort("bogosort", [1])


@given(st.lists(st.tuples(st.integers(0, 5), st.integers())))
@settings(max_examples=100, deadline=None)
def test_timsort_is_stable(pairs):
    """Equal keys keep input order (Timsort's contract)."""
    indexed = [(k, i) for i, (k, _) in enumerate(pairs)]
    out = timsort(indexed, key=lambda p: p[0])
    for (ka, ia), (kb, ib) in zip(out, out[1:]):
        if ka == kb:
            assert ia < ib


@given(st.lists(st.floats(allow_nan=False)))
@settings(max_examples=60, deadline=None)
def test_quicksort_floats_with_infinities(data):
    assert quicksort(data) == sorted(data)


class TestBinaryInsertion:
    def test_full_range(self):
        keys = [5, 2, 4, 1]
        items = ["e5", "e2", "e4", "e1"]
        binary_insertion_sort(keys, items)
        assert keys == [1, 2, 4, 5]
        assert items == ["e1", "e2", "e4", "e5"]

    def test_subrange_only(self):
        keys = [9, 3, 1, 2, 0]
        items = list(keys)
        binary_insertion_sort(keys, items, lo=1, hi=4)
        assert keys == [9, 1, 2, 3, 0]

    def test_presorted_prefix_start(self):
        keys = [1, 3, 5, 2, 4]
        items = list(keys)
        binary_insertion_sort(keys, items, lo=0, hi=5, start=3)
        assert keys == [1, 2, 3, 4, 5]

    def test_stability(self):
        keys = [1, 0, 1, 0]
        items = ["a", "b", "c", "d"]
        binary_insertion_sort(keys, items)
        assert items == ["b", "d", "a", "c"]


class TestTimsortInternals:
    def test_descending_run_detection(self):
        """A strictly descending prefix is reversed as one run."""
        data = [5, 4, 3, 2, 1] + list(range(100))
        assert timsort(data) == sorted(data)

    def test_natural_run_counter(self):
        assert count_natural_runs_with_reversals([]) == 0
        assert count_natural_runs_with_reversals([1]) == 1
        assert count_natural_runs_with_reversals([1, 2, 3]) == 1
        assert count_natural_runs_with_reversals([3, 2, 1]) == 1
        assert count_natural_runs_with_reversals([1, 2, 1, 2]) == 2
        assert count_natural_runs_with_reversals([1, 2, 3, 2, 1, 4]) == 3

    @given(st.lists(st.integers(0, 100), min_size=32, max_size=2000))
    @settings(max_examples=60, deadline=None)
    def test_large_inputs_trigger_merge_path(self, data):
        assert timsort(data) == sorted(data)


class TestHeapsortInternals:
    @given(st.lists(st.integers()))
    @settings(max_examples=80, deadline=None)
    def test_heapsort_property(self, data):
        assert heapsort(data) == sorted(data)

    def test_duplicate_heavy(self):
        data = [1, 1, 0, 0, 2, 2] * 100
        assert heapsort(data) == sorted(data)


class TestNaturalMergeSort:
    @pytest.mark.parametrize("pattern", sorted(ADVERSARIAL))
    def test_adversarial(self, pattern):
        from repro.sorting.natural_merge import natural_merge_sort

        data = ADVERSARIAL[pattern]
        assert natural_merge_sort(data) == sorted(data)

    @given(st.lists(st.integers(-5000, 5000)))
    @settings(max_examples=80, deadline=None)
    def test_matches_builtin(self, data):
        from repro.sorting.natural_merge import natural_merge_sort

        assert natural_merge_sort(data) == sorted(data)

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers())))
    @settings(max_examples=60, deadline=None)
    def test_stability(self, pairs):
        from repro.sorting.natural_merge import natural_merge_sort

        indexed = [(k, i) for i, (k, _) in enumerate(pairs)]
        out = natural_merge_sort(indexed, key=lambda p: p[0])
        for (ka, ia), (kb, ib) in zip(out, out[1:]):
            if ka == kb:
                assert ia < ib

    def test_registered_offline_and_online(self, rng):
        from repro.sorting import make_online_sorter, offline_sort

        data = [rng.randrange(500) for _ in range(1000)]
        assert offline_sort("naturalmerge", data) == sorted(data)
        sorter = make_online_sorter("naturalmerge")
        sorter.extend(data)
        assert sorter.flush() == sorted(data)

    def test_does_not_mutate_input(self):
        from repro.sorting.natural_merge import natural_merge_sort

        data = [3, 1, 2]
        natural_merge_sort(data)
        assert data == [3, 1, 2]
