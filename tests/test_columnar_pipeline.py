"""Tests for the end-to-end columnar query path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import DisorderedStreamable
from repro.engine.columnar_pipeline import (
    ColumnarPipeline,
    WindowedCountState,
    iter_batches,
)
from repro.workloads import generate_cloudlog, generate_synthetic


class TestIterBatches:
    def test_covers_dataset_in_order(self):
        dataset = generate_synthetic(1000, seed=2)
        batches = list(iter_batches(dataset, 256))
        assert [len(b) for b in batches] == [256, 256, 256, 232]
        rejoined = np.concatenate([b.sync_times for b in batches])
        assert rejoined.tolist() == dataset.timestamps

    def test_invalid_batch_size(self):
        dataset = generate_synthetic(10, seed=2)
        with pytest.raises(ValueError):
            list(iter_batches(dataset, 0))

    def test_incremental_ingress_peak_memory(self):
        """Ingress must columnarize incrementally: the allocation peak
        while streaming batches stays far below the bytes one
        whole-dataset columnarization would pin (the old implementation
        materialized everything up front, doubling peak memory)."""
        import tracemalloc

        dataset = generate_synthetic(50_000, seed=3)
        n_cols = len(dataset.payloads[0])
        full_bytes = (3 + n_cols) * 8 * len(dataset)
        tracemalloc.start()
        try:
            total = 0
            for batch in iter_batches(dataset, 1024):
                total += len(batch)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert total == len(dataset)
        assert peak < full_bytes // 2


class TestWindowedCountState:
    def test_merges_boundary_window_across_feeds(self):
        state = WindowedCountState()
        state.feed(np.array([0, 0, 10]))
        state.feed(np.array([10, 20]))
        assert state.finish() == ([0, 10, 20], [2, 2, 1])

    def test_empty_feeds_ignored(self):
        state = WindowedCountState()
        state.feed(np.empty(0, dtype=np.int64))
        assert state.finish() == ([], [])

    def test_single_window(self):
        state = WindowedCountState()
        state.feed(np.array([5, 5, 5]))
        assert state.finish() == ([5], [3])


class TestColumnarPipeline:
    def test_sorted_output(self):
        dataset = generate_cloudlog(5_000, delay_spread_ms=200, seed=4)
        out = ColumnarPipeline().run(dataset, batch_size=512,
                                     reorder_latency=2_000)
        assert (np.diff(out) >= 0).all()
        assert out.size + ColumnarPipeline().dropped_late >= 0

    def test_matches_row_engine_windowed_count(self):
        dataset = generate_cloudlog(5_000, delay_spread_ms=200, seed=4)
        window = 250
        pipeline = (
            ColumnarPipeline()
            .filter_keys(lambda keys: keys < 50)
            .tumbling_window(window)
        )
        starts, counts = pipeline.run_windowed_count(
            dataset, batch_size=512, reorder_latency=5_000
        )
        row = (
            DisorderedStreamable.from_dataset(
                dataset, punctuation_frequency=512, reorder_latency=5_000
            )
            .where(lambda e: e.key < 50)
            .tumbling_window(window)
            .to_streamable()
            .count()
            .collect()
        )
        assert starts == row.sync_times
        assert counts == row.payloads

    def test_projection_stage(self):
        dataset = generate_synthetic(500, seed=1)
        pipeline = ColumnarPipeline().project([0])
        out = pipeline.run(dataset)
        assert out.tolist() == sorted(dataset.timestamps)

    def test_payload_filter_stage(self):
        dataset = generate_synthetic(2_000, seed=1)
        pipeline = ColumnarPipeline().filter_payload(
            0, lambda col: col % 2 == 0
        )
        out = pipeline.run(dataset)
        expected = sorted(
            t for t, p in zip(dataset.timestamps, dataset.payloads)
            if p[0] % 2 == 0
        )
        assert out.tolist() == expected

    def test_late_drops_counted(self):
        dataset = generate_cloudlog(5_000, seed=4)
        pipeline = ColumnarPipeline()
        out = pipeline.run(dataset, batch_size=256, reorder_latency=10)
        assert pipeline.dropped_late > 0
        assert out.size + pipeline.dropped_late == len(dataset)

    def test_empty_dataset(self):
        from repro.workloads import Dataset

        empty = Dataset("x", [], payloads=[], keys=[])
        assert ColumnarPipeline().run(empty, batch_size=16).size == 0
