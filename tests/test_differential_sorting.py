"""Differential fuzzing: ImpatienceSorter vs a reference model.

The reference model is the specification in miniature: buffer
everything, apply the late policy at insert time against the current
watermark, and answer each punctuation with ``sorted()`` of the ready
prefix.  ImpatienceSorter must match it *per punctuation batch* — not
just in aggregate — across disorder fractions, duplicate densities, all
three late policies, and all three merge strategies, while keeping its
``SorterStats`` counters consistent with what the model observed.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import LateEventError
from repro.core.impatience import ImpatienceSorter
from repro.core.late import LatePolicy
from repro.core.merge import MERGE_STRATEGIES


class ReferenceSorter:
    """Obviously-correct model: a flat buffer plus ``sorted()``."""

    def __init__(self, policy):
        self.policy = policy
        self.pending = []
        self.watermark = None
        self.dropped = 0
        self.adjusted = 0

    def insert(self, value):
        if self.watermark is not None and value <= self.watermark:
            if self.policy is LatePolicy.RAISE:
                raise LateEventError(value, self.watermark)
            if self.policy is LatePolicy.DROP:
                self.dropped += 1
                return
            self.adjusted += 1
            value = self.watermark
        self.pending.append(value)

    def on_punctuation(self, timestamp):
        self.watermark = timestamp
        ready = sorted(v for v in self.pending if v <= timestamp)
        self.pending = [v for v in self.pending if v > timestamp]
        return ready

    def flush(self):
        ready = sorted(self.pending)
        self.pending = []
        return ready


def make_stream(seed, n, disorder_fraction, duplicate_density,
                punctuation_every=37, reorder_latency=25,
                max_displacement=60):
    """A seeded ``("event", v) / ("punct", t)`` element sequence.

    Disorder is injected by displacing a fraction of values backwards
    (bounded by ``max_displacement``); punctuations trail the running
    maximum by ``reorder_latency``, so displacements beyond the latency
    produce genuinely late events — the policy-divergence cases the
    differential test exists to cover.
    """
    rng = random.Random(seed)
    values = []
    for i in range(n):
        values.append(i)
        if rng.random() < duplicate_density:
            values.append(i)
    for _ in range(int(disorder_fraction * len(values))):
        i = rng.randrange(len(values))
        j = max(0, i - rng.randint(1, max_displacement))
        values[i], values[j] = values[j], values[i]

    elements = []
    high, last_punct = None, None
    for count, value in enumerate(values, start=1):
        elements.append(("event", value))
        high = value if high is None else max(high, value)
        if count % punctuation_every == 0:
            timestamp = high - reorder_latency
            if last_punct is None or timestamp > last_punct:
                last_punct = timestamp
                elements.append(("punct", timestamp))
    return elements


def run_differential(elements, policy, merge, use_extend=False):
    """Drive both sorters through the same element sequence.

    Asserts batch-by-batch output equality and returns
    ``(sorter, reference)`` for counter checks.  With ``use_extend`` the
    events between punctuations go in as one batch (the columnar ingress
    path) instead of item-by-item.
    """
    sorter = ImpatienceSorter(late_policy=policy, merge=merge)
    reference = ReferenceSorter(policy)
    batch = []
    for kind, value in elements:
        if kind == "event":
            if use_extend:
                batch.append(value)
            else:
                sorter.insert(value)
                reference.insert(value)
            continue
        if use_extend and batch:
            sorter.extend(batch)
            for item in batch:
                reference.insert(item)
            batch = []
        assert sorter.on_punctuation(value) == \
            reference.on_punctuation(value), \
            f"divergence at punctuation {value}"
    if use_extend and batch:
        sorter.extend(batch)
        for item in batch:
            reference.insert(item)
    assert sorter.flush() == reference.flush()
    return sorter, reference


def assert_stats_consistent(sorter, reference, attempted):
    """SorterStats / LateEventTracker invariants after a full run."""
    assert sorter.late.dropped == reference.dropped
    assert sorter.late.adjusted == reference.adjusted
    # inserted counts only admitted events; dropped ones never enter.
    assert sorter.stats.inserted == attempted - reference.dropped
    # after flush everything admitted has been emitted and nothing is left
    assert sorter.stats.emitted == sorter.stats.inserted
    assert sorter.buffered == 0
    assert sorter.stats.buffered == 0
    assert sorter.stats.max_buffered <= sorter.stats.inserted


MERGES = sorted(MERGE_STRATEGIES)
KEPT_POLICIES = (LatePolicy.DROP, LatePolicy.ADJUST)


@pytest.mark.parametrize("merge", MERGES)
@pytest.mark.parametrize("policy", KEPT_POLICIES)
@pytest.mark.parametrize("disorder", [0.0, 0.05, 0.3])
@pytest.mark.parametrize("duplicates", [0.0, 0.25])
def test_matches_reference(merge, policy, disorder, duplicates):
    seed = len(repr((merge, policy.value, disorder, duplicates)))
    elements = make_stream(
        seed=seed,
        n=400, disorder_fraction=disorder, duplicate_density=duplicates,
    )
    attempted = sum(1 for kind, _ in elements if kind == "event")
    sorter, reference = run_differential(elements, policy, merge)
    assert_stats_consistent(sorter, reference, attempted)


@pytest.mark.parametrize("merge", MERGES)
@pytest.mark.parametrize("policy", KEPT_POLICIES)
def test_matches_reference_batched_ingress(merge, policy):
    elements = make_stream(seed=7, n=400, disorder_fraction=0.2,
                           duplicate_density=0.1)
    attempted = sum(1 for kind, _ in elements if kind == "event")
    sorter, reference = run_differential(elements, policy, merge,
                                         use_extend=True)
    assert_stats_consistent(sorter, reference, attempted)


@pytest.mark.parametrize("merge", MERGES)
def test_raise_policy_matches_reference(merge):
    elements = make_stream(seed=11, n=300, disorder_fraction=0.3,
                           duplicate_density=0.1)
    # The DROP model tells us whether this stream has any late event.
    _, probe = run_differential(elements, LatePolicy.DROP, merge)
    assert probe.dropped > 0, "stream must exercise the late path"
    with pytest.raises(LateEventError):
        run_differential(elements, LatePolicy.RAISE, merge)


@pytest.mark.parametrize("merge", MERGES)
def test_raise_policy_silent_on_ordered_stream(merge):
    elements = make_stream(seed=3, n=300, disorder_fraction=0.0,
                           duplicate_density=0.2)
    sorter, reference = run_differential(elements, LatePolicy.RAISE, merge)
    attempted = sum(1 for kind, _ in elements if kind == "event")
    assert_stats_consistent(sorter, reference, attempted)


def test_unknown_merge_strategy_rejected():
    with pytest.raises(ValueError, match="unknown merge strategy"):
        ImpatienceSorter(merge="bogus")



# -- bounded-memory external sorter ----------------------------------------

#: 1 byte is the pathological floor: every insert overflows the buffer,
#: degenerating to (at worst) one run per spill — the spill machinery's
#: equivalent of a fully disordered stream.
BUDGETS = [1, 64, 512, 8192]


def run_external_differential(elements, policy, budget, use_extend=False):
    """Drive the spilling sorter and the reference model together.

    The external sorter has no merge-strategy knob (its k-way loser-tree
    merge is the only schedule), so the differential axis here is the
    memory budget instead.
    """
    from repro.sorting.external import ExternalImpatienceSorter

    sorter = ExternalImpatienceSorter(budget, late_policy=policy)
    reference = ReferenceSorter(policy)
    try:
        batch = []
        for kind, value in elements:
            if kind == "event":
                if use_extend:
                    batch.append(value)
                else:
                    sorter.insert(value)
                    reference.insert(value)
                continue
            if use_extend and batch:
                sorter.extend(batch)
                for item in batch:
                    reference.insert(item)
                batch = []
            assert sorter.on_punctuation(value) == \
                reference.on_punctuation(value), \
                f"divergence at punctuation {value} (budget {budget})"
        if use_extend and batch:
            sorter.extend(batch)
            for item in batch:
                reference.insert(item)
        assert sorter.flush() == reference.flush()
        assert sorter.spill_doc()["peak_buffered_bytes"] <= budget
    finally:
        sorter.close()
    return sorter, reference


class TestExternalDifferential:
    """The spilling sorter against the same reference model: identical
    per-punctuation batches at every budget, including budgets so small
    that nearly the whole stream lives on disk."""

    @pytest.mark.parametrize("budget", BUDGETS)
    @pytest.mark.parametrize("policy", KEPT_POLICIES)
    @pytest.mark.parametrize("disorder", [0.0, 0.05, 0.3])
    def test_matches_reference(self, budget, policy, disorder):
        seed = len(repr((budget, policy.value, disorder)))
        elements = make_stream(
            seed=seed, n=400, disorder_fraction=disorder,
            duplicate_density=0.25,
        )
        attempted = sum(1 for kind, _ in elements if kind == "event")
        sorter, reference = run_external_differential(
            elements, policy, budget
        )
        assert_stats_consistent(sorter, reference, attempted)

    @pytest.mark.parametrize("budget", BUDGETS)
    @pytest.mark.parametrize("policy", KEPT_POLICIES)
    def test_matches_reference_batched_ingress(self, budget, policy):
        elements = make_stream(seed=7, n=400, disorder_fraction=0.2,
                               duplicate_density=0.1)
        attempted = sum(1 for kind, _ in elements if kind == "event")
        sorter, reference = run_external_differential(
            elements, policy, budget, use_extend=True
        )
        assert_stats_consistent(sorter, reference, attempted)

    @pytest.mark.parametrize("merge", MERGES)
    def test_matches_every_in_memory_merge_strategy(self, merge):
        """Budgeted output equals the in-memory sorter under each merge
        strategy (keyless values make every schedule value-identical)."""
        from repro.sorting.external import ExternalImpatienceSorter

        elements = make_stream(seed=13, n=400, disorder_fraction=0.25,
                               duplicate_density=0.2)
        in_memory = ImpatienceSorter(merge=merge)
        external = ExternalImpatienceSorter(96)
        try:
            for kind, value in elements:
                if kind == "event":
                    in_memory.insert(value)
                    external.insert(value)
                else:
                    assert external.on_punctuation(value) == \
                        in_memory.on_punctuation(value)
            assert external.flush() == in_memory.flush()
            assert external.spill_doc()["runs_spilled"] > 0
        finally:
            external.close()

    def test_raise_policy_matches_reference(self):
        elements = make_stream(seed=11, n=300, disorder_fraction=0.3,
                               duplicate_density=0.1)
        _, probe = run_external_differential(
            elements, LatePolicy.DROP, 64
        )
        assert probe.dropped > 0, "stream must exercise the late path"
        with pytest.raises(LateEventError):
            run_external_differential(elements, LatePolicy.RAISE, 64)

    @given(
        values=st.lists(st.integers(0, 120), min_size=1, max_size=120),
        punct_mask=st.lists(st.booleans(), min_size=1, max_size=120),
        latency=st.integers(0, 40),
        policy=st.sampled_from(KEPT_POLICIES),
        budget=st.integers(1, 2048),
    )
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_interleavings_and_budgets(self, values, punct_mask,
                                                 latency, policy, budget):
        elements = []
        high, last_punct = None, None
        for i, value in enumerate(values):
            elements.append(("event", value))
            high = value if high is None else max(high, value)
            if punct_mask[i % len(punct_mask)]:
                timestamp = high - latency
                if last_punct is None or timestamp > last_punct:
                    last_punct = timestamp
                    elements.append(("punct", timestamp))
        sorter, reference = run_external_differential(
            elements, policy, budget
        )
        assert_stats_consistent(sorter, reference, len(values))


class TestStringKeyDifferential:
    """String keys through the same differential harness: the integer
    streams are mapped through an order-preserving ``int -> bytes``
    rendering (fixed-width service names), so the reference model's
    arithmetic-free clauses — buffering, late policies, ``sorted()`` —
    apply verbatim to bytes and every merge strategy (including the
    OVC-annotated ``"ovc"`` pool) must match it batch by batch."""

    @staticmethod
    def _render(value):
        # Fixed-width digits keep bytes order == int order, and the
        # long shared prefix is the regime OVC codes exist for.
        return b"prod.svc.zone-0.host-%06d" % value

    def _string_elements(self, elements):
        return [
            (kind, self._render(value)) for kind, value in elements
        ]

    @pytest.mark.parametrize("merge", MERGES)
    @pytest.mark.parametrize("policy", KEPT_POLICIES)
    @pytest.mark.parametrize("disorder", [0.0, 0.3])
    def test_matches_reference(self, merge, policy, disorder):
        seed = len(repr((merge, policy.value, disorder)))
        elements = self._string_elements(make_stream(
            seed=seed, n=400, disorder_fraction=disorder,
            duplicate_density=0.25,
        ))
        attempted = sum(1 for kind, _ in elements if kind == "event")
        sorter, reference = run_differential(elements, policy, merge)
        assert_stats_consistent(sorter, reference, attempted)

    @pytest.mark.parametrize("merge", MERGES)
    def test_matches_reference_batched_ingress(self, merge):
        elements = self._string_elements(make_stream(
            seed=7, n=400, disorder_fraction=0.2, duplicate_density=0.1,
        ))
        attempted = sum(1 for kind, _ in elements if kind == "event")
        sorter, reference = run_differential(
            elements, LatePolicy.DROP, merge, use_extend=True
        )
        assert_stats_consistent(sorter, reference, attempted)

    def test_dictionary_codes_reproduce_byte_order(self):
        """Sorting dictionary codes (the engine's int path) and decoding
        equals sorting the raw bytes: the order-preserving contract the
        whole string-key design rests on."""
        from repro.core.strings import StringDictionary

        elements = make_stream(seed=19, n=400, disorder_fraction=0.3,
                               duplicate_density=0.3)
        values = [self._render(v) for kind, v in elements
                  if kind == "event"]
        d = StringDictionary(values)
        by_code = [d.decode(c) for c in sorted(d.encode(values))]
        assert by_code == sorted(values)

    @pytest.mark.parametrize("budget", [256, 16 * 1024])
    def test_budgeted_string_columns_byte_identical(self, budget):
        """The columnar sorter carrying a string column under a hard
        budget (spilled CRC-framed string blocks) reproduces the
        unbudgeted output byte for byte."""
        import numpy as np

        from repro.core.columnar import ColumnarImpatienceSorter
        from repro.core.strings import StringColumn
        from repro.sorting.external import ExternalColumnarSorter

        elements = make_stream(seed=23, n=600, disorder_fraction=0.3,
                               duplicate_density=0.2)
        times = np.asarray(
            [v for kind, v in elements if kind == "event"],
            dtype=np.int64,
        )
        column = StringColumn.from_values(
            [self._render(int(v)) for v in times]
        )
        puncts = sorted({v for kind, v in elements if kind == "punct"})

        def drive(sorter):
            outputs = []
            step = max(len(times) // (len(puncts) + 1), 1)
            cursor = 0
            for i, start in enumerate(range(0, len(times), step)):
                stop = min(start + step, len(times))
                sorter.insert_batch(
                    times[start:stop],
                    string_columns=(column.slice(start, stop),),
                )
                if cursor < len(puncts):
                    outputs.append(sorter.on_punctuation(puncts[cursor]))
                    cursor += 1
            outputs.append(sorter.flush())
            return outputs

        baseline = drive(ColumnarImpatienceSorter(string_columns=1))
        external = ExternalColumnarSorter(budget, string_columns=1)
        try:
            got = drive(external)
            spill = external.spill_doc()
        finally:
            external.close()
        assert len(got) == len(baseline)
        for g, w in zip(got, baseline):
            assert np.array_equal(g[0], w[0])
            for gc, wc in zip(g[2], w[2]):
                assert gc.arena == wc.arena
                assert np.array_equal(gc.offsets, wc.offsets)
        assert spill["peak_buffered_bytes"] <= budget
        if budget <= 256:
            assert spill["runs_spilled"] > 0


class TestPropertyDifferential:
    """Hypothesis-driven version: arbitrary interleavings, not just the
    generator's punctuate-every-k schedule."""

    @given(
        values=st.lists(st.integers(0, 120), min_size=1, max_size=120),
        punct_mask=st.lists(st.booleans(), min_size=1, max_size=120),
        latency=st.integers(0, 40),
        policy=st.sampled_from(KEPT_POLICIES),
        merge=st.sampled_from(MERGES),
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_interleavings(self, values, punct_mask, latency,
                                     policy, merge):
        elements = []
        high, last_punct = None, None
        for i, value in enumerate(values):
            elements.append(("event", value))
            high = value if high is None else max(high, value)
            if punct_mask[i % len(punct_mask)]:
                timestamp = high - latency
                if last_punct is None or timestamp > last_punct:
                    last_punct = timestamp
                    elements.append(("punct", timestamp))
        sorter, reference = run_differential(elements, policy, merge)
        assert_stats_consistent(sorter, reference, len(values))
