"""Tests for the k-slack reordering baselines (repro.sorting.kslack)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.late import LatePolicy
from repro.sorting.kslack import KSlackTime, KSlackTuples


class TestKSlackTime:
    def test_holds_until_watermark_advances_by_k(self):
        slack = KSlackTime(k=10)
        slack.insert(5)
        assert slack.drain_ready() == []   # watermark 5, bound -5
        slack.insert(16)                   # watermark 16, bound 6
        assert slack.drain_ready() == [5]
        assert slack.buffered == 1

    def test_reorders_within_slack(self):
        slack = KSlackTime(k=10)
        for t in (7, 3, 9, 5, 25):
            slack.insert(t)
        assert slack.drain_ready() == [3, 5, 7, 9]

    def test_event_beyond_slack_is_late(self):
        slack = KSlackTime(k=5, late_policy=LatePolicy.DROP)
        slack.insert(100)
        slack.drain_ready()  # emits nothing; bound 95
        slack.insert(200)
        assert slack.drain_ready() == [100]
        assert slack.insert(90) is False  # 90 <= emitted_up_to 100
        assert slack.late.dropped == 1

    def test_punctuation_advances_clock(self):
        slack = KSlackTime(k=10)
        slack.insert(5)
        assert slack.on_punctuation(50) == [5]

    def test_flush(self):
        slack = KSlackTime(k=1000)
        slack.extend([3, 1, 2])
        assert slack.flush() == [1, 2, 3]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KSlackTime(-1)

    @given(st.lists(st.integers(0, 500)), st.integers(0, 100))
    @settings(max_examples=80, deadline=None)
    def test_output_always_sorted(self, data, k):
        slack = KSlackTime(k)
        out = []
        for value in data:
            slack.insert(value)
            out.extend(slack.drain_ready())
        out.extend(slack.flush())
        assert out == sorted(out)
        assert len(out) + slack.late.dropped == len(data)

    @given(st.lists(st.integers(0, 10_000)))
    @settings(max_examples=50, deadline=None)
    def test_infinite_slack_loses_nothing(self, data):
        slack = KSlackTime(k=10_001)
        slack.extend(data)
        assert slack.flush() == sorted(data)
        assert slack.late.dropped == 0


class TestKSlackTuples:
    def test_holds_k_tuples(self):
        slack = KSlackTuples(k=2)
        slack.insert(5)
        slack.insert(3)
        assert slack.drain_ready() == []
        slack.insert(9)
        assert slack.drain_ready() == [3]

    def test_reorders_within_k_tuples(self):
        slack = KSlackTuples(k=3)
        out = []
        for t in (4, 1, 3, 2, 9, 8, 7, 6):
            slack.insert(t)
            out.extend(slack.drain_ready())
        out.extend(slack.flush())
        assert out == [1, 2, 3, 4, 6, 7, 8, 9]

    def test_zero_slack_passthrough_with_drops(self):
        slack = KSlackTuples(k=0, late_policy=LatePolicy.DROP)
        out = []
        for t in (5, 3, 8):
            slack.insert(t)
            out.extend(slack.drain_ready())
        assert out == [5, 8]
        assert slack.late.dropped == 1

    @given(st.lists(st.integers(0, 500)), st.integers(0, 50))
    @settings(max_examples=80, deadline=None)
    def test_output_always_sorted(self, data, k):
        slack = KSlackTuples(k)
        out = []
        for value in data:
            slack.insert(value)
            out.extend(slack.drain_ready())
        out.extend(slack.flush())
        assert out == sorted(out)
        assert len(out) + slack.late.dropped == len(data)

    def test_uncontrolled_latency(self):
        """The paper's §VII critique: with tuple-slack, a quiet stream
        never releases — latency is unbounded until more data arrives."""
        slack = KSlackTuples(k=100)
        slack.insert(1)
        assert slack.drain_ready() == []
        assert slack.on_punctuation(10_000) == []  # punctuation can't help
        assert slack.buffered == 1
