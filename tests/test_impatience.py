"""Tests for Impatience sort (repro.core.impatience)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import LateEventError, PunctuationOrderError
from repro.core.impatience import ImpatienceSorter
from repro.core.late import LatePolicy
from repro.core.patience import PatienceSorter


class TestPaperExample:
    """The worked example of Sections III-A and III-D (Figures 3/4)."""

    def test_incremental_outputs(self):
        sorter = ImpatienceSorter()
        sorter.extend([2, 6, 5, 1])
        assert sorter.on_punctuation(2) == [1, 2]
        sorter.extend([4, 3, 7, 8])
        assert sorter.on_punctuation(4) == [3, 4]
        assert sorter.flush() == [5, 6, 7, 8]

    def test_run_cleanup_matches_figure4(self):
        """After punctuation 2, the run holding only event 1 disappears;
        Impatience keeps 2 live runs where Patience holds 4."""
        sorter = ImpatienceSorter(speculative=False)
        sorter.extend([2, 6, 5, 1])
        sorter.on_punctuation(2)
        assert sorter.run_count == 2
        sorter.extend([4, 3, 7, 8])
        sorter.on_punctuation(4)
        assert sorter.run_count == 2

        patience = PatienceSorter(speculative=False)
        patience.extend([2, 6, 5, 1, 4, 3, 7, 8])
        assert patience.run_count == 4


class TestIncrementalCorrectness:
    def test_emits_exactly_the_due_prefix(self):
        sorter = ImpatienceSorter()
        sorter.extend([10, 3, 7, 1])
        out = sorter.on_punctuation(5)
        assert out == [1, 3]
        assert sorter.buffered == 2

    def test_punctuation_with_nothing_due(self):
        sorter = ImpatienceSorter()
        sorter.extend([10, 20])
        assert sorter.on_punctuation(5) == []

    def test_punctuation_on_empty_sorter(self):
        sorter = ImpatienceSorter()
        assert sorter.on_punctuation(100) == []
        assert sorter.flush() == []

    def test_equal_timestamps_all_emitted(self):
        sorter = ImpatienceSorter()
        sorter.extend([5, 5, 5, 6])
        assert sorter.on_punctuation(5) == [5, 5, 5]

    def test_key_function(self):
        sorter = ImpatienceSorter(key=lambda pair: pair[0])
        sorter.extend([(3, "c"), (1, "a"), (2, "b")])
        assert sorter.on_punctuation(2) == [(1, "a"), (2, "b")]
        assert sorter.flush() == [(3, "c")]

    def test_regressing_punctuation_raises(self):
        sorter = ImpatienceSorter()
        sorter.on_punctuation(10)
        with pytest.raises(PunctuationOrderError):
            sorter.on_punctuation(9)

    def test_repeated_equal_punctuation_is_noop(self):
        sorter = ImpatienceSorter()
        sorter.extend([1, 2, 3])
        assert sorter.on_punctuation(2) == [1, 2]
        assert sorter.on_punctuation(2) == []

    @given(
        st.lists(st.integers(0, 1000), max_size=400),
        st.integers(1, 50),
    )
    @settings(max_examples=100, deadline=None)
    def test_concatenated_outputs_equal_sorted_input(self, data, step):
        """Whatever the punctuation cadence, the concatenation of all
        incremental outputs plus the flush is the fully sorted input
        (no drops possible: punctuations trail every next insert)."""
        sorter = ImpatienceSorter(late_policy=LatePolicy.RAISE)
        out = []
        watermark = -1
        for i, value in enumerate(data):
            sorter.insert(value)
            if i % step == step - 1:
                # Safe punctuation: strictly below everything not yet seen.
                pending_min = min(data[i + 1:], default=None)
                if pending_min is not None and pending_min - 1 > watermark:
                    watermark = pending_min - 1
                    out.extend(sorter.on_punctuation(watermark))
        out.extend(sorter.flush())
        assert out == sorted(data)

    @given(st.lists(st.integers(0, 300), max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_hm_and_srs_do_not_change_output(self, data):
        outs = []
        for hm in (True, False):
            for srs in (True, False):
                sorter = ImpatienceSorter(huffman_merge=hm, speculative=srs)
                sorter.extend(data)
                out = sorter.on_punctuation(150)
                out += sorter.flush()
                outs.append(out)
        assert all(out == outs[0] for out in outs)


class TestPlacement:
    """The C-bisect placement fast path must be observationally identical
    to the pure-Python binary search it replaces — same outputs, same
    run structure, same search accounting, same Proposition bounds."""

    @given(st.lists(st.integers(0, 300), max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_bisect_matches_binary_placement(self, data):
        results = []
        for placement in ("bisect", "binary"):
            sorter = ImpatienceSorter(placement=placement)
            sorter.extend(data)
            out = sorter.on_punctuation(150)
            out += sorter.flush()
            results.append((
                out,
                sorter.stats.binary_searches,
                sorter.stats.srs_hits,
                sorter.stats.runs_created,
            ))
        assert results[0] == results[1]

    @given(st.lists(st.integers(0, 8), min_size=1, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_propositions_hold_under_bisect(self, data):
        """Run-count bounds of Propositions 3.2/3.3 survive the new
        placement search (3.1 is covered by test_patience.py, whose
        sorter also defaults to bisect placement)."""
        from repro.metrics.disorder import count_natural_runs

        sorter = ImpatienceSorter(placement="bisect")
        sorter.extend(data)
        k = sorter.run_count
        assert k <= len(set(data))
        assert k <= count_natural_runs(data)
        sorter._pool.check_invariants()

    def test_non_negatable_keys_demote_gracefully(self):
        data = [("b", 2), ("a", 1), ("d", 3), ("c", 0)]
        sorter = ImpatienceSorter(key=lambda p: p[0], placement="bisect")
        sorter.extend(data)
        assert sorter.flush() == sorted(data, key=lambda p: p[0])
        assert sorter._pool.neg_tails is None

    def test_rejects_unknown_placement(self):
        with pytest.raises(ValueError, match="placement"):
            ImpatienceSorter(placement="linear")


class TestLatePolicies:
    def test_drop_policy_counts(self):
        sorter = ImpatienceSorter(late_policy=LatePolicy.DROP)
        sorter.extend([5, 10])
        sorter.on_punctuation(7)
        assert sorter.insert(6) is False
        assert sorter.late.dropped == 1
        assert sorter.flush() == [10]

    def test_adjust_policy_moves_to_watermark(self):
        """Bare timestamps: "adjusted on timestamps" (Section I-A) means
        the late value itself becomes the watermark."""
        sorter = ImpatienceSorter(late_policy=LatePolicy.ADJUST)
        sorter.extend([5, 10])
        sorter.on_punctuation(7)
        assert sorter.insert(6) is True
        assert sorter.late.adjusted == 1
        assert sorter.flush() == [7, 10]

    def test_adjust_policy_keyed_preserves_item(self):
        """With a key function, the item keeps its payload but sorts at
        the adjusted (watermark) position."""
        sorter = ImpatienceSorter(
            key=lambda p: p[0], late_policy=LatePolicy.ADJUST
        )
        sorter.extend([(5, "a"), (10, "b")])
        sorter.on_punctuation(7)
        assert sorter.insert((6, "late")) is True
        assert sorter.flush() == [(6, "late"), (10, "b")]

    def test_raise_policy(self):
        sorter = ImpatienceSorter(late_policy=LatePolicy.RAISE)
        sorter.on_punctuation(7)
        with pytest.raises(LateEventError):
            sorter.insert(3)

    def test_event_exactly_at_watermark_is_late(self):
        sorter = ImpatienceSorter(late_policy=LatePolicy.DROP)
        sorter.on_punctuation(7)
        assert sorter.insert(7) is False

    def test_no_late_handling_before_first_punctuation(self):
        sorter = ImpatienceSorter(late_policy=LatePolicy.RAISE)
        sorter.extend([5, 1, -3])  # all fine: no watermark yet
        assert sorter.flush() == [-3, 1, 5]


class TestRunHealing:
    def test_burst_damage_heals_after_punctuations(self):
        """Figure 5's story: a burst of severely-late events inflates the
        run count; subsequent punctuations clean the extra runs out."""
        sorter = ImpatienceSorter()
        for t in range(0, 1000):
            sorter.insert(t)
        # Burst: 50 severely late events, descending — one run each.
        for t in range(600, 550, -1):
            sorter.insert(t)
        inflated = sorter.run_count
        assert inflated > 25
        sorter.on_punctuation(999)
        # Everything <= 999 left the pool; only the fresh tail remains.
        for t in range(1000, 1100):
            sorter.insert(t)
        assert sorter.run_count <= 2
        assert sorter.flush() == list(range(1000, 1100))

    def test_stats_history_samples_at_punctuations(self):
        sorter = ImpatienceSorter()
        sorter.extend([3, 1, 2])
        sorter.on_punctuation(1)
        sorter.on_punctuation(2)
        sorter.flush()
        assert len(sorter.stats.run_count_history) == 3
        assert sorter.stats.run_count_history[-1] == (3, 0)


class TestAccounting:
    def test_buffered_and_watermark(self):
        sorter = ImpatienceSorter()
        assert sorter.watermark == float("-inf")
        sorter.extend([4, 2, 9])
        assert sorter.buffered == 3
        sorter.on_punctuation(4)
        assert sorter.buffered == 1
        assert sorter.watermark == 4

    def test_max_buffered_high_water_mark(self):
        sorter = ImpatienceSorter()
        sorter.extend(range(100, 0, -1))
        sorter.on_punctuation(100)
        assert sorter.stats.max_buffered == 100

    def test_repr_smoke(self):
        sorter = ImpatienceSorter()
        sorter.insert(1)
        assert "runs=1" in repr(sorter)
