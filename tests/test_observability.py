"""Tests for the pipeline observability layer (repro.observability).

Covers the three tentpole pieces — per-operator metrics hooks,
punctuation tracing, and the structured snapshot export — plus the
properties the layer must never break: query results are unchanged by
instrumentation, and an un-instrumented pipeline carries no hooks at
all (zero cost when disabled).
"""

from __future__ import annotations

import json

import pytest

from repro.engine import DisorderedStreamable, Event, Punctuation, Streamable
from repro.engine.graph import Pipeline, QueryBuildError
from repro.engine.operators.base import Operator
from repro.observability import (
    MetricsRegistry,
    OperatorMetrics,
    PipelineSnapshot,
    PunctuationTracer,
    SCHEMA,
    latency_quantiles,
)


def elements_fixture(n=100, window=10, punct_every=25):
    out = []
    for t in range(n):
        out.append(Event(t, t + 1, key=t % 7))
        if t % punct_every == punct_every - 1:
            out.append(Punctuation(t - window))
    return out


def build_query(elements):
    return (
        Streamable.from_elements(elements)
        .where(lambda e: e.key < 5)
        .tumbling_window(10)
        .count()
    )


class TestCounters:
    def test_per_operator_counts(self):
        elements = elements_fixture()
        events = sum(1 for e in elements if isinstance(e, Event))
        puncts = len(elements) - events
        kept = sum(
            1 for e in elements if isinstance(e, Event) and e.key < 5
        )

        registry = MetricsRegistry()
        build_query(elements).collect(metrics=registry)
        snapshot = registry.snapshot()

        source = snapshot.operator("source")
        assert source["events"]["in"] == events
        assert source["events"]["out"] == events
        assert source["punctuations"]["in"] == puncts
        where = snapshot.operator("where")
        assert where["events"]["in"] == events
        assert where["events"]["out"] == kept
        window = snapshot.operator("tumbling_window")
        assert window["events"]["in"] == kept
        # every operator saw exactly one flush
        assert all(op["flushes"] == 1 for op in snapshot.operators)
        # busy-time accounting is present and non-negative
        assert all(op["busy_s"]["total"] >= 0.0 for op in snapshot.operators)

    def test_labels_are_unique_per_instance(self):
        elements = elements_fixture()
        stream = (
            Streamable.from_elements(elements)
            .where(lambda e: e.key < 6)
            .where(lambda e: e.key < 5)
            .count()
        )
        registry = MetricsRegistry()
        stream.collect(metrics=registry)
        names = [op["name"] for op in registry.snapshot().operators]
        assert len(names) == len(set(names))
        assert "where" in names and "where#2" in names

    def test_results_identical_with_and_without_metrics(self):
        elements = elements_fixture()
        bare = build_query(elements).collect()
        instrumented = build_query(elements).collect(
            metrics=MetricsRegistry()
        )
        assert [(e.sync_time, e.payload) for e in bare.events] == \
            [(e.sync_time, e.payload) for e in instrumented.events]
        assert bare.punctuations == instrumented.punctuations


class TestZeroCostWhenDisabled:
    SIGNALS = ("on_event", "on_punctuation", "on_flush",
               "emit_event", "emit_punctuation")

    def test_fresh_operator_has_no_instance_hooks(self):
        op = Operator()
        assert not any(s in op.__dict__ for s in self.SIGNALS)

    def test_uninstrumented_pipeline_has_no_instance_hooks(self):
        elements = elements_fixture()
        stream = build_query(elements)
        pipeline = Pipeline([stream.node])
        assert all(
            not any(s in op.__dict__ for s in self.SIGNALS)
            for _, op in pipeline.operator_labels()
        )

    def test_attach_installs_and_detach_removes(self):
        elements = elements_fixture()
        stream = build_query(elements)
        pipeline = Pipeline([stream.node])
        registry = MetricsRegistry().attach(pipeline)
        ops = [op for _, op in pipeline.operator_labels()]
        assert all("on_event" in op.__dict__ for op in ops)
        registry.detach()
        assert all(
            not any(s in op.__dict__ for s in self.SIGNALS)
            for op in ops
        )

    def test_detached_registry_stops_counting(self):
        elements = elements_fixture()
        registry = MetricsRegistry()
        stream = build_query(elements)
        pipeline = Pipeline([stream.node])
        registry.attach(pipeline)
        registry.detach()
        pipeline.run(elements)
        assert all(
            m.events_in == 0 for m in registry.operators.values()
        )

    def test_instrument_skips_missing_signals(self):
        op = Operator()
        originals = op.instrument(
            {"no_such_method": lambda bound: bound, "on_flush": lambda b: b}
        )
        assert "no_such_method" not in originals
        op.uninstrument(originals)
        assert "on_flush" not in op.__dict__


class TestPunctuationTracing:
    def test_trace_ids_stamped_on_ingress_punctuations(self):
        elements = elements_fixture()
        registry = MetricsRegistry()
        build_query(elements).collect(metrics=registry)
        stamped = [
            e.trace_id for e in elements if isinstance(e, Punctuation)
        ]
        assert all(tid is not None for tid in stamped)
        assert stamped == sorted(set(stamped))  # unique, in order

    def test_one_trace_per_ingress_punctuation(self):
        elements = elements_fixture()
        puncts = sum(1 for e in elements if isinstance(e, Punctuation))
        registry = MetricsRegistry()
        build_query(elements).collect(metrics=registry)
        tracer = registry.tracer
        assert len(tracer.completed) == puncts
        assert len(tracer.end_to_end) == puncts
        assert all(total >= 0.0 for total in tracer.end_to_end)
        assert tracer.active_id is None  # every trace closed

    def test_spans_cover_every_operator_on_the_punctuation_path(self):
        elements = elements_fixture()
        registry = MetricsRegistry()
        build_query(elements).collect(metrics=registry)
        summary = registry.tracer.summary()
        for label in ("source", "where", "tumbling_window", "aggregate"):
            assert label in summary["per_operator_s"], label
        assert summary["traces"] == summary["end_to_end_s"]["count"]

    def test_tracing_can_be_disabled(self):
        elements = elements_fixture()
        registry = MetricsRegistry(trace=False)
        build_query(elements).collect(metrics=registry)
        snapshot = registry.snapshot()
        assert snapshot.punctuation is None
        assert snapshot.operator("source")["events"]["in"] > 0

    def test_tracer_standalone_semantics(self):
        tracer = PunctuationTracer()
        p = Punctuation(10)
        assert tracer.begin(p) is True
        assert p.trace_id == 0
        assert tracer.begin(Punctuation(11)) is False  # re-entrant
        derived = Punctuation(9)
        tracer.stamp(derived)
        assert derived.trace_id == 0
        tracer.span("sort", 0.25)
        tracer.finish(1.0)
        assert tracer.completed == [(0, 10, 1.0)]
        assert tracer.spans == {"sort": [0.25]}
        # outside a trace: spans are dropped, stamps are no-ops
        tracer.span("sort", 0.5)
        late = Punctuation(12)
        tracer.stamp(late)
        assert late.trace_id is None
        assert tracer.spans == {"sort": [0.25]}


class TestOccupancyAndSorterStats:
    def _disordered_query(self, registry):
        times = [5, 1, 9, 3, 12, 7, 20, 15, 11, 25, 18, 30]
        stream = (
            DisorderedStreamable.from_events(
                [Event(t) for t in times],
                punctuation_frequency=4, reorder_latency=6,
            )
            .to_streamable()
            .count()
        )
        return stream.collect(metrics=registry)

    def test_occupancy_sampled_at_punctuations(self):
        registry = MetricsRegistry()
        self._disordered_query(registry)
        snapshot = registry.snapshot()
        sort = snapshot.operator("sort")
        assert sort["occupancy"]["samples"] > 0
        assert sort["occupancy"]["peak"] > 0
        assert snapshot.totals["peak_buffered_events"] > 0
        assert registry.occupancy_timeline  # pipeline-wide series
        assert registry.occupancy_peak == max(
            buffered for _, buffered in registry.occupancy_timeline
        )

    def test_timeline_can_be_disabled(self):
        registry = MetricsRegistry(timeline=False)
        self._disordered_query(registry)
        snapshot = registry.snapshot()
        sort = snapshot.operator("sort")
        assert sort["occupancy"]["timeline"] == []
        assert sort["occupancy"]["peak"] > 0
        assert registry.occupancy_timeline == []
        assert registry.occupancy_peak > 0

    def test_sorter_stats_and_late_policy_merged_into_snapshot(self):
        registry = MetricsRegistry()
        self._disordered_query(registry)
        sort = registry.snapshot().operator("sort")
        assert sort["sorter"]["inserted"] > 0
        assert sort["sorter"]["emitted"] == sort["sorter"]["inserted"]
        assert sort["late"]["policy"] == "drop"
        assert sort["dropped"] == sort["late"]["dropped"]


class TestMultiInputOperators:
    def test_union_ports_counted(self):
        left = [Event(1), Punctuation(1), Event(3)]
        right = [Event(2), Punctuation(2), Event(4)]
        elements = left + right  # one source feeds both union inputs
        stream = Streamable.from_elements(elements)
        unioned = stream.where(lambda e: e.sync_time % 2 == 1).union(
            stream.where(lambda e: e.sync_time % 2 == 0)
        )
        registry = MetricsRegistry()
        result = unioned.collect(metrics=registry)
        union = registry.snapshot().operator("union")
        events = sum(1 for e in elements if isinstance(e, Event))
        assert union["events"]["in"] == events
        assert result.completed

    def test_router_out_ports_instrumented(self):
        from repro.engine.operators.aggregates import Count
        from repro.engine.sharded import shard_streamable

        elements = elements_fixture(punct_every=20)
        registry = MetricsRegistry()
        shard_streamable(
            Streamable.from_elements(elements),
            lambda s: s.group_aggregate(Count()),
            3,
        ).collect(metrics=registry)
        snapshot = registry.snapshot()
        events = sum(1 for e in elements if isinstance(e, Event))
        ports = [snapshot.operator(f"shard[3]/out[{i}]") for i in range(3)]
        assert sum(p["events"]["in"] for p in ports) == events


class TestSnapshotExport:
    def _snapshot(self):
        registry = MetricsRegistry()
        build_query(elements_fixture()).collect(metrics=registry)
        return registry.snapshot(meta={"dataset": "fixture", "n": 100})

    def test_schema_and_meta(self):
        doc = self._snapshot().as_dict()
        assert doc["schema"] == SCHEMA
        assert doc["meta"] == {"dataset": "fixture", "n": 100}

    def test_totals_are_consistent(self):
        snapshot = self._snapshot()
        assert snapshot.totals["operators"] == len(snapshot.operators)
        assert snapshot.totals["events_in"] == sum(
            op["events"]["in"] for op in snapshot.operators
        )

    def test_json_round_trip(self, tmp_path):
        snapshot = self._snapshot()
        decoded = json.loads(snapshot.to_json())
        assert decoded["schema"] == SCHEMA
        assert decoded["punctuation"]["traces"] == \
            snapshot.punctuation["traces"]
        path = tmp_path / "metrics.json"
        snapshot.save(path)
        assert json.loads(path.read_text())["totals"] == snapshot.totals

    def test_unknown_operator_raises(self):
        with pytest.raises(KeyError):
            self._snapshot().operator("nonexistent")

    def test_infinity_serialized(self):
        snapshot = PipelineSnapshot(
            [OperatorMetrics("op").as_dict()],
            meta={"watermark": float("-inf")},
        )
        assert json.loads(snapshot.to_json())["meta"]["watermark"] == \
            float("-inf")


class TestFrameworkIntegration:
    def test_streamables_run_with_metrics(self):
        times = [3, 1, 7, 5, 12, 9, 20, 14, 11, 30, 25, 22]
        streams = DisorderedStreamable.from_events(
            [Event(t) for t in times],
            punctuation_frequency=4, reorder_latency=8,
        ).to_streamables([0, 8])
        registry = MetricsRegistry()
        result = streams.run(metrics=registry)
        assert result.metrics is registry
        snapshot = registry.snapshot(memory=result.memory)
        names = {op["name"] for op in snapshot.operators}
        assert {"partition", "sort[0]", "sort[1]"} <= names
        assert snapshot.as_dict()["memory"] is not None
        assert snapshot.as_dict()["memory"]["peak_events"] >= 0

    def test_label_of_unknown_operator_rejected(self):
        stream = build_query(elements_fixture())
        pipeline = Pipeline([stream.node])
        with pytest.raises(QueryBuildError):
            pipeline.label_of(Operator())


class TestLatencyQuantiles:
    def test_empty(self):
        q = latency_quantiles([])
        assert q["count"] == 0
        assert q["p50"] == 0.0

    def test_order_statistics(self):
        q = latency_quantiles(list(range(1, 101)))
        assert q["count"] == 100
        assert q["max"] == 100
        assert q["p50"] <= q["p90"] <= q["p99"] <= q["max"]
