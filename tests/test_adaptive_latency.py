"""Tests for the adaptive reorder-latency policy."""

from __future__ import annotations

import random

import pytest

from repro.core import ImpatienceSorter
from repro.framework.adaptive_latency import AdaptiveLatencyPolicy


def drive(policy, timestamps, sorter=None):
    """Feed a stream through the policy (and optionally a sorter)."""
    punctuations = []
    for t in timestamps:
        if sorter is not None:
            sorter.insert(t)
        ts = policy.observe(t)
        if ts is not None:
            punctuations.append(ts)
            if sorter is not None:
                sorter.on_punctuation(ts)
    return punctuations


def jittered_stream(n, jitter, seed=0, start=0):
    rnd = random.Random(seed)
    return [
        start + i + (-rnd.randrange(jitter + 1)) for i in range(n)
    ]


class TestValidation:
    def test_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveLatencyPolicy(0)
        with pytest.raises(ValueError):
            AdaptiveLatencyPolicy(10, coverage=0)
        with pytest.raises(ValueError):
            AdaptiveLatencyPolicy(10, smoothing=0)
        with pytest.raises(ValueError):
            AdaptiveLatencyPolicy(10, reservoir_size=0)


class TestLearning:
    def test_converges_to_lateness_quantile(self):
        policy = AdaptiveLatencyPolicy(frequency=100, coverage=1.0,
                                       smoothing=1.0)
        drive(policy, jittered_stream(5_000, jitter=40, seed=1))
        # Max lateness is ~40; the learned latency should be close.
        assert 30 <= policy.latency <= 45

    def test_sorted_stream_learns_zero(self):
        policy = AdaptiveLatencyPolicy(frequency=50, coverage=0.99,
                                       initial_latency=500)
        drive(policy, list(range(2_000)))
        assert policy.latency < 20

    def test_adapts_to_regime_change(self):
        policy = AdaptiveLatencyPolicy(frequency=100, coverage=0.95,
                                       smoothing=0.8, reservoir_size=512)
        drive(policy, jittered_stream(3_000, jitter=5, seed=2))
        calm = policy.latency
        drive(policy, jittered_stream(6_000, jitter=200, seed=3,
                                      start=3_000))
        stormy = policy.latency
        assert stormy > calm * 3

    def test_punctuations_monotone(self):
        policy = AdaptiveLatencyPolicy(frequency=10, coverage=0.9,
                                       smoothing=1.0)
        puncts = drive(policy, jittered_stream(2_000, jitter=100, seed=4))
        assert puncts == sorted(puncts)
        assert len(puncts) > 0

    def test_clamping(self):
        policy = AdaptiveLatencyPolicy(frequency=50, coverage=1.0,
                                       smoothing=1.0, min_latency=10,
                                       max_latency=25)
        drive(policy, jittered_stream(2_000, jitter=500, seed=5))
        assert policy.latency == 25
        policy2 = AdaptiveLatencyPolicy(frequency=50, min_latency=10)
        drive(policy2, list(range(500)))
        assert policy2.latency == 10


class TestEndToEnd:
    def test_achieves_target_completeness(self):
        """Driving a sorter with the adaptive policy keeps drops near the
        configured coverage target without any manual tuning."""
        from repro.workloads import generate_cloudlog

        dataset = generate_cloudlog(30_000, seed=8)
        policy = AdaptiveLatencyPolicy(frequency=200, coverage=0.97,
                                       smoothing=0.6,
                                       initial_latency=1_000)
        sorter = ImpatienceSorter()
        drive(policy, dataset.timestamps, sorter=sorter)
        sorter.flush()
        kept = 1 - sorter.late.dropped / len(dataset)
        assert kept >= 0.90

    def test_beats_badly_tuned_static_latency(self):
        """The point of adaptation: a static latency tuned for the calm
        regime loses far more once the storm starts."""
        from repro.engine.punctuation import PunctuationPolicy

        calm = jittered_stream(3_000, jitter=5, seed=6)
        storm = jittered_stream(9_000, jitter=400, seed=7, start=3_000)
        stream = calm + storm

        def run(policy):
            sorter = ImpatienceSorter()
            drive(policy, stream, sorter=sorter)
            sorter.flush()
            return 1 - sorter.late.dropped / len(stream)

        static_kept = run(PunctuationPolicy(frequency=100,
                                            reorder_latency=10))
        adaptive_kept = run(AdaptiveLatencyPolicy(
            frequency=100, coverage=0.99, smoothing=0.8,
            initial_latency=10,
        ))
        assert adaptive_kept > static_kept
