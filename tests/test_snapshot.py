"""Tests for snapshot aggregation (repro.engine.operators.snapshot)."""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Streamable
from repro.engine.event import Event, Punctuation
from repro.engine.operators import Collector
from repro.engine.operators.snapshot import SnapshotCount, SnapshotSum


def wire(op):
    sink = Collector()
    op.add_downstream(sink)
    return sink


class TestSnapshotCount:
    def test_single_event_one_interval(self):
        op = SnapshotCount()
        sink = wire(op)
        op.on_event(Event(5, 10))
        op.on_flush()
        assert [(e.sync_time, e.other_time, e.payload) for e in sink.events] \
            == [(5, 10, 1)]

    def test_overlap_produces_step_function(self):
        op = SnapshotCount()
        sink = wire(op)
        op.on_event(Event(0, 10))
        op.on_event(Event(5, 15))
        op.on_flush()
        assert [(e.sync_time, e.other_time, e.payload) for e in sink.events] \
            == [(0, 5, 1), (5, 10, 2), (10, 15, 1)]

    def test_gap_not_emitted_by_default(self):
        op = SnapshotCount()
        sink = wire(op)
        op.on_event(Event(0, 5))
        op.on_event(Event(10, 15))
        op.on_flush()
        assert [(e.sync_time, e.payload) for e in sink.events] == [
            (0, 1), (10, 1),
        ]

    def test_gap_emitted_with_emit_zero(self):
        op = SnapshotCount(emit_zero=True)
        sink = wire(op)
        op.on_event(Event(0, 5))
        op.on_event(Event(10, 15))
        op.on_flush()
        assert [(e.sync_time, e.other_time, e.payload) for e in sink.events] \
            == [(0, 5, 1), (5, 10, 0), (10, 15, 1)]

    def test_punctuation_releases_prefix_only(self):
        op = SnapshotCount()
        sink = wire(op)
        op.on_event(Event(0, 10))
        op.on_event(Event(5, 15))
        op.on_punctuation(Punctuation(10))
        assert [(e.sync_time, e.other_time, e.payload) for e in sink.events] \
            == [(0, 5, 1), (5, 10, 2)]
        op.on_flush()
        assert sink.events[-1].payload == 1
        assert sink.events[-1].sync_time == 10

    def test_forwarded_punctuation_clamped_below_pending_segment(self):
        """A long-lived event must hold the output watermark back: its
        snapshot interval will eventually emit at its start time."""
        op = SnapshotCount()
        sink = wire(op)
        op.on_event(Event(0, 100))
        op.on_punctuation(Punctuation(50))
        assert sink.events == []
        assert sink.punctuations == [-1]  # clamped below frontier 0
        op.on_punctuation(Punctuation(100))
        assert [(e.sync_time, e.other_time) for e in sink.events] == [(0, 100)]
        assert sink.punctuations == [-1, 100]
        # Output respects its own punctuations: no event <= -1 after it.
        assert all(e.sync_time > -1 for e in sink.events)

    def test_buffered_count_tracks_boundaries(self):
        op = SnapshotCount()
        wire(op)
        op.on_event(Event(0, 10))
        assert op.buffered_count() == 2
        op.on_punctuation(Punctuation(100))
        assert op.buffered_count() == 0

    def test_hopping_window_sliding_count(self):
        """The semantic the tumbling-window count cannot express: a
        sliding one-minute count updated every second (paper §IV-A2's
        example), where each event contributes to every hop it spans."""
        events = [Event(t) for t in [0, 1, 2, 30, 59]]
        out = (
            Streamable.from_elements(events)
            .hopping_window(size=60, hop=10)
            .apply(lambda s: s)  # alignment only
        )
        op_stream = out
        collector = Collector()
        pipeline = op_stream.subscribe(collector.on_event)
        # Route through SnapshotCount manually for clarity.
        snapshot = SnapshotCount()
        sink = wire(snapshot)
        for event in events:
            aligned_start = event.sync_time - event.sync_time % 10
            snapshot.on_event(Event(aligned_start, aligned_start + 60))
        snapshot.on_flush()
        by_instant = {}
        for e in sink.events:
            for t in range(e.sync_time, e.other_time, 10):
                by_instant[t] = e.payload
        # At t=0 three events are alive; at t=50, all five.
        assert by_instant[0] == 3
        assert by_instant[50] == 5
        assert pipeline is not None

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(1, 30)),
            min_size=1, max_size=60,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, intervals):
        op = SnapshotCount(emit_zero=False)
        sink = wire(op)
        for start, length in intervals:
            op.on_event(Event(start, start + length))
        op.on_flush()
        # Brute force: count alive intervals at each instant.
        alive = Counter()
        for start, length in intervals:
            for t in range(start, start + length):
                alive[t] += 1
        got = {}
        for e in sink.events:
            for t in range(e.sync_time, e.other_time):
                got[t] = e.payload
        assert got == {t: c for t, c in alive.items() if c}

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(1, 30)),
            min_size=1, max_size=60,
        ),
        st.lists(st.integers(0, 150), max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_incremental_equals_offline(self, intervals, raw_puncts):
        offline = SnapshotCount()
        offline_sink = wire(offline)
        online = SnapshotCount()
        online_sink = wire(online)
        puncts = sorted(set(raw_puncts))
        for start, length in intervals:
            offline.on_event(Event(start, start + length))
            online.on_event(Event(start, start + length))
        offline.on_flush()
        for p in puncts:
            online.on_punctuation(Punctuation(p))
        online.on_flush()
        merge = lambda sink: [  # noqa: E731
            (e.sync_time, e.other_time, e.payload) for e in sink.events
        ]
        # The online run may split intervals at punctuation boundaries;
        # compare per-instant values instead.
        def per_instant(rows):
            out = {}
            for start, end, value in rows:
                for t in range(start, end):
                    out[t] = value
            return out

        assert per_instant(merge(online_sink)) == \
            per_instant(merge(offline_sink))


class TestSnapshotSum:
    def test_sum_over_intervals(self):
        op = SnapshotSum()
        sink = wire(op)
        op.on_event(Event(0, 10, payload=3))
        op.on_event(Event(5, 15, payload=4))
        op.on_flush()
        assert [(e.sync_time, e.payload) for e in sink.events] == [
            (0, 3), (5, 7), (10, 4),
        ]

    def test_selector(self):
        op = SnapshotSum(selector=lambda p: p[1])
        sink = wire(op)
        op.on_event(Event(0, 5, payload=(0, 9)))
        op.on_flush()
        assert sink.events[0].payload == 9
