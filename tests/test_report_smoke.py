"""Smoke test: the consolidated report runner executes end to end."""

from __future__ import annotations

from benchmarks import report


def test_report_main_runs_selected_sections(capsys):
    report.main([
        "--n", "3000",
        "--skip",
        "Figure 5", "Figure 7", "Figure 8", "Figure 9", "Figure 10",
        "Ablation", "Operator",
    ])
    out = capsys.readouterr().out
    assert "Table I — disorder statistics" in out
    assert "Table II — latency & completeness" in out
    assert "section took" in out


def test_report_sections_registry_is_complete():
    """Every bench module with a report() appears in the runner."""
    import importlib
    import pathlib

    bench_dir = pathlib.Path(report.__file__).parent
    modules_with_report = set()
    for path in bench_dir.glob("bench_*.py"):
        module = importlib.import_module(f"benchmarks.{path.stem}")
        if hasattr(module, "report"):
            modules_with_report.add(module.report)
    registered = {fn for _, fn in report.SECTIONS}
    missing = modules_with_report - registered
    assert not missing, f"bench reports not in report.SECTIONS: {missing}"


def test_report_json_archive(tmp_path, capsys):
    out = tmp_path / "results.json"
    report.main([
        "--n", "2000",
        "--json", str(out),
        "--skip",
        "Figure 5", "Figure 7", "Figure 8", "Figure 9", "Figure 10",
        "Ablation", "Operator", "Table II",
    ])
    capsys.readouterr()
    import json

    archive = json.loads(out.read_text())
    assert "Table I — disorder statistics" in archive["sections"]
    section = archive["sections"]["Table I — disorder statistics"]
    assert "inversions" in section["output"]
    assert section["seconds"] >= 0
