"""Tests for LateEventTracker, SorterStats and the query definitions."""

from __future__ import annotations

import pytest

from repro.core.late import LateEventTracker, LatePolicy
from repro.core.errors import LateEventError
from repro.core.stats import SorterStats
from repro.engine import DisorderedStreamable
from repro.framework.queries import DEFAULT_WINDOW, PaperQuery, make_query
from repro.workloads import generate_cloudlog


class TestLateEventTracker:
    def test_drop(self):
        tracker = LateEventTracker(LatePolicy.DROP)
        assert tracker.admit(5, 10) is None
        assert tracker.dropped == 1
        assert tracker.total == 1
        assert tracker.preserved == 0

    def test_adjust(self):
        tracker = LateEventTracker(LatePolicy.ADJUST)
        assert tracker.admit(5, 10) == 10
        assert tracker.adjusted == 1
        assert tracker.preserved == 1

    def test_raise(self):
        tracker = LateEventTracker(LatePolicy.RAISE)
        with pytest.raises(LateEventError) as excinfo:
            tracker.admit(5, 10)
        assert excinfo.value.event_time == 5
        assert excinfo.value.punctuation_time == 10

    def test_completeness(self):
        tracker = LateEventTracker(LatePolicy.DROP)
        for _ in range(3):
            tracker.admit(0, 1)
        assert tracker.completeness(30) == pytest.approx(0.9)
        assert tracker.completeness(0) == 1.0

    def test_repr(self):
        assert "dropped=0" in repr(LateEventTracker())


class TestSorterStats:
    def test_buffered_derived(self):
        stats = SorterStats()
        stats.inserted = 10
        stats.emitted = 4
        assert stats.buffered == 6

    def test_note_buffered_high_water(self):
        stats = SorterStats()
        stats.inserted = 5
        stats.note_buffered()
        stats.emitted = 5
        stats.inserted = 7
        stats.note_buffered()
        assert stats.max_buffered == 5

    def test_as_dict_excludes_history(self):
        stats = SorterStats()
        stats.sample_runs(3)
        d = stats.as_dict()
        assert "run_count_history" not in d
        assert stats.run_count_history == [(0, 3)]

    def test_repr_smoke(self):
        assert "inserted=0" in repr(SorterStats())


class TestPaperQueries:
    def test_make_query_names(self):
        for name, groups, k in (
            ("Q1", 0, 0), ("Q2", 100, 0), ("Q3", 1000, 0), ("Q4", 100, 5),
        ):
            q = make_query(name)
            assert q.name == name
            assert q.n_groups == groups
            assert q.top_k == k
            assert q.window_size == DEFAULT_WINDOW

    def test_make_query_unknown(self):
        with pytest.raises(ValueError, match="unknown query"):
            make_query("Q9")

    def test_custom_window(self):
        assert make_query("Q1", window_size=77).window_size == 77

    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4"])
    def test_piq_then_merge_equals_full_on_single_stream(self, name):
        """On one stream, merge(piq(s)) must agree with the full query —
        the algebraic property the advanced framework relies on."""
        query = make_query(name, window_size=200)
        dataset = generate_cloudlog(4_000, delay_spread_ms=200, seed=3)

        def run(build):
            disordered = DisorderedStreamable.from_dataset(
                dataset, punctuation_frequency=500, reorder_latency=3_000
            ).tumbling_window(query.window_size)
            return build(disordered.to_streamable()).collect()

        full = run(query.body)
        composed = run(lambda s: query.merge(query.piq(s)))
        assert (
            sorted((e.sync_time, e.key, e.payload) for e in full.events)
            == sorted((e.sync_time, e.key, e.payload) for e in composed.events)
        )

    def test_query_is_frozen(self):
        query = make_query("Q1")
        with pytest.raises(Exception):
            query.name = "Q5"

    def test_paper_query_dataclass_fields(self):
        query = PaperQuery("X", "desc", 100, n_groups=2, top_k=1)
        assert query.description == "desc"
