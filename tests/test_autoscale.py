"""Tests for adaptive worker autoscaling (repro.parallel.autoscale).

The headline invariant: a run whose pool grows and shrinks mid-stream is
*output-equivalent* to every fixed-size pool — the event multiset is
identical and the punctuation sequence is exactly equal (fixed pools
already differ from each other only in same-sync-time tie order, so the
multiset + punctuation bar is the strongest pool-invariant property that
exists).  Around that: policy unit tests (hysteresis, cooldown,
determinism from a recorded trace), checkpoint-handoff trajectories
across late policies and memory budgets, supervised kill -9 mid-rescale,
spec parsing, and the serve layer's scale-up-instead-of-shed elasticity.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.errors import QueryBuildError
from repro.core.late import LatePolicy
from repro.engine import Event, Punctuation, QueryPlan
from repro.engine.kernels import field
from repro.engine.operators.aggregates import Sum
from repro.parallel import (
    AutoscalePolicy,
    CompiledShardPlan,
    GroupedAggregatePlan,
    RowPlan,
    crash_on_rescale,
    parse_parallel_spec,
    run_parallel,
)
from repro.parallel.autoscale import RoundSignals
from repro.resilience.parallel import run_parallel_supervised


def _signals(round, workers, events, stall_s=0.0, wall_s=1.0):
    per = events // workers
    return RoundSignals(
        round=round, workers=workers, events=events,
        per_shard=tuple([per] * workers), buffered=tuple([0] * workers),
        stall_s=stall_s, wall_s=wall_s,
    )


def _multiset(result):
    return sorted(
        (e.sync_time, e.key, e.payload) for e in result.events
    )


def bursty_elements(rounds=24, heavy=range(4, 13), heavy_n=1200,
                    light_n=40, keys=29, seed=11, spread=130,
                    payload=None):
    """A bursty disordered stream: quiet rounds, a heavy burst, quiet
    again — the shape autoscaling exists for.  ``spread > 100`` leaves
    stragglers past each round's punctuation, so late policies engage.
    """
    rng = random.Random(seed)
    out = []
    ts = 0
    for rnd in range(rounds):
        n = heavy_n if rnd in heavy else light_n
        for _ in range(n):
            t = ts + rng.randrange(0, spread)
            key = rng.randrange(0, keys)
            out.append(Event(
                t, t + 1, key, payload(t, key) if payload else None
            ))
        ts += 100
        out.append(Punctuation(ts - 1))
    return out


def _test_policy(min_workers=1, max_workers=3, high=700.0, low=200.0,
                 cooldown=1):
    """Deterministic for tests: stall_high disabled (wall-clock free)."""
    return AutoscalePolicy(
        min_workers, max_workers, high=high, low=low,
        cooldown=cooldown, stall_high=1e9,
    )


# ---------------------------------------------------------------------------
# Policy units
# ---------------------------------------------------------------------------


class TestPolicy:
    def test_hysteresis_band_holds_steady(self):
        policy = _test_policy(cooldown=0)
        for rnd in range(10):
            assert policy.observe(_signals(rnd, 2, 1000)) is None
        assert policy.decisions == []

    def test_grows_above_high_watermark(self):
        policy = _test_policy(cooldown=0)
        decision = policy.observe(_signals(0, 1, 5000))
        assert decision is not None and decision.workers == 2
        assert "events/worker" in decision.reason

    def test_shrinks_below_low_watermark(self):
        policy = _test_policy(cooldown=0)
        decision = policy.observe(_signals(0, 3, 30))
        assert decision is not None and decision.workers == 2

    def test_clamped_at_bounds(self):
        policy = _test_policy(max_workers=2, cooldown=0)
        assert policy.observe(_signals(0, 2, 50_000)) is None
        assert policy.observe(_signals(1, 1, 1)) is None

    def test_stall_ratio_override_grows(self):
        policy = AutoscalePolicy(1, 4, high=1e12, low=0.0, cooldown=0,
                                 stall_high=0.2)
        decision = policy.observe(
            _signals(0, 1, 10, stall_s=0.5, wall_s=1.0)
        )
        assert decision is not None and decision.workers == 2
        assert "stall_ratio" in decision.reason

    def test_cooldown_blocks_until_applied_decision_ages(self):
        policy = _test_policy(cooldown=3)
        decision = policy.observe(_signals(0, 1, 5000))
        assert decision is not None
        policy.notify_applied(decision)
        # Rounds 1..3 fall inside the cooldown; round 4 is free again.
        for rnd in range(1, 4):
            assert policy.observe(_signals(rnd, 2, 5000)) is None
        assert policy.observe(_signals(4, 2, 5000)) is not None

    def test_deferred_decisions_do_not_restart_cooldown(self):
        policy = _test_policy(cooldown=2)
        first = policy.observe(_signals(0, 1, 5000))
        assert first is not None
        # Not applied (coordinator deferred it): the next observation
        # may emit again immediately.
        assert policy.observe(_signals(1, 1, 5000)) is not None

    def test_deterministic_given_signal_trace(self):
        trace = [
            _signals(r, w, ev) for r, (w, ev) in enumerate(
                [(1, 50), (1, 5000), (2, 5000), (3, 900), (3, 100),
                 (2, 100), (1, 100), (1, 4000)]
            )
        ]

        def run():
            policy = _test_policy(cooldown=1)
            out = []
            for signals in trace:
                decision = policy.observe(signals)
                if decision is not None:
                    policy.notify_applied(decision)
                    out.append((decision.round, decision.workers))
            return out

        assert run() == run() and run()  # same trace in, same plan out

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(0, 4)
        with pytest.raises(ValueError):
            AutoscalePolicy(4, 2)


class TestSpecParsing:
    def test_integers_pass_through(self):
        assert parse_parallel_spec(3) == (3, None)
        assert parse_parallel_spec("5") == (5, None)

    def test_auto_defaults(self):
        workers, policy = parse_parallel_spec("auto")
        assert workers == 1
        assert (policy.min_workers, policy.max_workers) == (1, 4)

    def test_auto_with_bounds(self):
        workers, policy = parse_parallel_spec("auto:2-6")
        assert workers == 2
        assert (policy.min_workers, policy.max_workers) == (2, 6)

    @pytest.mark.parametrize("bad", [
        "bogus", "auto:2", "auto:x-y", "auto:0-4", "auto:5-2", "auto:",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_parallel_spec(bad)


# ---------------------------------------------------------------------------
# Trajectory equivalence: grow/shrink/grow vs every fixed pool
# ---------------------------------------------------------------------------


class TestTrajectoryEquivalence:
    def _run_all(self, plan, elements_fn, max_workers=3):
        fixed = {
            w: run_parallel(elements_fn(), plan, w)
            for w in range(1, max_workers + 1)
        }
        schedule = []
        auto = run_parallel(
            elements_fn(), plan, 1,
            autoscale=_test_policy(max_workers=max_workers),
            rescale_schedule=schedule,
        )
        return fixed, auto, schedule

    def test_grouped_plan_grow_shrink_matches_every_fixed_pool(self):
        plan = GroupedAggregatePlan(window=100)
        fixed, auto, schedule = self._run_all(plan, bursty_elements)
        workers_seen = [1] + [entry["workers"] for entry in schedule]
        assert max(workers_seen) > 1, "burst never grew the pool"
        assert workers_seen[-1] < max(workers_seen), "never shrank back"
        base = fixed[1]
        for w, result in fixed.items():
            assert _multiset(result) == _multiset(base), f"w={w}"
            assert result.punctuations == base.punctuations, f"w={w}"
        assert _multiset(auto) == _multiset(base)
        assert auto.punctuations == base.punctuations
        assert auto.completed

    @pytest.mark.parametrize(
        "policy", [LatePolicy.DROP, LatePolicy.ADJUST, LatePolicy.RAISE],
        ids=["drop", "adjust", "raise"],
    )
    def test_compiled_plan_under_every_late_policy(self, policy):
        def build():
            return (QueryPlan().tumbling_window(100)
                    .sort(late_policy=policy)
                    .group_aggregate(Sum(field(1))))

        def elements():
            # RAISE needs on-time data: keep events inside the round.
            spread = 99 if policy is LatePolicy.RAISE else 130
            return bursty_elements(
                spread=spread, payload=lambda t, k: (t % 7, 1)
            )

        plan = CompiledShardPlan(build())
        assert plan.rescalable, plan.rescale_reason
        fixed, auto, schedule = self._run_all(plan, elements)
        assert len(schedule) >= 2
        base = fixed[1]
        for w, result in fixed.items():
            assert _multiset(result) == _multiset(base), f"w={w}"
        assert _multiset(auto) == _multiset(base)
        assert auto.punctuations == base.punctuations

    def test_compiled_plan_with_memory_budget(self):
        build = (QueryPlan().tumbling_window(100)
                 .sort(late_policy=LatePolicy.DROP)
                 .group_aggregate(Sum(field(1))))
        plan = CompiledShardPlan(build, memory_budget=64 * 1024)

        def elements():
            return bursty_elements(payload=lambda t, k: (t % 7, 1))

        fixed, auto, schedule = self._run_all(plan, elements)
        assert len(schedule) >= 2
        base = fixed[1]
        assert _multiset(auto) == _multiset(base)
        assert auto.punctuations == base.punctuations

    def test_schedule_replay_is_deterministic(self):
        plan = GroupedAggregatePlan(window=100)
        schedule = []
        first = run_parallel(
            bursty_elements(), plan, 1, autoscale=_test_policy(),
            rescale_schedule=schedule,
        )
        assert len(schedule) >= 2
        replayed_schedule = list(schedule)
        replay = run_parallel(
            bursty_elements(), plan, 1, autoscale=_test_policy(),
            rescale_schedule=replayed_schedule,
        )
        # The recorded prefix replays verbatim — no new entries, and the
        # output is equivalent.
        assert replayed_schedule == schedule
        assert _multiset(replay) == _multiset(first)
        assert replay.punctuations == first.punctuations

    def test_accounting_records_the_trajectory(self):
        plan = GroupedAggregatePlan(window=100)
        _, auto, schedule = self._run_all(plan, bursty_elements)
        doc = auto.parallel["autoscale"]
        assert doc["enabled"] is True
        assert doc["initial_workers"] == 1
        assert doc["applied"] == schedule
        assert doc["final_workers"] == schedule[-1]["workers"]
        assert len(doc["epochs"]) == len(schedule)
        assert doc["worker_seconds"] > 0
        assert doc["signals"], "signal trace missing"
        for entry in doc["signals"][:3]:
            assert set(entry) >= {
                "round", "workers", "events", "per_shard", "buffered",
                "stall_s", "wall_s",
            }
        # Epochs carry the retired workers' stats, wait counters included.
        for epoch in doc["epochs"]:
            assert len(epoch["shards"]) == epoch["from_workers"]
            for stats in epoch["shards"]:
                assert "ring_wait" in stats and "cpu_s" in stats

    def test_row_plan_rejects_autoscale(self):
        plan = RowPlan(lambda s: s.count())
        with pytest.raises(QueryBuildError, match="not rescalable"):
            run_parallel(
                bursty_elements(rounds=2), plan, 1,
                autoscale=_test_policy(),
            )

    def test_topk_compiled_plan_rejects_autoscale(self):
        build = (QueryPlan().tumbling_window(100)
                 .sort(late_policy=LatePolicy.DROP).top_k(2))
        plan = CompiledShardPlan(build)
        assert not plan.rescalable
        with pytest.raises(QueryBuildError, match="not rescalable"):
            run_parallel(
                bursty_elements(rounds=2), plan, 1,
                autoscale=_test_policy(),
            )


# ---------------------------------------------------------------------------
# Supervised crash mid-rescale
# ---------------------------------------------------------------------------


class TestSupervisedRescale:
    def test_kill9_mid_rescale_recovers_exactly_once(self):
        plan = GroupedAggregatePlan(window=100)
        base = run_parallel(bursty_elements(), plan, 1)
        delivered = []
        outcome = run_parallel_supervised(
            bursty_elements(), plan, 1,
            fault=crash_on_rescale(0),
            on_event=delivered.append,
            autoscale=_test_policy(),
        )
        assert outcome.restarts == 1
        assert outcome.crashes[0].exitcode == 43
        assert outcome.completed
        assert _multiset(outcome) == _multiset(base)
        assert outcome.punctuations == base.punctuations
        # on_event saw every output event exactly once across the crash.
        assert sorted(
            (e.sync_time, e.key, e.payload) for e in delivered
        ) == _multiset(base)
        doc = outcome.resilience_doc()
        assert doc["rescales"] >= 1
        assert doc["crashes"][0]["exitcode"] == 43

    def test_supervised_rescale_without_faults(self):
        plan = GroupedAggregatePlan(window=100)
        base = run_parallel(bursty_elements(), plan, 1)
        outcome = run_parallel_supervised(
            bursty_elements(), plan, 1, autoscale=_test_policy(),
        )
        assert outcome.restarts == 0
        assert _multiset(outcome) == _multiset(base)
        assert outcome.punctuations == base.punctuations
        assert outcome.resilience_doc()["rescales"] >= 2


# ---------------------------------------------------------------------------
# Serve: scale up instead of shedding
# ---------------------------------------------------------------------------


class TestServeElasticity:
    def _runtime(self, tmp_path, **kwargs):
        from repro.resilience.quarantine import QuarantineLedger
        from repro.serve.tenant import TenantRuntime

        ledger = QuarantineLedger(
            sidecar=os.path.join(tmp_path, "quarantine.jsonl")
        )
        return TenantRuntime("t1", str(tmp_path), ledger, **kwargs)

    def _flood(self, runtime, n, start=0):
        for i in range(start, start + n):
            runtime.accept_event(
                runtime.journal.length, Event(i, i + 1, 0, (i,))
            )

    def test_breach_scales_up_before_shedding(self, tmp_path):
        runtime = self._runtime(tmp_path, quota=8, max_slots=3)
        runtime.subscribe("q", "window=100|sort|count")
        self._flood(runtime, 20)
        assert runtime.counters["scale_ups"] >= 1
        assert runtime.counters["shed"] == 0
        assert runtime.slots > 1

    def test_sheds_only_after_every_slot_is_consumed(self, tmp_path):
        runtime = self._runtime(tmp_path, quota=8, max_slots=3)
        runtime.subscribe("q", "window=100|sort|count")
        self._flood(runtime, 200)
        assert runtime.slots == 3
        assert runtime.counters["scale_ups"] == 2
        assert runtime.counters["shed"] >= 1

    def test_elastic_tenant_sheds_less_than_rigid(self, tmp_path):
        elastic = self._runtime(
            os.path.join(tmp_path, "a"), quota=8, max_slots=3
        )
        rigid = self._runtime(os.path.join(tmp_path, "b"), quota=8)
        for runtime in (elastic, rigid):
            os.makedirs(os.path.dirname(runtime.journal.path),
                        exist_ok=True)
            runtime.subscribe("q", "window=100|sort|count")
            self._flood(runtime, 200)
        assert elastic.counters["shed"] < rigid.counters["shed"]

    def test_slots_retire_as_buffers_drain(self, tmp_path):
        runtime = self._runtime(tmp_path, quota=8, max_slots=3)
        runtime.subscribe("q", "window=100|sort|count")
        self._flood(runtime, 200)
        assert runtime.slots == 3
        runtime.accept_punctuation(runtime.journal.length, 500)
        assert runtime.slots == 1
        assert runtime.counters["scale_downs"] == 2

    def test_state_roundtrips_slots(self, tmp_path):
        runtime = self._runtime(tmp_path, quota=8, max_slots=3)
        runtime.subscribe("q", "window=100|sort|count")
        self._flood(runtime, 20)
        assert runtime.slots > 1
        state = runtime.as_state()
        assert state["slots"] == runtime.slots
        runtime.close()
        recovered = self._runtime(tmp_path, quota=8, max_slots=3)
        recovered.recover(state)
        assert recovered.slots == runtime.slots

    def test_max_slots_validation(self, tmp_path):
        with pytest.raises(ValueError):
            self._runtime(tmp_path, quota=8, max_slots=0)


# ---------------------------------------------------------------------------
# Framework + CLI specs
# ---------------------------------------------------------------------------


class TestFrameworkSpec:
    def _build(self):
        from repro.engine import DisorderedStreamable
        from repro.engine.operators.aggregates import Count
        from repro.workloads import load_dataset

        dataset = load_dataset("cloudlog", 2000)
        return (
            DisorderedStreamable.from_dataset(
                dataset, punctuation_frequency=500, reorder_latency=0
            )
            .tumbling_window(50)
            .to_streamables([0, 20, 100])
            .apply(lambda s: s.group_aggregate(Count()))
        )

    def test_streamables_run_accepts_auto(self):
        # Framework workers partition outputs, not keys: "auto" resolves
        # to clamp(#outputs, MIN, MAX) deterministically.
        reference = self._build().run()
        auto = self._build().run(parallel="auto:1-2")
        assert auto.parallel["workers"] == 2
        for i in range(3):
            assert [e.payload for e in auto.output_events(i)] == \
                [e.payload for e in reference.output_events(i)], i

    def test_streamables_auto_clamps_to_outputs(self):
        result = self._build().run(parallel="auto:1-8")
        assert result.parallel["workers"] == 3  # three outputs

    def test_streamables_rejects_bad_spec(self):
        with pytest.raises(QueryBuildError):
            self._build().run(parallel="bogus")
