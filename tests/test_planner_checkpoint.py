"""Tests for the query planner and sorter checkpointing."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ImpatienceSorter
from repro.core.errors import CheckpointError, QueryBuildError
from repro.engine import DisorderedStreamable, Event
from repro.engine.checkpoint import checkpoint_sorter, restore_sorter
from repro.engine.planner import QueryPlan


def disordered(times):
    return DisorderedStreamable.from_elements([Event(t) for t in times])


class TestQueryPlan:
    def test_hoists_insensitive_block(self):
        plan = (
            QueryPlan()
            .sort()
            .where(lambda e: True)
            .tumbling_window(100)
            .count()
        )
        assert plan.describe() == ["sort", "where", "tumbling_window", "count"]
        assert plan.optimized().describe() == [
            "where", "tumbling_window", "sort", "count",
        ]

    def test_sensitive_op_blocks_later_hoisting(self):
        plan = (
            QueryPlan()
            .sort()
            .tumbling_window(10)
            .count()
            .select(lambda p: p)  # operates on aggregates; must not move
        )
        assert plan.optimized().describe() == [
            "tumbling_window", "sort", "count", "select",
        ]

    def test_pre_sort_steps_stay_in_front(self):
        plan = (
            QueryPlan()
            .where(lambda e: True)
            .sort()
            .select_columns([0])
            .count()
        )
        assert plan.optimized().describe() == [
            "where", "select_columns", "sort", "count",
        ]

    def test_duplicate_sort_rejected(self):
        with pytest.raises(QueryBuildError, match="already contains"):
            QueryPlan().sort().sort()

    def test_missing_sort_rejected(self):
        with pytest.raises(QueryBuildError, match="no sort"):
            QueryPlan().where(lambda e: True).optimized()

    def test_sensitive_before_sort_rejected(self):
        plan = QueryPlan().count().sort()
        with pytest.raises(QueryBuildError, match="order-sensitive"):
            plan.validate()

    def test_unknown_method(self):
        with pytest.raises(AttributeError):
            QueryPlan().frobnicate

    def test_explain_marks_sort(self):
        text = QueryPlan().where(lambda e: True).sort().count().explain()
        assert ">> sort" in text
        assert "   where" in text or "  where" in text

    def test_bind_executes(self):
        plan = QueryPlan().sort().tumbling_window(10).count()
        times = [13, 2, 27, 9, 5, 22]
        result = plan.bind(disordered(times)).collect()
        assert sum(result.payloads) == len(times)

    @given(st.lists(st.integers(0, 300), min_size=1, max_size=150))
    @settings(max_examples=50, deadline=None)
    def test_optimized_plan_same_results(self, times):
        """The rewrite is semantics-preserving for any input stream."""
        plan = (
            QueryPlan()
            .sort()
            .where(lambda e: e.sync_time % 2 == 0)
            .tumbling_window(20)
            .count()
        )
        naive = plan.bind(disordered(times)).collect()
        fast = plan.optimized().bind(disordered(times)).collect()
        assert [(e.sync_time, e.payload) for e in naive.events] == [
            (e.sync_time, e.payload) for e in fast.events
        ]

    def test_plans_are_immutable_values(self):
        base = QueryPlan().sort()
        extended = base.count()
        assert base.describe() == ["sort"]
        assert extended.describe() == ["sort", "count"]


class TestCheckpoint:
    def _loaded(self, values, punct=None):
        sorter = ImpatienceSorter()
        sorter.extend(values)
        if punct is not None:
            sorter.on_punctuation(punct)
        return sorter

    def test_roundtrip_preserves_behaviour(self):
        original = self._loaded([5, 1, 9, 3], punct=2)
        restored = restore_sorter(checkpoint_sorter(original))
        assert restored.buffered == original.buffered
        assert restored.run_count == original.run_count
        assert restored.watermark == original.watermark
        assert restored.flush() == original.flush()

    def test_checkpoint_is_json_serializable(self):
        state = checkpoint_sorter(self._loaded([3, 1, 2]))
        assert restore_sorter(json.loads(json.dumps(state))).flush() == \
            [1, 2, 3]

    def test_restored_rejects_late_like_original(self):
        original = self._loaded([5, 10], punct=7)
        restored = restore_sorter(checkpoint_sorter(original))
        assert restored.insert(6) is False
        assert restored.late.dropped == 1

    def test_keyed_sorter_not_checkpointable(self):
        sorter = ImpatienceSorter(key=lambda e: e[0])
        with pytest.raises(CheckpointError, match="keyless"):
            checkpoint_sorter(sorter)

    def test_bad_format_rejected(self):
        with pytest.raises(CheckpointError, match="format"):
            restore_sorter({"format": 99})

    def test_corrupt_run_rejected(self):
        # punct=0 partitions the staged batch into a run without
        # emitting anything, so the checkpoint carries a real run.
        state = checkpoint_sorter(self._loaded([1, 2], punct=0))
        state["runs"][0] = [3, 1]
        with pytest.raises(CheckpointError, match="not ascending"):
            restore_sorter(state)

    def test_corrupt_empty_run_rejected(self):
        state = checkpoint_sorter(self._loaded([1, 2], punct=0))
        state["runs"][0] = []
        with pytest.raises(CheckpointError, match="empty run"):
            restore_sorter(state)

    def test_invariant_violation_rejected(self):
        state = checkpoint_sorter(self._loaded([5, 1]))
        state["runs"] = [[1, 2], [3, 4]]  # tails ascending: invalid
        with pytest.raises(CheckpointError, match="tails invariant"):
            restore_sorter(state)

    def test_checkpoint_errors_are_still_valueerrors(self):
        # Pre-existing callers catch ValueError; the typed error must
        # remain compatible.
        with pytest.raises(ValueError):
            restore_sorter({"format": 99})

    def test_checkpoint_does_not_mutate_live_sorter(self):
        """Taking a checkpoint is side-effect-free: the staged ingress
        batch stays staged and run statistics are untouched."""
        sorter = self._loaded([9, 4, 7])  # no punctuation: all pending
        runs_before = len(sorter._pool.runs)
        pending_before = list(sorter._pending_keys)
        state = checkpoint_sorter(sorter)
        assert sorter._pending_keys == pending_before
        assert len(sorter._pool.runs) == runs_before
        assert state["pending"] == pending_before
        # And the restored twin still behaves identically.
        assert restore_sorter(state).flush() == sorter.flush()

    def test_restore_accepts_format1_without_pending(self):
        state = checkpoint_sorter(self._loaded([2, 1, 3], punct=0))
        del state["pending"]
        state["format"] = 1
        assert restore_sorter(state).flush() == [1, 2, 3]

    @pytest.mark.parametrize("merge", ["pairwise", "huffman", "kway"])
    def test_checkpoint_every_punctuation_boundary(self, merge, rng):
        """Restart the sorter (checkpoint → JSON → restore) at *every*
        punctuation boundary of a disordered stream; the emission
        sequence must be byte-identical to an uninterrupted run."""
        values = list(range(400))
        for _ in range(80):
            i = rng.randrange(len(values))
            j = max(0, i - rng.randint(1, 30))
            values[i], values[j] = values[j], values[i]

        def batches(restart):
            sorter = ImpatienceSorter(merge=merge)
            out, high = [], None
            for count, value in enumerate(values, start=1):
                sorter.insert(value)
                high = value if high is None else max(high, value)
                if count % 50 == 0:
                    out.append(sorter.on_punctuation(high - 20))
                    if restart:
                        state = json.loads(
                            json.dumps(checkpoint_sorter(sorter))
                        )
                        sorter = restore_sorter(state)
            out.append(sorter.flush())
            return out, sorter

        plain_out, plain = batches(restart=False)
        restarted_out, restarted = batches(restart=True)
        assert json.dumps(plain_out) == json.dumps(restarted_out)
        assert sum(map(len, plain_out)) == sum(map(len, restarted_out))
        assert plain.watermark == restarted.watermark
        assert plain.buffered == restarted.buffered == 0
        # The restored sorter must keep the configured merge strategy.
        assert restarted.merge == merge

    def test_checkpoint_roundtrips_merge_strategy(self):
        sorter = ImpatienceSorter(merge="kway")
        sorter.extend([3, 1, 2])
        assert restore_sorter(checkpoint_sorter(sorter)).merge == "kway"

    def test_restore_accepts_pre_merge_checkpoints(self):
        # Checkpoints written before the "merge" key existed carry only
        # the huffman_merge bool.
        state = checkpoint_sorter(self._loaded([2, 1]))
        del state["merge"]
        restored = restore_sorter(state)
        assert restored.merge == "huffman"
        assert restored.flush() == [1, 2]

    def test_restore_accepts_pre_merge_pairwise_checkpoints(self):
        state = checkpoint_sorter(
            ImpatienceSorter(huffman_merge=False)
        )
        del state["merge"]
        state["huffman_merge"] = False
        restored = restore_sorter(state)
        assert restored.merge == "pairwise"

    @given(
        st.lists(st.integers(0, 500), max_size=200),
        st.lists(st.integers(0, 500), max_size=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_resume_equivalence(self, before, after):
        """Checkpoint mid-stream, restore, feed the rest: emissions match
        an uninterrupted sorter exactly."""
        uninterrupted = ImpatienceSorter()
        uninterrupted.extend(before)
        resumed = restore_sorter(
            checkpoint_sorter(self._loaded(before))
        )
        for sorter in (uninterrupted, resumed):
            sorter.extend(after)
        high = max(before + after, default=0)
        assert uninterrupted.on_punctuation(high // 2) == \
            resumed.on_punctuation(high // 2)
        assert uninterrupted.flush() == resumed.flush()
