"""Tests for the ASCII chart renderer."""

from __future__ import annotations

from repro.bench.ascii_chart import line_chart, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_uses_lowest_block(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_extremes_map_to_extreme_blocks(self):
        s = sparkline([0, 10])
        assert s[0] == "▁"
        assert s[-1] == "█"

    def test_resamples_long_series(self):
        s = sparkline(list(range(1000)), width=40)
        assert len(s) == 40

    def test_monotone_series_is_nondecreasing(self):
        s = sparkline(list(range(10)))
        order = "▁▂▃▄▅▆▇█"
        ranks = [order.index(ch) for ch in s]
        assert ranks == sorted(ranks)


class TestLineChart:
    def test_empty(self):
        assert line_chart({}) == "(no data)"

    def test_contains_legend_and_axes(self):
        text = line_chart({
            "a": [(0, 0), (10, 10)],
            "b": [(0, 10), (10, 0)],
        }, width=20, height=6)
        assert "* a" in text
        assert "o b" in text
        assert "10 ┤" in text
        assert "0 ┼" in text

    def test_points_land_in_grid(self):
        text = line_chart({"a": [(0, 0), (100, 50)]}, width=30, height=5)
        assert text.count("*") == 3  # two plotted points + the legend glyph

    def test_flat_series(self):
        text = line_chart({"a": [(0, 5), (10, 5)]}, width=20, height=4)
        assert "*" in text
