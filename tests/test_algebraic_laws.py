"""Algebraic laws of the query operators, property-tested.

The sort-as-needed rewrite (§IV, `engine/planner.py`) is justified by
operators commuting with the sort; these tests pin the underlying
algebra itself:

* fusion laws — chained selections/projections fuse;
* idempotence — sorting a sorted stream and re-aligning aligned
  timestamps are identities;
* union laws — commutative and associative up to multiset equality.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import DisorderedStreamable, Event, Punctuation, Streamable

streams = st.lists(st.integers(0, 200), min_size=1, max_size=120)


def ordered_elements(times):
    out = [Event(t, t + 1, key=t % 7, payload=(t,)) for t in sorted(times)]
    out.append(Punctuation(max(times)))
    return out


def signature(collector):
    return [(e.sync_time, e.key, e.payload) for e in collector.events]


class TestFusionLaws:
    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_where_fusion(self, times):
        p = lambda e: e.sync_time % 2 == 0  # noqa: E731
        q = lambda e: e.key < 5  # noqa: E731
        chained = (
            Streamable.from_elements(ordered_elements(times))
            .where(p).where(q).collect()
        )
        fused = (
            Streamable.from_elements(ordered_elements(times))
            .where(lambda e: p(e) and q(e)).collect()
        )
        assert signature(chained) == signature(fused)

    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_select_fusion(self, times):
        f = lambda p: (p[0] * 2,)  # noqa: E731
        g = lambda p: (p[0] + 1,)  # noqa: E731
        chained = (
            Streamable.from_elements(ordered_elements(times))
            .select(f).select(g).collect()
        )
        fused = (
            Streamable.from_elements(ordered_elements(times))
            .select(lambda p: g(f(p))).collect()
        )
        assert signature(chained) == signature(fused)

    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_where_select_commute_when_independent(self, times):
        """A selection on the key commutes with a payload projection."""
        p = lambda e: e.key < 4  # noqa: E731
        f = lambda payload: (payload[0] + 10,)  # noqa: E731
        ws = (
            Streamable.from_elements(ordered_elements(times))
            .where(p).select(f).collect()
        )
        sw = (
            Streamable.from_elements(ordered_elements(times))
            .select(f).where(p).collect()
        )
        assert signature(ws) == signature(sw)


class TestIdempotence:
    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_sorting_a_sorted_stream_is_identity(self, times):
        base = ordered_elements(times)
        once = (
            DisorderedStreamable.from_elements(list(base))
            .to_streamable().collect()
        )
        events_only = [e for e in base if isinstance(e, Event)]
        assert signature(once) == [
            (e.sync_time, e.key, e.payload) for e in events_only
        ]

    @given(streams, st.integers(1, 50))
    @settings(max_examples=60, deadline=None)
    def test_window_alignment_idempotent(self, times, size):
        once = (
            Streamable.from_elements(ordered_elements(times))
            .tumbling_window(size).collect()
        )
        twice = (
            Streamable.from_elements(ordered_elements(times))
            .tumbling_window(size).tumbling_window(size).collect()
        )
        assert [
            (e.sync_time, e.other_time) for e in once.events
        ] == [
            (e.sync_time, e.other_time) for e in twice.events
        ]

    @given(streams, st.integers(1, 50))
    @settings(max_examples=40, deadline=None)
    def test_clip_after_alter_idempotent(self, times, d):
        one = (
            Streamable.from_elements(ordered_elements(times))
            .alter_duration(d).clip_duration(d).collect()
        )
        other = (
            Streamable.from_elements(ordered_elements(times))
            .alter_duration(d).collect()
        )
        assert [
            (e.sync_time, e.other_time) for e in one.events
        ] == [
            (e.sync_time, e.other_time) for e in other.events
        ]


class TestUnionLaws:
    def _split_three(self, times):
        base = Streamable.from_elements(ordered_elements(times))
        return base, [
            base.where(lambda e, r=r: e.key % 3 == r) for r in range(3)
        ]

    @given(streams)
    @settings(max_examples=40, deadline=None)
    def test_union_commutative_as_multiset(self, times):
        _, (a, b, _) = self._split_three(times)
        ab = a.union(b).collect()
        _, (a2, b2, _) = self._split_three(times)
        ba = b2.union(a2).collect()
        assert Counter(signature(ab)) == Counter(signature(ba))
        assert ab.sync_times == sorted(ab.sync_times)
        assert ba.sync_times == sorted(ba.sync_times)

    @given(streams)
    @settings(max_examples=40, deadline=None)
    def test_union_with_empty_is_identity_multiset(self, times):
        base = Streamable.from_elements(ordered_elements(times))
        everything = base.where(lambda e: True)
        nothing = base.where(lambda e: False)
        merged = everything.union(nothing).collect()
        direct = Streamable.from_elements(ordered_elements(times)).collect()
        assert Counter(signature(merged)) == Counter(signature(direct))
