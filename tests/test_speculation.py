"""Tests for the speculation baseline (repro.framework.speculation)."""

from __future__ import annotations

import pytest

from repro.engine.event import Event, Punctuation
from repro.engine.operators import Collector, Count, Sum
from repro.framework.speculation import (
    SpeculativeWindowAggregate,
    apply_revisions,
)


def make(window=10, aggregate=None):
    op = SpeculativeWindowAggregate(aggregate or Count(), window)
    sink = Collector()
    op.add_downstream(sink)
    return op, sink


class TestSpeculativeAggregate:
    def test_provisional_then_revision(self):
        op, sink = make()
        op.on_event(Event(1))
        op.on_event(Event(2))
        op.on_punctuation(Punctuation(2))
        assert sink.payloads == [("insert", 2)]
        op.on_event(Event(3))  # late-ish arrival into the same window
        op.on_punctuation(Punctuation(3))
        assert sink.payloads == [
            ("insert", 2), ("retract", 2), ("insert", 3),
        ]
        assert op.insertions == 2
        assert op.retractions == 1

    def test_no_revision_when_unchanged(self):
        op, sink = make(aggregate=Sum(lambda p: 0))
        op.on_event(Event(1, payload=(0,)))
        op.on_punctuation(Punctuation(1))
        op.on_event(Event(2, payload=(0,)))
        op.on_punctuation(Punctuation(2))
        # Value stayed 0: no retraction, no duplicate insert.
        assert sink.payloads == [("insert", 0)]

    def test_consumes_disordered_input_directly(self):
        op, sink = make(window=10)
        for t in (25, 3, 17, 8, 29):
            op.on_event(Event(t))
        op.on_flush()
        final = apply_revisions(sink.events)
        assert final == {0: 2, 10: 1, 20: 2}

    def test_state_never_evicted(self):
        """The §VII critique: any window might still be revised, so state
        grows with the number of windows touched, forever."""
        op, _ = make(window=10)
        for t in range(0, 1000, 10):
            op.on_event(Event(t))
            op.on_punctuation(Punctuation(t))
        assert op.buffered_count() == 100

    def test_revision_traffic_counted(self):
        op, _ = make(window=10)
        for i in range(5):
            op.on_event(Event(1))
            op.on_punctuation(Punctuation(1))
        assert op.insertions == 5
        assert op.retractions == 4
        assert op.revision_messages == 9

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SpeculativeWindowAggregate(Count(), 0)


class TestApplyRevisions:
    def test_folds_to_final_values(self):
        events = [
            Event(0, 10, 0, ("insert", 1)),
            Event(0, 10, 0, ("retract", 1)),
            Event(0, 10, 0, ("insert", 2)),
            Event(10, 20, 0, ("insert", 7)),
        ]
        assert apply_revisions(events) == {0: 2, 10: 7}

    def test_mismatched_retraction_raises(self):
        events = [
            Event(0, 10, 0, ("insert", 1)),
            Event(0, 10, 0, ("retract", 99)),
        ]
        with pytest.raises(ValueError, match="retraction"):
            apply_revisions(events)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown revision kind"):
            apply_revisions([Event(0, 10, 0, ("upsert", 1))])

    def test_speculative_final_state_matches_ground_truth(self, rng):
        """End-to-end: after all revisions, speculation equals the sorted
        ground truth — it trades traffic, not correctness."""
        times = [rng.randrange(1000) for _ in range(2000)]
        op, sink = make(window=50)
        for i, t in enumerate(times):
            op.on_event(Event(t))
            if i % 100 == 99:
                op.on_punctuation(Punctuation(max(times[: i + 1])))
        op.on_flush()
        final = apply_revisions(sink.events)
        truth = {}
        for t in sorted(times):
            truth[t - t % 50] = truth.get(t - t % 50, 0) + 1
        assert final == truth
        assert op.revision_messages > len(truth)  # the traffic cost
