"""Tests for the lateness partitioner (repro.framework.partition)."""

from __future__ import annotations

import pytest

from repro.engine.event import Event, Punctuation
from repro.engine.operators import Collector
from repro.framework.partition import LatenessPartition


def make(latencies=(10, 100)):
    partition = LatenessPartition(latencies)
    sinks = []
    for port in partition.out_ports:
        sink = Collector()
        port.add_downstream(sink)
        sinks.append(sink)
    return partition, sinks


class TestValidation:
    def test_empty_latencies(self):
        with pytest.raises(ValueError):
            LatenessPartition([])

    def test_non_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            LatenessPartition([10, 10])

    def test_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            LatenessPartition([-1, 10])


class TestRouting:
    def test_on_time_events_go_to_first_path(self):
        partition, sinks = make()
        for t in range(5):
            partition.on_event(Event(t))
        assert len(sinks[0].events) == 5
        assert partition.routed == [5, 0]

    def test_slightly_late_event_stays_on_first_path(self):
        """Before any punctuation, path 0 accepts everything."""
        partition, sinks = make()
        partition.on_event(Event(100))
        partition.on_event(Event(50))
        assert partition.routed == [2, 0]

    def test_late_event_moves_to_second_path_after_punctuation(self):
        partition, sinks = make(latencies=(10, 100))
        partition.on_event(Event(200))
        partition.on_punctuation(Punctuation(200))
        # Path 0's punctuation is now 190, path 1's is 100.
        partition.on_event(Event(150))  # 50 late: path 1
        assert partition.routed == [1, 1]
        assert sinks[1].events[0].sync_time == 150

    def test_hopelessly_late_event_dropped(self):
        partition, _ = make(latencies=(10, 100))
        partition.on_event(Event(500))
        partition.on_punctuation(Punctuation(500))
        partition.on_event(Event(10))  # 490 late: beyond every path
        assert partition.dropped == 1
        assert partition.total_seen == 2

    def test_routed_events_never_late_within_their_path(self):
        """The punctuation-exactness guarantee: every event forwarded to a
        path arrives strictly after that path's last punctuation."""
        import random

        rnd = random.Random(11)
        partition, sinks = make(latencies=(20, 200))
        last_punct = [float("-inf"), float("-inf")]
        violations = []

        class Spy:
            def __init__(self, index):
                self.index = index

            def on_event(self, event):
                if event.sync_time <= last_punct[self.index]:
                    violations.append((self.index, event.sync_time))

            def on_punctuation(self, punctuation):
                last_punct[self.index] = punctuation.timestamp

            def on_flush(self):
                pass

        for i, port in enumerate(partition.out_ports):
            port.add_downstream(Spy(i))

        t = 0
        for step in range(2000):
            t += rnd.randrange(3)
            delay = rnd.choice([0, 0, 0, 5, 50, 500])
            partition.on_event(Event(max(t - delay, 0)))
            if step % 50 == 49:
                partition.on_punctuation(Punctuation(t))
        assert violations == []

    def test_completeness_ledger(self):
        partition, _ = make(latencies=(10, 100))
        partition.on_event(Event(1000))
        partition.on_punctuation(Punctuation(1000))
        partition.on_event(Event(995))  # path 0
        partition.on_event(Event(950))  # path 1
        partition.on_event(Event(10))   # dropped
        assert partition.routed == [2, 1]
        assert partition.dropped == 1
        assert partition.completeness(0) == pytest.approx(2 / 4)
        assert partition.completeness(1) == pytest.approx(3 / 4)


class TestPunctuations:
    def test_per_path_punctuations_trail_by_latency(self):
        partition, sinks = make(latencies=(10, 100))
        partition.on_event(Event(500))
        partition.on_punctuation(Punctuation(500))
        assert sinks[0].punctuations == [490]
        assert sinks[1].punctuations == [400]

    def test_punctuation_timestamp_counts_toward_watermark(self):
        partition, sinks = make(latencies=(10, 100))
        partition.on_punctuation(Punctuation(1000))
        assert sinks[0].punctuations == [990]

    def test_no_punctuation_before_any_data(self):
        partition, sinks = make()
        # No watermark at all: nothing to emit.
        assert sinks[0].punctuations == []

    def test_path_punctuations_monotone(self):
        partition, sinks = make(latencies=(10, 100))
        partition.on_event(Event(500))
        partition.on_punctuation(Punctuation(500))
        partition.on_event(Event(400))  # watermark unchanged
        partition.on_punctuation(Punctuation(450))  # stale
        assert sinks[0].punctuations == [490]

    def test_flush_releases_all_paths_to_watermark(self):
        partition, sinks = make(latencies=(10, 100))
        partition.on_event(Event(500))
        partition.on_flush()
        assert sinks[0].punctuations == [500]
        assert sinks[1].punctuations == [500]
        assert all(sink.completed for sink in sinks)

    def test_flush_without_data(self):
        partition, sinks = make()
        partition.on_flush()
        assert all(sink.completed for sink in sinks)
        assert sinks[0].punctuations == []
