"""Tests for columnar event batches (repro.engine.batch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.batch import EventBatch
from repro.workloads import generate_synthetic


def small_batch():
    return EventBatch(
        sync_times=[3, 1, 2],
        other_times=[4, 2, 3],
        keys=[0, 1, 2],
        payload_columns=[[10, 11, 12], [20, 21, 22]],
    )


class TestConstruction:
    def test_mismatched_columns_rejected(self):
        # The error names the offending column and both lengths.
        with pytest.raises(
            ValueError, match=r"'keys' has length 1, expected 2"
        ):
            EventBatch([1, 2], [2, 3], [0], [[1, 2]])

    def test_mismatched_payload_column_named(self):
        with pytest.raises(
            ValueError,
            match=r"'payload_columns\[1\]' has length 3, expected 2",
        ):
            EventBatch([1, 2], [2, 3], [0, 1], [[1, 2], [1, 2, 3]])

    def test_mismatched_string_column_named(self):
        with pytest.raises(
            ValueError,
            match=r"'string_columns\[0\]' has length 3, expected 2",
        ):
            EventBatch([1, 2], [2, 3], [0, 1], [],
                       string_columns=[[b"a", b"b", b"c"]])

    def test_from_dataset_roundtrip(self, synthetic_small):
        batch = EventBatch.from_dataset(synthetic_small)
        assert len(batch) == len(synthetic_small)
        assert batch.timestamps() == synthetic_small.timestamps
        first = next(batch.events())
        assert first.sync_time == synthetic_small.timestamps[0]
        assert first.payload == synthetic_small.payloads[0]


class TestColumnarOperators:
    def test_filter_marks_bitmap_without_moving_data(self):
        batch = small_batch()
        filtered = batch.filter([True, False, True])
        assert len(filtered) == 3  # physical rows unchanged
        assert filtered.valid_count == 2
        assert filtered.timestamps() == [3, 2]

    def test_filter_composes(self):
        batch = small_batch()
        both = batch.filter([True, True, False]).filter([True, False, True])
        assert both.valid_count == 1

    def test_filter_payload_vectorized(self):
        batch = small_batch()
        filtered = batch.filter_payload(0, lambda col: col >= 11)
        assert filtered.valid_count == 2

    def test_project(self):
        batch = small_batch().project([1])
        assert len(batch.payload_columns) == 1
        assert batch.payload_columns[0].tolist() == [20, 21, 22]

    def test_tumbling_window_vectorized_matches_row_operator(self):
        dataset = generate_synthetic(500, seed=3)
        batch = EventBatch.from_dataset(dataset).tumbling_window(100)
        from repro.engine.operators import Collector, TumblingWindow

        op = TumblingWindow(100)
        sink = Collector()
        op.add_downstream(sink)
        for event in dataset.events():
            op.on_event(event)
        assert batch.sync_times.tolist() == sink.sync_times
        assert batch.other_times.tolist() == [
            e.other_time for e in sink.events
        ]

    def test_tumbling_window_invalid_size(self):
        with pytest.raises(ValueError):
            small_batch().tumbling_window(0)

    def test_compact_drops_invalid_rows(self):
        batch = small_batch().filter([False, True, True])
        compacted = batch.compact()
        assert len(compacted) == 2
        assert compacted.valid.all()
        assert compacted.timestamps() == [1, 2]

    def test_compact_noop_when_all_valid(self):
        batch = small_batch()
        assert batch.compact() is batch

    def test_events_respect_bitmap(self):
        batch = small_batch().filter([False, True, False])
        events = list(batch.events())
        assert len(events) == 1
        assert events[0].sync_time == 1
        assert events[0].payload == (11, 21)

    def test_numpy_dtype_is_int64(self):
        batch = small_batch()
        assert batch.sync_times.dtype == np.int64
