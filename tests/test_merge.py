"""Tests for merge strategies (repro.core.merge)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge import (
    MERGE_STRATEGIES,
    huffman_merge,
    kway_heap_merge,
    merge_runs,
    merge_two,
    pairwise_merge,
)
from repro.core.stats import SorterStats


def _run(keys):
    """Build a (keys, items) run where items tag their origin."""
    return list(keys), [f"i{k}" for k in keys]


class TestMergeTwo:
    def test_basic_merge(self):
        keys, items = merge_two(([1, 3], ["a", "b"]), ([2, 4], ["c", "d"]))
        assert keys == [1, 2, 3, 4]
        assert items == ["a", "c", "b", "d"]

    def test_empty_sides(self):
        run = ([1, 2], ["a", "b"])
        assert merge_two(([], []), run) == run
        assert merge_two(run, ([], [])) == run

    def test_ties_prefer_left(self):
        keys, items = merge_two(([5], ["left"]), ([5], ["right"]))
        assert items == ["left", "right"]

    def test_stats_count_accessed_events(self):
        stats = SorterStats()
        merge_two(([1, 3], "ab"), ([2], "c"), stats)
        assert stats.merges == 1
        assert stats.merge_events == 3


class TestStrategies:
    @pytest.mark.parametrize("name", sorted(MERGE_STRATEGIES))
    def test_all_strategies_same_sorted_output(self, name):
        runs = [_run([1, 5, 9]), _run([2, 3]), _run([7]), _run([0, 10])]
        keys, items = merge_runs(runs, name)
        assert keys == sorted(keys)
        assert keys == [0, 1, 2, 3, 5, 7, 9, 10]
        assert len(items) == len(keys)

    @pytest.mark.parametrize("name", sorted(MERGE_STRATEGIES))
    def test_empty_input(self, name):
        assert merge_runs([], name) == ([], [])

    @pytest.mark.parametrize("name", sorted(MERGE_STRATEGIES))
    def test_single_run_passthrough(self, name):
        run = _run([1, 2, 3])
        assert merge_runs([run], name) == run

    @pytest.mark.parametrize("name", sorted(MERGE_STRATEGIES))
    def test_empty_runs_filtered(self, name):
        keys, _ = merge_runs([_run([]), _run([4]), _run([])], name)
        assert keys == [4]

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="unknown merge strategy"):
            merge_runs([_run([1])], "bogus")

    def test_huffman_moves_fewer_events_than_pairwise_on_skew(self):
        """The HM optimization's entire point: on a skewed run-size
        distribution the Huffman schedule accesses fewer events."""
        runs = [_run(range(1000))] + [
            _run([2000 + i]) for i in range(20)
        ]
        stats_h = SorterStats()
        huffman_merge([(_k[:], _i[:]) for _k, _i in runs], stats_h)
        stats_p = SorterStats()
        # Pairwise folds the big run through every merge.
        pairwise_merge([(_k[:], _i[:]) for _k, _i in runs], stats_p)
        assert stats_h.merge_events < stats_p.merge_events

    def test_kway_counts_one_merge(self):
        stats = SorterStats()
        kway_heap_merge([_run([1]), _run([2]), _run([3])], stats)
        assert stats.merges == 1
        assert stats.merge_events == 3

    @given(
        st.lists(
            st.lists(st.integers(-50, 50), max_size=30).map(sorted),
            max_size=8,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_strategies_agree_on_key_sequence(self, key_lists):
        runs = [
            (keys, [None] * len(keys)) for keys in key_lists
        ]
        expected = sorted(k for keys in key_lists for k in keys)
        for name in MERGE_STRATEGIES:
            fresh = [(list(keys), [None] * len(keys)) for keys in key_lists]
            keys, items = merge_runs(fresh, name)
            assert keys == expected
            assert len(items) == len(keys)

    def test_huffman_merge_is_weight_optimal_for_three_runs(self):
        """With runs of sizes 1, 1, 100, Huffman merges the two singletons
        first: total accesses 2 + 102, versus 101 + 102 the bad way."""
        runs = [_run(range(100)), _run([500]), _run([501])]
        stats = SorterStats()
        huffman_merge(runs, stats)
        assert stats.merge_events == 2 + 102
