"""Shared fixtures: small deterministic datasets and sorter casts."""

from __future__ import annotations

import random

import pytest

from repro.workloads import (
    generate_androidlog,
    generate_cloudlog,
    generate_synthetic,
)


@pytest.fixture(scope="session")
def synthetic_small():
    return generate_synthetic(5_000, percent_disorder=30, amount_disorder=64,
                              seed=7)


@pytest.fixture(scope="session")
def cloudlog_small():
    # Millisecond-scale parameters shrink with the horizon (5k events =
    # 5k ms) to keep the Table I shape at test scale.
    return generate_cloudlog(5_000, delay_spread_ms=400.0, seed=7)


@pytest.fixture(scope="session")
def androidlog_small():
    # Fewer phones at test scale so per-batch runs stay long.
    return generate_androidlog(5_000, n_phones=60, uploads_per_phone=8,
                               seed=7)


@pytest.fixture(scope="session")
def all_small_datasets(synthetic_small, cloudlog_small, androidlog_small):
    return {
        "synthetic": synthetic_small,
        "cloudlog": cloudlog_small,
        "androidlog": androidlog_small,
    }


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)
