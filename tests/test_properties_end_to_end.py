"""End-to-end property tests and failure injection across the stack."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import PunctuationOrderError, QueryBuildError
from repro.engine import DisorderedStreamable, Event, Punctuation, Streamable
from repro.engine.operators import Collector
from repro.framework import make_query
from repro.sorting import ONLINE_SORTERS, make_online_sorter

# Arrival-order timestamp streams: nearly sorted with occasional jumps.
timestamp_streams = st.lists(st.integers(0, 400), min_size=1, max_size=250)


def brute_force_window_counts(times, window):
    counts = Counter(t - t % window for t in times)
    return dict(sorted(counts.items()))


class TestEngineEndToEndProperties:
    @given(timestamp_streams, st.sampled_from([1, 7, 50]))
    @settings(max_examples=80, deadline=None)
    def test_windowed_count_matches_brute_force(self, times, window):
        """Disordered ingress -> window pushdown -> sort -> count equals
        the offline ground truth, for any stream and window size."""
        result = (
            DisorderedStreamable.from_elements(
                [Event(t) for t in times]
            )
            .tumbling_window(window)
            .to_streamable()
            .count()
            .collect()
        )
        got = {e.sync_time: e.payload for e in result.events}
        assert got == brute_force_window_counts(times, window)

    @given(timestamp_streams)
    @settings(max_examples=60, deadline=None)
    def test_sort_conserves_and_orders(self, times):
        result = (
            DisorderedStreamable.from_elements([Event(t) for t in times])
            .to_streamable()
            .collect()
        )
        assert result.sync_times == sorted(times)

    @given(timestamp_streams, st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_every_online_sorter_agrees_in_the_sort_operator(
        self, times, frequency
    ):
        """Whatever sorter backs the Sort operator, the query result is
        identical (drops included) given identical punctuations."""
        outputs = []
        for name in ONLINE_SORTERS:
            result = (
                DisorderedStreamable.from_events(
                    [Event(t) for t in times],
                    punctuation_frequency=frequency,
                    reorder_latency=100,
                )
                .to_streamable(
                    sorter=lambda n=name: make_online_sorter(
                        n, key=lambda e: e.sync_time
                    )
                )
                .collect()
            )
            outputs.append(result.sync_times)
        assert all(out == outputs[0] for out in outputs)

    @given(timestamp_streams)
    @settings(max_examples=40, deadline=None)
    def test_union_is_associative(self, times):
        elements = [Event(t) for t in sorted(times)]
        elements.append(Punctuation(max(times)))

        def three_way(assoc_left):
            base = Streamable.from_elements(list(elements))
            parts = [
                base.where(lambda e, r=r: e.sync_time % 3 == r)
                for r in range(3)
            ]
            if assoc_left:
                merged = parts[0].union(parts[1]).union(parts[2])
            else:
                merged = parts[0].union(parts[1].union(parts[2]))
            return merged.collect().sync_times

        assert three_way(True) == three_way(False)

    @given(timestamp_streams, st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_framework_final_output_matches_single_sort(self, times, fanout):
        """Random latency ladders: the advanced framework's last output
        equals the ground truth of a single max-latency sort."""
        span = max(times) + 1
        latencies = sorted({span // (fanout - i) + 1 for i in range(fanout)})
        if len(latencies) < 2:
            latencies = [1, span + 1]
        query = make_query("Q1", window_size=10)

        def events():
            return [Event(t) for t in times]

        advanced = (
            DisorderedStreamable.from_events(
                events(), punctuation_frequency=10
            )
            .tumbling_window(10)
            .to_streamables(latencies, piq=query.piq, merge=query.merge)
            .run()
        )
        truth = (
            DisorderedStreamable.from_events(
                events(), punctuation_frequency=10,
                reorder_latency=latencies[-1],
            )
            .tumbling_window(10)
            .to_streamable()
            .count()
            .collect()
        )
        got = {e.sync_time: e.payload for e in advanced.collectors[-1].events}
        want = {e.sync_time: e.payload for e in truth.events}
        assert got == want


class TestFailureInjection:
    def test_regressing_punctuation_propagates(self):
        stream = DisorderedStreamable.from_elements(
            [Event(5), Punctuation(10), Punctuation(3)]
        ).to_streamable()
        with pytest.raises(PunctuationOrderError):
            stream.collect()

    def test_multi_source_graph_cannot_run(self):
        a = Streamable.from_elements([Event(1)])
        b = Streamable.from_elements([Event(2)])
        # Force-join the two sources by lying about the shared handle.
        b._source = a._source
        merged = a.union(b)
        with pytest.raises(QueryBuildError, match="exactly one source"):
            merged.collect()

    def test_sorter_insert_after_flush_starts_fresh(self):
        from repro.core import ImpatienceSorter

        sorter = ImpatienceSorter()
        sorter.extend([3, 1])
        assert sorter.flush() == [1, 3]
        sorter.insert(2)
        # The watermark survives the flush; the buffer restarts empty.
        assert sorter.flush() == [2]

    def test_corrupt_csv_row_raises(self, tmp_path):
        from repro.workloads.io import load_dataset_csv

        path = tmp_path / "bad.csv"
        path.write_text("event_time,key\n1,0\nnot-a-number,0\n")
        with pytest.raises(ValueError):
            load_dataset_csv(path)

    def test_collector_survives_empty_stream(self):
        result = Streamable.from_elements([]).count().collect()
        assert result.events == []
        assert result.completed

    def test_operator_exception_surfaces_with_context(self):
        stream = Streamable.from_elements([Event(1)]).select(
            lambda p: 1 / 0
        )
        with pytest.raises(ZeroDivisionError):
            stream.collect()

    def test_pipeline_reuse_after_error_not_required(self):
        """After a failed run, building a fresh pipeline works — state is
        per-materialization, never shared across subscribes."""
        elements = [Event(1), Punctuation(1)]
        stream = Streamable.from_elements(elements).count()
        first = stream.collect()
        second = stream.collect()
        assert first.payloads == second.payloads

    def test_event_batch_rejects_ragged_payloads(self):
        import numpy as np

        from repro.engine.batch import EventBatch

        with pytest.raises(ValueError):
            EventBatch([1, 2], [2, 3], [0, 0], [np.array([1])])
