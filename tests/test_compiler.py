"""Tests for the fused columnar query compiler (repro.engine.compiler).

The differential half — byte-identical output versus the row engine over
random plans — lives in ``tests/test_fuzz_queries.py``; this module pins
down the compiler's *surface*: which shapes compile, the fallback
reasons, the ``explain()`` path line, the :class:`PlanResult` API, the
per-kernel snapshot schema, and the push-down effects that must be
visible in the sorter's statistics.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import QueryBuildError
from repro.core.late import LatePolicy
from repro.engine import DisorderedStreamable, QueryPlan
from repro.engine.compiler import (
    UnsupportedPlanError,
    analyze_plan,
    compile_plan,
    execute_plan,
)
from repro.engine.event import Event
from repro.engine.kernels import field, key_field
from repro.engine.operators.aggregates import Avg, Count, Max, Min, Sum
from repro.observability.snapshot import PipelineSnapshot


def _events(n=400, seed=11, keys=5, spread=300):
    rng = random.Random(seed)
    return [
        Event(rng.randrange(spread), key=rng.randrange(keys),
              payload=(rng.randrange(50), rng.randrange(9)))
        for _ in range(n)
    ]


def _plan():
    return (
        QueryPlan()
        .where(field(0) > 5)
        .tumbling_window(16)
        .sort()
        .group_aggregate(Sum(field(1)))
    )


class TestCompileSurface:
    def test_supported_shapes_compile(self):
        plans = [
            QueryPlan().tumbling_window(8).sort().count(),
            QueryPlan().hopping_window(32, 16).sort().aggregate(Avg(field(0))),
            (QueryPlan().where(key_field() < 3).select_columns((1,))
             .tumbling_window(8).sort().aggregate(Min(field(0)))),
            (QueryPlan().tumbling_window(8).sort()
             .group_aggregate(Max(field(1)), key_field()).top_k(2)),
            # Pass-through terminal kernels.
            QueryPlan().tumbling_window(8).sort().distinct(field(0)),
            QueryPlan().tumbling_window(8).sort().distinct(),
            QueryPlan().sort().session_window(16),
            QueryPlan().sort().session_window(8, Avg(field(0)), key_field()),
            QueryPlan().sort().coalesce(),
            QueryPlan().sort().self_join(),
            (QueryPlan().sort()
             .pattern_match(field(0) > 25, field(1) < 4, 16)),
            (QueryPlan().sort().group_apply(
                lambda s: s.where(field(1) < 7).tumbling_window(16)
                .aggregate(Sum(field(0))))),
            QueryPlan().sort().group_apply(lambda s: s.where(field(0) > 3)),
            QueryPlan().tumbling_window(8).sort().top_k(2),
        ]
        for plan in plans:
            path, reason = analyze_plan(plan)
            assert (path, reason) == ("columnar", None)

    def test_describe_lists_kernel_stages(self):
        compiled = compile_plan(
            QueryPlan().where(field(0) > 5).tumbling_window(16)
            .sort(late_policy=LatePolicy.ADJUST)
            .group_aggregate(Count()).top_k(3)
        )
        assert compiled.describe() == [
            "where[field(0) > 5]",
            "tumbling_window[16]",
            "columnar_sort[ADJUST]",
            "group_aggregate[count]",
            "top_k[3]",
        ]

    @pytest.mark.parametrize("build, fragment", [
        (lambda: (QueryPlan().where(lambda e: True).tumbling_window(8)
                  .sort().count()),
         "opaque Python callable"),
        (lambda: (QueryPlan().select(lambda p: p).tumbling_window(8)
                  .sort().count()),
         "opaque Python callable"),
        (lambda: (QueryPlan().tumbling_window(8).sort(sorter=lambda: None)
                  .count()),
         "custom sorter factory"),
        (lambda: QueryPlan().tumbling_window(8).sort().top_k(
            2, lambda e: e.payload),
         "score_fn is an opaque Python callable"),
        (lambda: QueryPlan().sort().session_window(16, key_fn=lambda e: 0),
         "key_fn is an opaque Python callable"),
        (lambda: (QueryPlan().sort()
                  .session_window(16, Sum(lambda p: p[0]))),
         "opaque Python callable"),
        (lambda: (QueryPlan().sort().select_columns((0,))
                  .tumbling_window(8).count()),
         "runs above the sort"),
        (lambda: QueryPlan().sort().self_join(lambda a, b: a),
         "result_selector is an opaque Python callable"),
        (lambda: QueryPlan().sort().distinct(lambda p: p[0]),
         "selector is an opaque Python callable"),
        (lambda: QueryPlan().sort().coalesce(lambda acc, e: 1),
         "combine is an opaque Python callable"),
        (lambda: (QueryPlan().sort()
                  .pattern_match(lambda e: True, lambda e: True, 16)),
         "opaque Python callables"),
        (lambda: (QueryPlan().sort()
                  .group_apply(lambda s: s.select(lambda p: p))),
         "no columnar kernel"),
        (lambda: (QueryPlan().sort()
                  .group_apply(lambda s: s.aggregate(Count()))),
         "body aggregates need"),
        (lambda: QueryPlan().sort().session_window(16).count(),
         "after session_window() is not vectorized"),
        (lambda: QueryPlan().tumbling_window(8).sort(),
         "no windowed aggregate terminal"),
        (lambda: QueryPlan().sort().count(),
         "need a tumbling/hopping window"),
        (lambda: (QueryPlan().tumbling_window(8).sort()
                  .aggregate(Sum(lambda p: p[0]))),
         "opaque Python callable"),
        (lambda: (QueryPlan().tumbling_window(8).sort()
                  .group_aggregate(Count(), lambda e: e.key)),
         "key_fn is an opaque Python callable"),
        (lambda: (QueryPlan().tumbling_window(8).sort()
                  .group_aggregate(Count()).top_k(2, lambda e: e.payload)),
         "score_fn is an opaque Python callable"),
        (lambda: (QueryPlan().tumbling_window(8).sort()
                  .group_aggregate(Count()).coalesce()),
         "after the aggregate"),
    ], ids=[
        "lambda-where", "lambda-select", "custom-sorter",
        "lambda-topk-score", "lambda-session-key", "lambda-session-agg",
        "above-sort", "lambda-join-selector", "lambda-distinct-selector",
        "lambda-coalesce-combine", "lambda-pattern-preds",
        "opaque-group-apply-body", "windowless-group-apply-agg",
        "post-session-stage", "no-terminal", "no-window",
        "lambda-selector", "lambda-key-fn", "lambda-score-fn",
        "post-aggregate-stage",
    ])
    def test_fallback_reasons(self, build, fragment):
        with pytest.raises(UnsupportedPlanError) as info:
            compile_plan(build())
        assert fragment in info.value.reason

    def test_as_written_plans_are_not_hoisted(self):
        """Operator placement relative to the sort is semantics: a plan
        written with the window *above* the sort falls back (with a hint)
        rather than being silently pushed down; its ``optimized()`` form
        compiles."""
        naive = QueryPlan().sort().tumbling_window(8).count()
        path, reason = analyze_plan(naive)
        assert path == "row"
        assert "apply plan.optimized()" in reason
        assert analyze_plan(naive.optimized()) == ("columnar", None)

    def test_explain_names_the_chosen_path(self):
        assert "-- path: columnar (fused kernel pipeline)" in _plan().explain()
        for plan in (
            QueryPlan().tumbling_window(8).sort().distinct(),
            QueryPlan().sort().session_window(16),
            QueryPlan().sort().self_join(),
            (QueryPlan().sort()
             .pattern_match(field(0) > 5, field(0) < 2, 16)),
            QueryPlan().sort().group_apply(
                lambda s: s.tumbling_window(8).count()),
        ):
            assert "-- path: columnar" in plan.explain()
        fallback = (QueryPlan().where(lambda e: True).tumbling_window(8)
                    .sort().count())
        assert "-- path: row (fallback:" in fallback.explain()
        assert "opaque Python callable" in fallback.explain()


class TestExecution:
    def test_plan_result_surface(self):
        result = _plan().run(_events(), 32, 40)
        assert result.engine == "columnar"
        assert result.reason is None
        assert result.completed
        assert len(result) == len(result.events)
        assert result.sync_times == [e.sync_time for e in result.events]
        assert result.payloads == [e.payload for e in result.events]
        assert result.sync_times == sorted(result.sync_times)

    def test_engine_row_records_reason(self):
        result = _plan().run(_events(), 32, 40, engine="row")
        assert result.engine == "row"
        assert result.reason == "engine='row' requested"

    def test_columnar_engine_raises_with_reason(self):
        plan = (QueryPlan().where(lambda e: True).tumbling_window(8)
                .sort().count())
        with pytest.raises(QueryBuildError, match="cannot be compiled"):
            plan.run(_events(40), 8, 0, engine="columnar")

    def test_rejects_unknown_engine(self):
        with pytest.raises(QueryBuildError, match="engine must be"):
            _plan().run(_events(10), 8, 0, engine="vectorized")

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            _plan().run(_events(10), 8, 0, batch_size=0)

    def test_streamable_source_compiles(self):
        events = _events()
        stream = DisorderedStreamable.from_events(events, 32, 40)
        result = _plan().run(stream)
        assert result.engine == "columnar"
        row = _plan().run(list(events), 32, 40, engine="row")
        assert result.events == row.events
        assert result.punctuations == row.punctuations

    def test_derived_streamable_falls_back(self):
        stream = DisorderedStreamable.from_events(
            _events(), 32, 40
        ).tumbling_window(8)
        plan = QueryPlan().sort().count()
        result = execute_plan(plan, stream)
        assert result.engine == "row"
        assert "columnar ingress" in result.reason

    def test_non_integer_payloads_fall_back(self):
        events = [Event(t, key=0, payload=(str(t),)) for t in range(20)]
        plan = QueryPlan().tumbling_window(8).sort().count()
        result = plan.run(events, 8, 0)
        assert result.engine == "row"
        assert "integer" in result.reason

    def test_batch_size_does_not_change_results(self):
        events = _events(seed=23)
        baseline = _plan().run(events, 32, 40, batch_size=8192)
        for batch_size in (1, 7, 64):
            result = _plan().run(events, 32, 40, batch_size=batch_size)
            assert result.events == baseline.events
            assert result.punctuations == baseline.punctuations


class TestSnapshot:
    def test_per_kernel_snapshot_schema(self):
        plan = (
            QueryPlan().where(field(0) > 5).tumbling_window(16).sort()
            .group_aggregate(Count()).top_k(2)
        )
        result = plan.run(_events(), 32, 40)
        snap = result.snapshot()
        assert isinstance(snap, PipelineSnapshot)
        names = [op["name"] for op in snap.operators]
        assert names == [
            "ingress", "where", "window", "sort", "group_aggregate", "top_k",
        ]
        for op in snap.operators:
            kernel = op["kernel"]
            assert kernel["batches"] >= 1
            assert kernel["ns_per_event"] >= 0.0
            assert op["events"]["in"] >= op["events"]["out"] >= 0
        meta = snap.as_dict()["meta"]
        assert meta["engine"] == "columnar"
        assert meta["kernels"][0].startswith("where[")

    def test_sort_operator_carries_sorter_stats(self):
        result = _plan().run(_events(), 32, 40)
        doc = result.snapshot().operator("sort")
        assert doc["sorter"]["runs_created"] >= 1
        assert doc["late"]["policy"] == "DROP"

    def test_predicate_push_down_shrinks_sorted_volume(self):
        """The where() bitmap runs below the sort: the sort kernel must
        see only the surviving rows, not the raw stream."""
        events = _events(n=600)
        result = _plan().run(events, 32, 40)
        survivors = sum(1 for e in events if e.payload[0] > 5)
        sort_doc = result.snapshot().operator("sort")
        assert sort_doc["events"]["in"] == survivors < len(events)

    def test_window_push_down_reduces_sorter_runs(self):
        """Window alignment below the sort coarsens timestamps, so the
        sorter partitions the same stream into far fewer runs — the §IV
        sort-as-needed effect, visible in SorterStats."""
        events = _events(n=2000, spread=5000)

        def runs_for(window):
            plan = QueryPlan().tumbling_window(window).sort().count()
            result = plan.run(events, 64, 0)
            return result.snapshot().operator("sort")["sorter"]["runs_created"]

        assert runs_for(512) < runs_for(1)

    def test_row_fallback_snapshot_keeps_reason(self):
        from repro.observability.registry import MetricsRegistry

        plan = (QueryPlan().where(lambda e: True).tumbling_window(8)
                .sort().count())
        registry = MetricsRegistry()
        result = plan.run(_events(100), 16, 20, metrics=registry)
        assert result.engine == "row"
        meta = result.snapshot().as_dict()["meta"]
        assert meta["engine"] == "row"
        assert "opaque Python callable" in meta["engine_reason"]

    def test_row_run_without_registry_has_no_snapshot(self):
        result = _plan().run(_events(50), 16, 20, engine="row")
        assert result.snapshot() is None
