"""Fuzz tests: random query chains over random disordered streams.

Hypothesis composes random operator pipelines from a pool of
order-insensitive and order-sensitive stages and checks global engine
invariants that every legal query must satisfy:

* output events are sync-ordered;
* no output event arrives at or below a previously emitted punctuation;
* the pipeline always completes (flush reaches the sink);
* buffered memory returns to zero after the flush.

``TestRowVsCompiled`` is the differential half: random *plans* run
through ``QueryPlan.run`` on both the row engine and the fused columnar
compiler and must be byte-identical — including late-policy effects,
punctuation streams, and raised errors — while non-compilable plans
must silently fall back to the row engine with identical output.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import LateEventError
from repro.core.late import LatePolicy
from repro.engine import DisorderedStreamable, QueryPlan
from repro.engine.event import Event
from repro.core.strings import StringDictionary
from repro.engine.kernels import (
    field,
    field_str_eq,
    field_str_prefix,
    key_field,
    key_str_eq,
    key_str_prefix,
    sync_field,
)
from repro.engine.operators.aggregates import Avg, Count, Max, Min, Sum

#: Six service names whose dense dictionary codes 0..5 coincide with the
#: fuzz events' ``key = t % 6`` — string predicates lower to plain int
#: comparisons over exactly the key domain the streams populate.
_SERVICES = StringDictionary([
    b"auth.api", b"auth.web", b"billing.core", b"billing.jobs",
    b"cart.svc", b"search.svc",
])

# -- stage pool -------------------------------------------------------------


def _where_even(stream):
    return stream.where(lambda e: e.sync_time % 2 == 0)


def _where_keys(stream):
    return stream.where(lambda e: e.key < 70)


def _select(stream):
    return stream.select(lambda p: (p[0],))


def _window_small(stream):
    return stream.tumbling_window(8)


def _window_large(stream):
    return stream.tumbling_window(64)


def _alter(stream):
    return stream.alter_duration(16)


PRE_SORT_STAGES = st.lists(
    st.sampled_from([
        _where_even, _where_keys, _select, _window_small, _window_large,
        _alter,
    ]),
    max_size=3,
)


def _count(stream):
    return stream.count()


def _group_count(stream):
    return stream.group_aggregate(Count())


def _group_sum(stream):
    return stream.group_aggregate(Sum(lambda p: 1))


def _coalesce(stream):
    return stream.coalesce()


def _session(stream):
    return stream.session_window(16)


def _top(stream):
    return stream.group_aggregate(Count()).top_k(3)


POST_SORT_STAGES = st.lists(
    st.sampled_from([
        _count, _group_count, _group_sum, _coalesce, _session, _top,
    ]),
    max_size=1,
)

STREAMS = st.lists(st.integers(0, 300), min_size=1, max_size=200)


class TestRandomQueries:
    @given(
        STREAMS,
        PRE_SORT_STAGES,
        POST_SORT_STAGES,
        st.integers(5, 60),
        st.integers(0, 100),
    )
    @settings(max_examples=120, deadline=None)
    def test_engine_invariants(self, times, pre, post, frequency, latency):
        events = [Event(t, t + 1, key=t % 100, payload=(t, t)) for t in times]
        stream = DisorderedStreamable.from_events(
            events, punctuation_frequency=frequency,
            reorder_latency=latency,
        )
        needs_window = any(f in (_count, _group_count, _group_sum)
                           for f in post)
        has_window = any(f in (_window_small, _window_large) for f in pre)
        for stage in pre:
            stream = stage(stream)
        ordered = stream.to_streamable()
        if needs_window and not has_window:
            ordered = ordered.tumbling_window(8)
        for stage in post:
            ordered = stage(ordered)
        result = ordered.collect()

        # 1. Completion.
        assert result.completed
        # 2. Global sync order.
        assert result.sync_times == sorted(result.sync_times)
        # 3. Punctuations are monotone (the event-vs-punctuation interleaving
        #    contract is covered per-operator in their dedicated tests).
        puncts = result.punctuations
        assert puncts == sorted(puncts)

    @given(STREAMS, st.integers(5, 60))
    @settings(max_examples=60, deadline=None)
    def test_memory_drains_after_flush(self, times, frequency):
        from repro.engine.graph import Pipeline, QueryNode
        from repro.engine.operators import Collector

        stream = (
            DisorderedStreamable.from_events(
                [Event(t) for t in times],
                punctuation_frequency=frequency,
                reorder_latency=50,
            )
            .tumbling_window(8)
            .to_streamable()
            .count()
        )
        sink_node = QueryNode(Collector, ((stream.node, None),))
        pipeline = Pipeline([sink_node])
        pipeline.run(stream.source.elements())
        assert pipeline.buffered_events() == 0

    @given(STREAMS, PRE_SORT_STAGES)
    @settings(max_examples=60, deadline=None)
    def test_conservation_without_filters(self, times, pre):
        """Chains without selection stages must conserve every on-time
        event through the sort."""
        pre = [f for f in pre if f not in (_where_even, _where_keys)]
        events = [Event(t, t + 1, key=t % 100, payload=(t, t)) for t in times]
        stream = DisorderedStreamable.from_events(
            events, punctuation_frequency=10,
            reorder_latency=max(times) + 1,
        )
        for stage in pre:
            stream = stage(stream)
        result = stream.to_streamable().collect()
        assert len(result.events) == len(times)


# -- row vs compiled differential fuzz --------------------------------------


def _p_where_payload(plan):
    return plan.where(field(0) > 10)


def _p_where_key(plan):
    return plan.where(key_field() < 4)


def _p_where_sync(plan):
    return plan.where(sync_field() % 2 == 0)


def _p_project(plan):
    return plan.select_columns((0, 1))


def _p_where_str_key(plan):
    return plan.where(key_str_eq(_SERVICES, b"billing.core"))


def _p_where_str_prefix(plan):
    return plan.where(key_str_prefix(_SERVICES, b"auth."))


PLAN_PRE = st.lists(
    st.sampled_from([
        _p_where_payload, _p_where_key, _p_where_sync, _p_project,
        _p_where_str_key, _p_where_str_prefix,
    ]),
    max_size=2,
)


def _w_tumbling_small(plan):
    return plan.tumbling_window(8)


def _w_tumbling_large(plan):
    return plan.tumbling_window(64)


def _w_hopping(plan):
    return plan.hopping_window(32, 16)


PLAN_WINDOW = st.sampled_from(
    [_w_tumbling_small, _w_tumbling_large, _w_hopping]
)


def _t_count(plan):
    return plan.count()


def _t_sum(plan):
    return plan.aggregate(Sum(field(0)))


def _t_min(plan):
    return plan.aggregate(Min(field(0)))


def _t_max(plan):
    return plan.aggregate(Max(field(1)))


def _t_avg(plan):
    return plan.aggregate(Avg(field(0)))


def _t_group_count(plan):
    return plan.group_aggregate(Count())


def _t_group_sum(plan):
    return plan.group_aggregate(Sum(field(0)))


def _t_group_avg(plan):
    return plan.group_aggregate(Avg(field(1)))


def _t_group_top(plan):
    return plan.group_aggregate(Count()).top_k(2)


def _t_distinct(plan):
    return plan.distinct(field(0))


def _t_distinct_all(plan):
    return plan.distinct()


def _t_session(plan):
    return plan.session_window(16)


def _t_session_avg(plan):
    return plan.session_window(8, Avg(field(0)))


def _t_coalesce(plan):
    return plan.coalesce()


def _t_self_join(plan):
    return plan.self_join()


def _t_pattern(plan):
    return plan.pattern_match(field(0) > 25, field(1) < 4, 24)


def _t_group_apply(plan):
    return plan.group_apply(
        lambda s: s.where(field(1) < 7).tumbling_window(16)
        .aggregate(Sum(field(0)))
    )


def _t_group_apply_stage(plan):
    return plan.group_apply(lambda s: s.where(field(0) > 10))


def _t_raw_top(plan):
    return plan.top_k(2)


PLAN_TERMINAL = st.sampled_from([
    _t_count, _t_sum, _t_min, _t_max, _t_avg,
    _t_group_count, _t_group_sum, _t_group_avg, _t_group_top,
    _t_distinct, _t_distinct_all, _t_session, _t_session_avg,
    _t_coalesce, _t_self_join, _t_pattern,
    _t_group_apply, _t_group_apply_stage, _t_raw_top,
])

PLAN_POLICY = st.sampled_from(
    [LatePolicy.DROP, LatePolicy.ADJUST, LatePolicy.RAISE]
)


def _first_small(event):
    return event.payload[0] < 10


def _then_big(event):
    return event.payload[0] >= 40


def _opaque_where(event):
    return event.key < 4


class TestRowVsCompiled:
    """Differential fuzz: ``engine="row"`` versus ``engine="auto"``.

    Every compilable plan shape must produce byte-identical events and
    punctuations on both engines (and genuinely take the columnar
    path); RAISE plans must raise the identical ``LateEventError`` on
    both; non-compilable shapes must fall back to the row engine —
    silently under ``auto`` — with identical output.

    Each engine also runs a third/fourth leg under a deliberately tiny
    ``memory_budget``, forcing the bounded-memory spill path: output
    must stay byte-identical to the unbudgeted runs while the resident
    buffer never exceeds the budget.
    """

    @given(
        STREAMS,
        PLAN_PRE,
        PLAN_WINDOW,
        PLAN_TERMINAL,
        PLAN_POLICY,
        st.integers(5, 60),
        st.integers(0, 100),
    )
    @settings(max_examples=100, deadline=None)
    def test_compiled_matches_row(self, times, pre, window, terminal,
                                  policy, frequency, latency):
        events = [
            Event(t, t + 1, key=t % 6, payload=(t % 50, t % 9))
            for t in times
        ]
        plan = QueryPlan()
        for stage in pre:
            plan = stage(plan)
        plan = terminal(window(plan).sort(late_policy=policy))
        outcomes = []
        for engine, budget in (
            ("row", None), ("auto", None), ("row", 64), ("auto", 64),
        ):
            try:
                result = plan.run(
                    list(events), frequency, latency, engine=engine,
                    memory_budget=budget,
                )
                outcomes.append((
                    "ok", result.events, result.punctuations, result.engine
                ))
                if budget is None:
                    assert result.spill is None
                else:
                    assert result.spill["peak_buffered_bytes"] <= budget
            except LateEventError as exc:
                outcomes.append(("late", exc.args))
        first = outcomes[0]
        for other in outcomes[1:]:
            assert other[0] == first[0]
            assert other[1] == first[1]  # events, or identical error args
            if first[0] == "ok":
                assert other[2] == first[2]  # punctuations
        if first[0] == "ok":
            assert outcomes[0][3] == outcomes[2][3] == "row"
            assert outcomes[1][3] == outcomes[3][3] == "columnar"

    @pytest.mark.parametrize("build", [
        lambda: (QueryPlan().where(_opaque_where).tumbling_window(8)
                 .sort().count()),
        lambda: (QueryPlan().select(lambda p: (p[0],)).tumbling_window(8)
                 .sort().count()),
        lambda: (QueryPlan().sort()
                 .pattern_match(_first_small, _then_big, 16)),
        lambda: QueryPlan().sort().session_window(16, key_fn=_opaque_where),
        lambda: (QueryPlan().tumbling_window(8)
                 .sort(sorter=lambda: None).count()),
        lambda: (QueryPlan().tumbling_window(8).sort()
                 .top_k(2, score_fn=lambda e: e.payload)),
    ], ids=[
        "lambda-where", "lambda-select", "pattern-match",
        "lambda-session-key", "custom-sorter", "lambda-topk-score",
    ])
    def test_fallback_plans_identical(self, build):
        import random

        rng = random.Random(17)
        events = [
            Event(rng.randrange(200), key=rng.randrange(5),
                  payload=(rng.randrange(50), rng.randrange(9)))
            for _ in range(400)
        ]
        plan = build()
        row = plan.run(list(events), 32, 40, engine="row")
        auto = plan.run(list(events), 32, 40, engine="auto")
        assert auto.engine == "row"
        assert auto.reason
        assert row.events == auto.events
        assert row.punctuations == auto.punctuations
        assert "-- path: row (fallback:" in plan.explain()

    def test_columnar_engine_refuses_uncompilable_plan(self):
        from repro.core.errors import QueryBuildError

        plan = (QueryPlan().where(_opaque_where).tumbling_window(8)
                .sort().count())
        with pytest.raises(QueryBuildError, match="cannot be compiled"):
            plan.run([Event(1)], 4, 0, engine="columnar")


# -- fallback-reason histogram (CI regression gate) -------------------------

# The canonical plan corpus: every query shape the test suite exercises,
# tagged with the execution path it is *expected* to take.  Shapes that
# once compiled must never silently regress to the row engine — the gate
# below fails the build if they do.
CANONICAL_CORPUS = {
    "count": lambda: QueryPlan().tumbling_window(8).sort().count(),
    "sum": lambda: (QueryPlan().tumbling_window(8).sort()
                    .aggregate(Sum(field(0)))),
    "avg": lambda: (QueryPlan().hopping_window(32, 16).sort()
                    .aggregate(Avg(field(0)))),
    "min": lambda: (QueryPlan().tumbling_window(8).sort()
                    .aggregate(Min(field(0)))),
    "max": lambda: (QueryPlan().tumbling_window(8).sort()
                    .aggregate(Max(field(1)))),
    "group-count": lambda: (QueryPlan().tumbling_window(8).sort()
                            .group_aggregate(Count())),
    "group-avg": lambda: (QueryPlan().tumbling_window(8).sort()
                          .group_aggregate(Avg(field(0)))),
    "group-top-k": lambda: (QueryPlan().tumbling_window(8).sort()
                            .group_aggregate(Count()).top_k(2)),
    "filtered-agg": lambda: (QueryPlan().where(field(0) > 10)
                             .where(key_field() < 4).tumbling_window(8)
                             .sort().aggregate(Sum(field(0)))),
    "projected-agg": lambda: (QueryPlan().select_columns((0,))
                              .tumbling_window(8).sort().count()),
    "distinct": lambda: QueryPlan().sort().distinct(field(0)),
    "distinct-all": lambda: QueryPlan().sort().distinct(),
    "session-window": lambda: QueryPlan().sort().session_window(16),
    "session-avg": lambda: (QueryPlan().sort()
                            .session_window(8, Avg(field(0)))),
    "coalesce": lambda: QueryPlan().tumbling_window(8).sort().coalesce(),
    "self-join": lambda: QueryPlan().sort().self_join(),
    "pattern-match": lambda: (QueryPlan().sort()
                              .pattern_match(field(0) > 25, field(1) < 4,
                                             16)),
    "group-apply-agg": lambda: QueryPlan().sort().group_apply(
        lambda s: s.where(field(1) < 7).tumbling_window(16)
        .aggregate(Sum(field(0)))
    ),
    "group-apply-stages": lambda: (QueryPlan().sort()
                                   .group_apply(
                                       lambda s: s.where(field(0) > 10))),
    "raw-top-k": lambda: QueryPlan().tumbling_window(8).sort().top_k(2),
    # String predicates lower to dictionary-code int comparisons and
    # must stay on the columnar path (PR: string keys end-to-end).
    "string-key-eq": lambda: (
        QueryPlan().where(key_str_eq(_SERVICES, b"cart.svc"))
        .tumbling_window(8).sort().count()),
    "string-key-prefix": lambda: (
        QueryPlan().where(key_str_prefix(_SERVICES, b"billing."))
        .tumbling_window(8).sort().group_aggregate(Count())),
    "string-field-eq": lambda: (
        QueryPlan().where(field_str_eq(1, _SERVICES, b"auth.web"))
        .tumbling_window(8).sort().aggregate(Sum(field(0)))),
    "string-field-prefix": lambda: (
        QueryPlan().where(field_str_prefix(1, _SERVICES, b"search."))
        .tumbling_window(8).sort().count()),
    # Genuinely uncompilable: opaque Python callables and custom sorters.
    "lambda-where": lambda: (QueryPlan().where(_opaque_where)
                             .tumbling_window(8).sort().count()),
    "lambda-select": lambda: (QueryPlan().select(lambda p: (p[0],))
                              .tumbling_window(8).sort().count()),
    "lambda-pattern": lambda: (QueryPlan().sort()
                               .pattern_match(_first_small, _then_big, 16)),
    "lambda-session-key": lambda: (QueryPlan().sort()
                                   .session_window(16,
                                                   key_fn=_opaque_where)),
    "lambda-topk-score": lambda: (QueryPlan().tumbling_window(8).sort()
                                  .top_k(2, score_fn=lambda e: e.payload)),
    "custom-sorter": lambda: (QueryPlan().tumbling_window(8)
                              .sort(sorter=lambda: None).count()),
}

ROW_SHAPES = frozenset({
    "lambda-where", "lambda-select", "lambda-pattern",
    "lambda-session-key", "lambda-topk-score", "custom-sorter",
})


def _bucket(reason):
    if "opaque Python callable" in reason:
        return "opaque-python-callable"
    if "custom sorter" in reason:
        return "custom-sorter"
    return reason


class TestFallbackHistogram:
    """Export the fallback-reason histogram and gate lowering coverage.

    The histogram lands in ``fallback_histogram.json`` at the repo root
    so coverage is diffable across commits.  Two assertions act as the
    CI regression gate:

    * every shape the compiler has ever lowered still compiles
      (``ROW_SHAPES`` is the exhaustive allow-list of fallbacks);
    * the bucketed histogram has at most two categories — opaque Python
      callables and custom sorters are the only residual fallbacks.
    """

    def test_histogram_export_and_regression_gate(self):
        import json
        import pathlib

        paths = {}
        histogram = {}
        for name, build in CANONICAL_CORPUS.items():
            from repro.engine.compiler import analyze_plan

            path, reason = analyze_plan(build())
            paths[name] = {"path": path, "reason": reason}
            if path == "row":
                bucket = _bucket(reason)
                histogram[bucket] = histogram.get(bucket, 0) + 1

        out = pathlib.Path(__file__).resolve().parent.parent
        out = out / "fallback_histogram.json"
        out.write_text(json.dumps(
            {"histogram": dict(sorted(histogram.items())), "plans": paths},
            indent=2, sort_keys=False,
        ) + "\n")

        regressions = sorted(
            name for name, info in paths.items()
            if info["path"] == "row" and name not in ROW_SHAPES
        )
        assert not regressions, (
            f"previously-lowered shapes fell back to the row engine: "
            f"{regressions} "
            f"({ {n: paths[n]['reason'] for n in regressions} })"
        )
        assert set(histogram) <= {"opaque-python-callable", "custom-sorter"}
        assert len(histogram) <= 2
