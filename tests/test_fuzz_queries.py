"""Fuzz tests: random query chains over random disordered streams.

Hypothesis composes random operator pipelines from a pool of
order-insensitive and order-sensitive stages and checks global engine
invariants that every legal query must satisfy:

* output events are sync-ordered;
* no output event arrives at or below a previously emitted punctuation;
* the pipeline always completes (flush reaches the sink);
* buffered memory returns to zero after the flush.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import DisorderedStreamable
from repro.engine.event import Event
from repro.engine.operators.aggregates import Count, Sum

# -- stage pool -------------------------------------------------------------


def _where_even(stream):
    return stream.where(lambda e: e.sync_time % 2 == 0)


def _where_keys(stream):
    return stream.where(lambda e: e.key < 70)


def _select(stream):
    return stream.select(lambda p: (p[0],))


def _window_small(stream):
    return stream.tumbling_window(8)


def _window_large(stream):
    return stream.tumbling_window(64)


def _alter(stream):
    return stream.alter_duration(16)


PRE_SORT_STAGES = st.lists(
    st.sampled_from([
        _where_even, _where_keys, _select, _window_small, _window_large,
        _alter,
    ]),
    max_size=3,
)


def _count(stream):
    return stream.count()


def _group_count(stream):
    return stream.group_aggregate(Count())


def _group_sum(stream):
    return stream.group_aggregate(Sum(lambda p: 1))


def _coalesce(stream):
    return stream.coalesce()


def _session(stream):
    return stream.session_window(16)


def _top(stream):
    return stream.group_aggregate(Count()).top_k(3)


POST_SORT_STAGES = st.lists(
    st.sampled_from([
        _count, _group_count, _group_sum, _coalesce, _session, _top,
    ]),
    max_size=1,
)

STREAMS = st.lists(st.integers(0, 300), min_size=1, max_size=200)


class TestRandomQueries:
    @given(
        STREAMS,
        PRE_SORT_STAGES,
        POST_SORT_STAGES,
        st.integers(5, 60),
        st.integers(0, 100),
    )
    @settings(max_examples=120, deadline=None)
    def test_engine_invariants(self, times, pre, post, frequency, latency):
        events = [Event(t, t + 1, key=t % 100, payload=(t, t)) for t in times]
        stream = DisorderedStreamable.from_events(
            events, punctuation_frequency=frequency,
            reorder_latency=latency,
        )
        needs_window = any(f in (_count, _group_count, _group_sum)
                           for f in post)
        has_window = any(f in (_window_small, _window_large) for f in pre)
        for stage in pre:
            stream = stage(stream)
        ordered = stream.to_streamable()
        if needs_window and not has_window:
            ordered = ordered.tumbling_window(8)
        for stage in post:
            ordered = stage(ordered)
        result = ordered.collect()

        # 1. Completion.
        assert result.completed
        # 2. Global sync order.
        assert result.sync_times == sorted(result.sync_times)
        # 3. Punctuations are monotone (the event-vs-punctuation interleaving
        #    contract is covered per-operator in their dedicated tests).
        puncts = result.punctuations
        assert puncts == sorted(puncts)

    @given(STREAMS, st.integers(5, 60))
    @settings(max_examples=60, deadline=None)
    def test_memory_drains_after_flush(self, times, frequency):
        from repro.engine.graph import Pipeline, QueryNode
        from repro.engine.operators import Collector

        stream = (
            DisorderedStreamable.from_events(
                [Event(t) for t in times],
                punctuation_frequency=frequency,
                reorder_latency=50,
            )
            .tumbling_window(8)
            .to_streamable()
            .count()
        )
        sink_node = QueryNode(Collector, ((stream.node, None),))
        pipeline = Pipeline([sink_node])
        pipeline.run(stream.source.elements())
        assert pipeline.buffered_events() == 0

    @given(STREAMS, PRE_SORT_STAGES)
    @settings(max_examples=60, deadline=None)
    def test_conservation_without_filters(self, times, pre):
        """Chains without selection stages must conserve every on-time
        event through the sort."""
        pre = [f for f in pre if f not in (_where_even, _where_keys)]
        events = [Event(t, t + 1, key=t % 100, payload=(t, t)) for t in times]
        stream = DisorderedStreamable.from_events(
            events, punctuation_frequency=10,
            reorder_latency=max(times) + 1,
        )
        for stage in pre:
            stream = stage(stream)
        result = stream.to_streamable().collect()
        assert len(result.events) == len(times)
