"""Tests for shared-fan-out multi-query execution."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryBuildError
from repro.engine import DisorderedStreamable
from repro.framework import make_query
from repro.framework.multiquery import build_multi_query

LATENCIES = [500, 5_000]
FREQ = 500


def build(dataset, queries):
    disordered = DisorderedStreamable.from_dataset(
        dataset, punctuation_frequency=FREQ
    ).tumbling_window(500)
    return build_multi_query(disordered, LATENCIES, queries)


class TestConstruction:
    def test_requires_queries_and_latencies(self):
        disordered = DisorderedStreamable.from_elements([])
        with pytest.raises(QueryBuildError, match="query"):
            build_multi_query(disordered, LATENCIES, {})
        q1 = make_query("Q1")
        with pytest.raises(QueryBuildError, match="latency"):
            build_multi_query(disordered, [], {"q1": (q1.piq, q1.merge)})

    def test_query_names(self, cloudlog_small):
        q1, q2 = make_query("Q1", 500), make_query("Q2", 500)
        run = build(cloudlog_small, {
            "counts": (q1.piq, q1.merge),
            "groups": (q2.piq, q2.merge),
        })
        assert run.query_names == ["counts", "groups"]


class TestExecution:
    def test_each_query_matches_its_standalone_run(self, cloudlog_small):
        q1, q2 = make_query("Q1", 500), make_query("Q2", 500)
        results = build(cloudlog_small, {
            "q1": (q1.piq, q1.merge),
            "q2": (q2.piq, q2.merge),
        }).run()

        for query, name in ((q1, "q1"), (q2, "q2")):
            standalone = (
                DisorderedStreamable.from_dataset(
                    cloudlog_small, punctuation_frequency=FREQ
                )
                .tumbling_window(500)
                .to_streamables(LATENCIES, piq=query.piq, merge=query.merge)
                .run()
            )
            got = results[name]
            for i in range(len(LATENCIES)):
                assert (
                    [(e.sync_time, e.key, e.payload)
                     for e in got.output_events(i)]
                    == [(e.sync_time, e.key, e.payload)
                        for e in standalone.output_events(i)]
                ), (name, i)

    def test_shared_partition_single_ledger(self, cloudlog_small):
        q1 = make_query("Q1", 500)
        results = build(cloudlog_small, {
            "a": (q1.piq, q1.merge),
            "b": (q1.piq, q1.merge),
        }).run()
        # Both results view the same partition instance: one ingest pass.
        assert results["a"].partition is results["b"].partition
        assert results["a"].partition.total_seen == len(cloudlog_small)

    def test_passthrough_queries(self, synthetic_small):
        results = build(synthetic_small, {"raw": (None, None)}).run()
        raw = results["raw"]
        assert raw.completeness(1) == 1.0
        final = raw.output_events(1)
        assert [e.sync_time for e in final] == sorted(
            e.sync_time for e in final
        )

    def test_latency_measured_per_query(self, cloudlog_small):
        q1 = make_query("Q1", 500)
        results = build(cloudlog_small, {"q1": (q1.piq, q1.merge)}).run()
        stats = results["q1"].measured_latency(1)
        assert stats["samples"] > 0


class TestStreamablesSubscribe:
    def test_streaming_subscription(self, synthetic_small):
        early, late = [], []
        streamables = (
            DisorderedStreamable.from_dataset(
                synthetic_small, punctuation_frequency=500
            )
            .to_streamables([100, 2_000])
        )
        pipeline = streamables.subscribe([early.append, late.append])
        pipeline.run(streamables._source.elements())
        assert len(late) >= len(early) > 0
        assert [e.sync_time for e in late] == sorted(
            e.sync_time for e in late
        )

    def test_wrong_callback_count(self, synthetic_small):
        streamables = (
            DisorderedStreamable.from_dataset(
                synthetic_small, punctuation_frequency=500
            )
            .to_streamables([100, 2_000])
        )
        with pytest.raises(ValueError, match="expected 2 callbacks"):
            streamables.subscribe([lambda e: None])
