"""Tests for offline Patience sort, including Propositions 3.1–3.3."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patience import PatienceSorter, patience_sort
from repro.metrics.disorder import (
    count_interleaved_runs,
    count_natural_runs,
)


class TestCorrectness:
    def test_paper_example(self):
        assert patience_sort([2, 6, 5, 1, 4, 3, 7, 8]) == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_empty(self):
        assert patience_sort([]) == []

    def test_single(self):
        assert patience_sort([42]) == [42]

    def test_sorted_input(self):
        data = list(range(200))
        assert patience_sort(data) == data

    def test_reverse_input(self):
        assert patience_sort(list(range(200, 0, -1))) == list(range(1, 201))

    def test_all_equal(self):
        assert patience_sort([7] * 50) == [7] * 50

    def test_with_key_function(self):
        data = [(3, "c"), (1, "a"), (2, "b")]
        assert patience_sort(data, key=lambda p: p[0]) == [
            (1, "a"), (2, "b"), (3, "c"),
        ]

    @pytest.mark.parametrize("merge", ["huffman", "pairwise", "kway"])
    def test_all_merge_schedules_sort(self, merge, rng):
        data = [rng.randrange(500) for _ in range(2000)]
        assert patience_sort(data, merge=merge) == sorted(data)

    @given(st.lists(st.integers(-10_000, 10_000)))
    @settings(max_examples=150, deadline=None)
    def test_matches_builtin_sorted(self, data):
        assert patience_sort(data) == sorted(data)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False)))
    @settings(max_examples=60, deadline=None)
    def test_floats(self, data):
        assert patience_sort(data) == sorted(data)


class TestPropositions:
    """The run-count bounds of Section III-C."""

    @staticmethod
    def _run_count(data, speculative=False):
        sorter = PatienceSorter(speculative=speculative)
        sorter.extend(data)
        return sorter.run_count

    def test_proposition_31_interleaving_bound(self, rng):
        """k <= d when the input interleaves d sorted runs."""
        d = 7
        sources = [sorted(rng.randrange(10_000) for _ in range(100))
                   for _ in range(d)]
        merged = []
        cursors = [0] * d
        while any(c < len(s) for c, s in zip(cursors, sources)):
            i = rng.randrange(d)
            if cursors[i] < len(sources[i]):
                merged.append(sources[i][cursors[i]])
                cursors[i] += 1
        assert self._run_count(merged) <= d

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_proposition_32_distinct_values_bound(self, data):
        """k <= number of distinct timestamps."""
        assert self._run_count(data) <= len(set(data))

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_proposition_33_natural_runs_bound(self, data):
        """k <= number of natural runs."""
        assert self._run_count(data) <= count_natural_runs(data)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_greedy_partition_is_interleaving_optimal(self, data):
        """Our greedy equals the Interleaved disorder measure exactly
        (Dilworth), so Proposition 3.1 is tight."""
        assert self._run_count(data) == count_interleaved_runs(data)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_srs_never_changes_run_count(self, data):
        assert self._run_count(data, speculative=False) == self._run_count(
            data, speculative=True
        )


class TestStats:
    def test_inserted_and_emitted_counts(self):
        sorter = PatienceSorter()
        sorter.extend([3, 1, 2])
        result = sorter.result()
        assert result == [1, 2, 3]
        assert sorter.stats.inserted == 3
        assert sorter.stats.emitted == 3

    def test_result_drains_sorter(self):
        sorter = PatienceSorter()
        sorter.extend([2, 1])
        assert sorter.result() == [1, 2]
        assert sorter.run_count == 0
        assert sorter.result() == []

    def test_sample_every_records_history(self):
        sorter = PatienceSorter(sample_every=10)
        sorter.extend(random.Random(0).randrange(100) for _ in range(100))
        history = sorter.stats.run_count_history
        assert len(history) == 10
        inserted_marks = [n for n, _ in history]
        assert inserted_marks == list(range(10, 101, 10))
        # Patience run counts never decrease during the partition phase.
        run_counts = [r for _, r in history]
        assert run_counts == sorted(run_counts)
