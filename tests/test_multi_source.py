"""Tests for multi-source pipeline execution (Pipeline.run_multi)."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryBuildError
from repro.engine import Event, Punctuation
from repro.engine.graph import Pipeline, QueryNode, source_node
from repro.engine.operators import Collector, Union
from repro.engine.operators.join import TemporalJoin
from repro.engine.operators.sort import Sort


def elements(times, punct):
    out = [Event(t) for t in times]
    out.append(Punctuation(punct))
    return out


class TestRunMulti:
    def _union_pipeline(self):
        left = source_node("left")
        right = source_node("right")
        union = QueryNode(Union, ((left, None), (right, None)))
        sink = QueryNode(Collector, ((union, None),))
        pipeline = Pipeline([sink])
        return pipeline, left, right, sink

    def test_two_source_union(self):
        pipeline, left, right, sink = self._union_pipeline()
        pipeline.run_multi({
            left: elements([1, 4, 7], punct=100),
            right: elements([2, 3, 9], punct=100),
        })
        collector = pipeline.operator_for(sink)
        assert collector.sync_times == [1, 2, 3, 4, 7, 9]
        assert collector.completed

    def test_uneven_source_lengths(self):
        pipeline, left, right, sink = self._union_pipeline()
        pipeline.run_multi({
            left: elements(list(range(0, 20, 2)), punct=100),
            right: elements([1], punct=100),
        })
        collector = pipeline.operator_for(sink)
        assert collector.sync_times == sorted([1] + list(range(0, 20, 2)))

    def test_missing_source_rejected(self):
        pipeline, left, right, sink = self._union_pipeline()
        with pytest.raises(QueryBuildError, match="got elements for 1"):
            pipeline.run_multi({left: []})

    def test_non_source_node_rejected(self):
        pipeline, left, right, sink = self._union_pipeline()
        with pytest.raises(QueryBuildError, match="not a source"):
            pipeline.run_multi({left: [], right: [], sink: []})

    def test_two_source_join(self):
        left = source_node("clicks")
        right = source_node("views")
        join = QueryNode(TemporalJoin, ((left, None), (right, None)))
        sink = QueryNode(Collector, ((join, None),))
        pipeline = Pipeline([sink])
        pipeline.run_multi({
            left: [Event(0, 10, key=1, payload="click"), Punctuation(50)],
            right: [Event(5, 15, key=1, payload="view"), Punctuation(50)],
        })
        collector = pipeline.operator_for(sink)
        assert [e.payload for e in collector.events] == [("click", "view")]

    def test_disordered_sources_sorted_independently(self):
        """Two disordered feeds, each through its own sorting operator,
        then unioned — a two-ingress deployment in miniature."""
        left = source_node("dc1")
        right = source_node("dc2")
        sort_l = QueryNode(Sort, ((left, None),))
        sort_r = QueryNode(Sort, ((right, None),))
        union = QueryNode(Union, ((sort_l, None), (sort_r, None)))
        sink = QueryNode(Collector, ((union, None),))
        pipeline = Pipeline([sink])
        pipeline.run_multi({
            left: elements([5, 1, 3], punct=10),
            right: elements([4, 0, 2], punct=10),
        })
        collector = pipeline.operator_for(sink)
        assert collector.sync_times == [0, 1, 2, 3, 4, 5]
