"""Tests for the Streamable / DisorderedStreamable fluent API."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryBuildError
from repro.engine import DisorderedStreamable, Event, Punctuation, Streamable
from repro.engine.operators.aggregates import Sum


def ordered_elements(times, punctuate_at=()):
    elements = []
    marks = set(punctuate_at)
    for t in times:
        elements.append(Event(t, payload=(t,)))
        if t in marks:
            elements.append(Punctuation(t))
    return elements


class TestStreamable:
    def test_where_select_chain(self):
        elements = ordered_elements(range(10))
        out = (
            Streamable.from_elements(elements)
            .where(lambda e: e.sync_time % 2 == 0)
            .select(lambda p: (p[0] * 10,))
            .collect()
        )
        assert out.payloads == [(0,), (20,), (40,), (60,), (80,)]

    def test_windowed_count(self):
        elements = ordered_elements(range(100))
        out = (
            Streamable.from_elements(elements)
            .tumbling_window(10)
            .count()
            .collect()
        )
        assert out.payloads == [10] * 10
        assert out.sync_times == list(range(0, 100, 10))

    def test_group_aggregate(self):
        elements = [Event(0, 10, key=i % 3) for i in range(9)]
        out = (
            Streamable.from_elements(elements)
            .group_aggregate(Sum(lambda p: 1))
            .collect()
        )
        assert [(e.key, e.payload) for e in out.events] == [
            (0, 3), (1, 3), (2, 3),
        ]

    def test_union_requires_shared_source(self):
        a = Streamable.from_elements([])
        b = Streamable.from_elements([])
        with pytest.raises(QueryBuildError, match="share one source"):
            a.union(b)

    def test_union_diamond_shares_upstream(self):
        """A self-union through two filters sees each input event once per
        branch — the materialized source must not be duplicated."""
        elements = ordered_elements(range(10), punctuate_at=[9])
        base = Streamable.from_elements(elements)
        evens = base.where(lambda e: e.sync_time % 2 == 0)
        odds = base.where(lambda e: e.sync_time % 2 == 1)
        out = evens.union(odds).collect()
        assert sorted(out.sync_times) == list(range(10))

    def test_apply_none_is_identity(self):
        stream = Streamable.from_elements([])
        assert stream.apply(None) is stream

    def test_apply_rejects_non_streamable(self):
        stream = Streamable.from_elements([])
        with pytest.raises(QueryBuildError, match="must return a Streamable"):
            stream.apply(lambda s: 42)

    def test_subscribe_callback(self):
        seen = []
        puncts = []
        flushed = []
        elements = ordered_elements([1, 2], punctuate_at=[2])
        pipeline = Streamable.from_elements([]).subscribe(
            seen.append, puncts.append, lambda: flushed.append(True)
        )
        pipeline.run(elements)
        assert [e.sync_time for e in seen] == [1, 2]
        assert puncts == [2]
        assert flushed == [True]

    def test_iterator_source_single_shot(self):
        stream = Streamable.from_elements(iter([Event(1)]))
        stream.collect()
        with pytest.raises(QueryBuildError, match="already consumed"):
            stream.collect()

    def test_list_source_reusable(self):
        stream = Streamable.from_elements([Event(1)])
        assert stream.collect().sync_times == [1]
        assert stream.collect().sync_times == [1]


class TestDisorderedStreamable:
    def test_order_sensitive_ops_forbidden(self):
        disordered = DisorderedStreamable.from_elements([])
        for name in ("count", "aggregate", "group_aggregate", "top_k",
                     "pattern_match", "union"):
            with pytest.raises(QueryBuildError, match="order-sensitive"):
                getattr(disordered, name)

    def test_unknown_attribute_raises_attribute_error(self):
        disordered = DisorderedStreamable.from_elements([])
        with pytest.raises(AttributeError):
            disordered.not_a_method

    def test_to_streamable_sorts(self):
        elements = [Event(t) for t in [5, 1, 4, 2, 3]]
        out = (
            DisorderedStreamable.from_elements(elements)
            .to_streamable()
            .collect()
        )
        assert out.sync_times == [1, 2, 3, 4, 5]

    def test_pushdown_then_sort_then_count(self):
        times = [3, 1, 2, 0, 7, 5, 6, 4, 11, 9, 10, 8]
        elements = [Event(t, payload=(t,)) for t in times]
        out = (
            DisorderedStreamable.from_elements(elements)
            .where(lambda e: e.payload[0] % 2 == 0)
            .tumbling_window(4)
            .to_streamable()
            .count()
            .collect()
        )
        assert [(e.sync_time, e.payload) for e in out.events] == [
            (0, 2), (4, 2), (8, 2),
        ]

    def test_custom_sorter_factory(self):
        from repro.sorting import make_online_sorter

        elements = [Event(t) for t in [2, 0, 1]]
        out = (
            DisorderedStreamable.from_elements(elements)
            .to_streamable(
                sorter=lambda: make_online_sorter(
                    "heapsort", key=lambda e: e.sync_time
                )
            )
            .collect()
        )
        assert out.sync_times == [0, 1, 2]

    def test_non_callable_sorter_rejected(self):
        disordered = DisorderedStreamable.from_elements([])
        with pytest.raises(QueryBuildError, match="factory"):
            disordered.to_streamable(sorter=object())

    def test_from_dataset_ingress(self, synthetic_small):
        out = (
            DisorderedStreamable.from_dataset(
                synthetic_small, punctuation_frequency=500,
                reorder_latency=1_000,
            )
            .to_streamable()
            .collect()
        )
        assert out.sync_times == sorted(out.sync_times)
        assert len(out.events) == len(synthetic_small)

    def test_window_pushdown_equivalent_to_post_sort_window(self):
        """Sort-as-needed must not change results: window-below-sort equals
        window-above-sort for tumbling windows."""
        times = [13, 2, 27, 9, 40, 31, 5, 22, 16, 38]
        elements = [Event(t) for t in times]
        below = (
            DisorderedStreamable.from_elements(list(elements))
            .tumbling_window(10)
            .to_streamable()
            .count()
            .collect()
        )
        above = (
            DisorderedStreamable.from_elements(list(elements))
            .to_streamable()
            .apply(lambda s: s.tumbling_window(10).count())
            .collect()
        )
        assert [(e.sync_time, e.payload) for e in below.events] == [
            (e.sync_time, e.payload) for e in above.events
        ]
