"""Tests for the sorted-run data structures (repro.core.runs)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runs import RunPool, SortedRun
from repro.core.stats import SorterStats


class TestSortedRun:
    def test_empty_run_is_falsy(self):
        run = SortedRun()
        assert not run
        assert len(run) == 0

    def test_append_and_len(self):
        run = SortedRun()
        run.append(1, "a")
        run.append(3, "b")
        assert len(run) == 2
        assert run.head_key == 1
        assert run.tail_key == 3

    def test_cut_head_prefix(self):
        run = SortedRun()
        for k in [1, 2, 5, 7]:
            run.append(k, k * 10)
        keys, items = run.cut_head(5)
        assert keys == [1, 2, 5]
        assert items == [10, 20, 50]
        assert len(run) == 1
        assert run.head_key == 7

    def test_cut_head_nothing_due(self):
        run = SortedRun()
        run.append(10, "x")
        keys, items = run.cut_head(5)
        assert keys == [] and items == []
        assert len(run) == 1

    def test_cut_head_everything(self):
        run = SortedRun()
        run.append(1, "x")
        run.append(2, "y")
        keys, items = run.cut_head(99)
        assert keys == [1, 2]
        assert not run

    def test_cut_head_includes_equal_timestamp(self):
        run = SortedRun()
        run.append(5, "a")
        run.append(5, "b")
        run.append(6, "c")
        keys, items = run.cut_head(5)
        assert items == ["a", "b"]

    def test_repeated_cuts_trigger_compaction(self):
        run = SortedRun()
        for k in range(1000):
            run.append(k, k)
        emitted = []
        for bound in range(0, 1000, 10):
            keys, _ = run.cut_head(bound)
            emitted.extend(keys)
        # After many cuts the backing list must have been compacted.
        assert run.start < 200
        keys, _ = run.cut_head(10_000)
        emitted.extend(keys)
        assert emitted == list(range(1000))

    def test_live_view(self):
        run = SortedRun()
        for k in [1, 2, 3]:
            run.append(k, -k)
        run.cut_head(1)
        keys, items = run.live()
        assert keys == [2, 3]
        assert items == [-2, -3]

    def test_repr_smoke(self):
        run = SortedRun()
        assert "empty" in repr(run)
        run.append(1, None)
        assert "head=1" in repr(run)


class TestRunPool:
    def test_single_ascending_input_one_run(self):
        pool = RunPool()
        for k in range(100):
            pool.insert(k, k)
        assert len(pool) == 1
        pool.check_invariants()

    def test_descending_input_run_per_element(self):
        pool = RunPool()
        for k in range(100, 0, -1):
            pool.insert(k, k)
        assert len(pool) == 100
        pool.check_invariants()

    def test_paper_figure3_example(self):
        """Figure 3: [2,6,5,1,4,3,7,8] partitions into 4 runs."""
        pool = RunPool(speculative=False)
        for k in [2, 6, 5, 1, 4, 3, 7, 8]:
            pool.insert(k, k)
        assert len(pool) == 4
        runs = [run.live()[0] for run in pool.runs]
        assert runs == [[2, 6, 7, 8], [5], [1, 4], [3]]
        pool.check_invariants()

    def test_equal_keys_share_a_run(self):
        pool = RunPool()
        for _ in range(10):
            pool.insert(5, None)
        assert len(pool) == 1

    def test_srs_hits_counted_on_long_natural_runs(self):
        stats = SorterStats()
        pool = RunPool(speculative=True, stats=stats)
        # Two interleaved ascending sequences with long consecutive chunks.
        data = list(range(0, 50)) + list(range(25, 75))
        for k in data:
            pool.insert(k, k)
        assert stats.srs_hits > 50
        pool.check_invariants()

    def test_srs_disabled_counts_only_binary_searches(self):
        stats = SorterStats()
        pool = RunPool(speculative=False, stats=stats)
        for k in range(20):
            pool.insert(k, k)
        assert stats.srs_hits == 0
        assert stats.binary_searches == 20

    def test_cut_heads_removes_empty_runs(self):
        pool = RunPool()
        for k in [2, 6, 5, 1]:
            pool.insert(k, k)
        heads = pool.cut_heads(2)
        merged = sorted(k for keys, _ in heads for k in keys)
        assert merged == [1, 2]
        assert len(pool) == 2  # the runs holding only 1 and 2 are gone
        pool.check_invariants()

    def test_cut_heads_no_removal_keeps_tails(self):
        pool = RunPool()
        for k in [1, 5, 2, 6]:
            pool.insert(k, k)
        before = list(pool.tails)
        heads = pool.cut_heads(-10)
        assert heads == []
        assert pool.tails == before

    def test_drain_returns_all_and_empties(self):
        pool = RunPool()
        data = [3, 1, 4, 1, 5, 9, 2, 6]
        for k in data:
            pool.insert(k, k)
        runs = pool.drain()
        assert sorted(k for keys, _ in runs for k in keys) == sorted(data)
        assert len(pool) == 0

    def test_srs_correct_after_run_removal(self):
        """After cut_heads removes runs, the stale SRS hint must not
        misplace elements."""
        pool = RunPool(speculative=True)
        for k in [10, 5, 1]:
            pool.insert(k, k)
        pool.cut_heads(1)  # removes the run holding 1
        for k in [6, 11, 2]:
            pool.insert(k, k)
        pool.check_invariants()

    @given(st.lists(st.integers(-1000, 1000), max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_invariants_hold_under_arbitrary_inserts(self, values):
        pool = RunPool(speculative=True)
        for v in values:
            pool.insert(v, v)
        pool.check_invariants()
        total = sum(len(run) for run in pool.runs)
        assert total == len(values)

    @given(
        st.lists(st.integers(0, 500), min_size=1, max_size=200),
        st.lists(st.integers(0, 500), min_size=1, max_size=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_invariants_hold_under_cuts(self, values, raw_cuts):
        pool = RunPool(speculative=True)
        cuts = sorted(raw_cuts)
        per_cut = max(len(values) // len(cuts), 1)
        idx = 0
        emitted = []
        for cut in cuts:
            for v in values[idx:idx + per_cut]:
                pool.insert(v, v)
            idx += per_cut
            for keys, _ in pool.cut_heads(cut):
                emitted.extend(keys)
            pool.check_invariants()
            for keys, _ in [run.live() for run in pool.runs]:
                assert all(k > cut for k in keys)

    def test_speculative_and_plain_produce_same_run_partition(self):
        """SRS is a shortcut, not a different policy: identical placement."""
        import random

        rnd = random.Random(3)
        values = [rnd.randrange(100) for _ in range(500)]
        plain = RunPool(speculative=False)
        spec = RunPool(speculative=True)
        for v in values:
            plain.insert(v, v)
            spec.insert(v, v)
        assert [r.live() for r in plain.runs] == [r.live() for r in spec.runs]


def test_check_invariants_detects_corruption():
    pool = RunPool()
    pool.insert(1, 1)
    pool.tails[0] = 99  # corrupt
    with pytest.raises(AssertionError):
        pool.check_invariants()
