"""Tests for the temporal join operator (repro.engine.operators.join)."""

from __future__ import annotations

from repro.engine.event import Event, Punctuation
from repro.engine.operators import Collector
from repro.engine.operators.join import TemporalJoin


def make(result_selector=None):
    join = TemporalJoin(result_selector)
    sink = Collector()
    join.add_downstream(sink)
    return join, sink


class TestTemporalJoin:
    def test_overlapping_same_key_match(self):
        join, sink = make()
        join.ports[0].on_event(Event(0, 10, key=1, payload="L"))
        join.ports[1].on_event(Event(5, 15, key=1, payload="R"))
        assert len(sink.events) == 1
        match = sink.events[0]
        assert (match.sync_time, match.other_time) == (5, 10)
        assert match.payload == ("L", "R")

    def test_different_keys_do_not_match(self):
        join, sink = make()
        join.ports[0].on_event(Event(0, 10, key=1))
        join.ports[1].on_event(Event(0, 10, key=2))
        assert sink.events == []

    def test_disjoint_intervals_do_not_match(self):
        join, sink = make()
        join.ports[0].on_event(Event(0, 5, key=1))
        join.ports[1].on_event(Event(5, 10, key=1))  # touching, not overlap
        assert sink.events == []

    def test_result_selector(self):
        join, sink = make(result_selector=lambda l, r: l + r)
        join.ports[0].on_event(Event(0, 10, key=1, payload=2))
        join.ports[1].on_event(Event(0, 10, key=1, payload=3))
        assert sink.events[0].payload == 5

    def test_one_to_many(self):
        join, sink = make()
        join.ports[0].on_event(Event(0, 100, key=1, payload="L"))
        for t in (10, 20, 30):
            join.ports[1].on_event(Event(t, t + 5, key=1, payload=t))
        assert [e.payload for e in sink.events] == [
            ("L", 10), ("L", 20), ("L", 30),
        ]
        assert join.matches == 3

    def test_left_right_payload_order_is_stable(self):
        join, sink = make()
        join.ports[1].on_event(Event(0, 10, key=1, payload="R"))
        join.ports[0].on_event(Event(0, 10, key=1, payload="L"))
        # Left payload first regardless of arrival side.
        assert sink.events[0].payload == ("L", "R")

    def test_punctuation_is_min_of_watermarks(self):
        join, sink = make()
        join.ports[0].on_punctuation(Punctuation(10))
        assert sink.punctuations == []
        join.ports[1].on_punctuation(Punctuation(7))
        assert sink.punctuations == [7]

    def test_state_evicted_by_opposite_watermark(self):
        join, sink = make()
        join.ports[0].on_event(Event(0, 10, key=1))
        join.ports[0].on_event(Event(0, 50, key=2))
        assert join.buffered_count() == 2
        join.ports[1].on_punctuation(Punctuation(20))
        # The [0,10) event can never match future right events (sync > 20).
        assert join.buffered_count() == 1

    def test_flush_requires_both_sides(self):
        join, sink = make()
        join.ports[0].on_flush()
        assert not sink.completed
        join.ports[1].on_flush()
        assert sink.completed
        assert join.buffered_count() == 0

    def test_windowed_join_end_to_end(self):
        """Join two filtered substreams of one source on window overlap —
        the classic 'same user did A and B in the same window' query."""
        from repro.engine import Streamable

        events = []
        for t, kind in [(1, "a"), (2, "b"), (11, "a"), (25, "b")]:
            events.append(Event(t, t + 1, key=7, payload=kind))
        events.append(Punctuation(100))
        base = Streamable.from_elements(events)
        a_side = base.where(lambda e: e.payload == "a").tumbling_window(10)
        b_side = base.where(lambda e: e.payload == "b").tumbling_window(10)
        out = a_side.join(b_side).collect()
        # Window [0,10): a@1 with b@2 match; a@11 and b@25 are alone.
        assert len(out.events) == 1
        assert out.events[0].payload == ("a", "b")
