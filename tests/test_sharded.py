"""Tests for key-sharded (Map/Reduce) execution (repro.engine.sharded)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import QueryBuildError
from repro.engine import Event, Punctuation, Streamable
from repro.engine.operators.aggregates import Count
from repro.engine.sharded import ShardedQuery, shard_streamable


def ordered_events(pairs, punct_every=25):
    """pairs: (sync, key) tuples in ascending sync order."""
    elements = []
    high = None
    for i, (t, k) in enumerate(pairs):
        elements.append(Event(t - t % 10, t - t % 10 + 10, key=k))
        high = t if high is None or t > high else high
        if i % punct_every == punct_every - 1:
            elements.append(Punctuation(high - 10))
    return elements


def grouped_count(stream):
    return stream.group_aggregate(Count())


class TestShardedQuery:
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_equivalent_to_unsharded(self, shards, rng):
        pairs = sorted(
            (rng.randrange(500), rng.randrange(20)) for _ in range(600)
        )
        baseline = (
            Streamable.from_elements(ordered_events(pairs))
            .apply(grouped_count)
            .collect()
        )
        sharded = shard_streamable(
            Streamable.from_elements(ordered_events(pairs)),
            grouped_count,
            shards,
        ).collect()
        assert (
            sorted((e.sync_time, e.key, e.payload) for e in sharded.events)
            == sorted((e.sync_time, e.key, e.payload) for e in baseline.events)
        )

    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_equivalent_with_metrics_attached(self, shards, rng):
        """Instrumentation must not perturb sharded execution, and the
        snapshot's routing accounting must balance: every ingress event
        reaches the router, and the per-shard port counts sum back to
        the ingress count."""
        from repro.observability import MetricsRegistry

        pairs = sorted(
            (rng.randrange(500), rng.randrange(20)) for _ in range(600)
        )
        elements = ordered_events(pairs)
        ingress = sum(1 for e in elements if isinstance(e, Event))
        puncts = len(elements) - ingress

        baseline = (
            Streamable.from_elements(elements)
            .apply(grouped_count)
            .collect()
        )
        registry = MetricsRegistry()
        sharded = shard_streamable(
            Streamable.from_elements(elements), grouped_count, shards
        ).collect(metrics=registry)
        assert (
            sorted((e.sync_time, e.key, e.payload) for e in sharded.events)
            == sorted((e.sync_time, e.key, e.payload) for e in baseline.events)
        )

        snapshot = registry.snapshot()
        router = snapshot.operator(f"shard[{shards}]")
        assert router["events"]["in"] == ingress
        ports = [
            snapshot.operator(f"shard[{shards}]/out[{i}]")
            for i in range(shards)
        ]
        assert sum(p["events"]["in"] for p in ports) == ingress
        # Punctuations and flushes broadcast to every shard.
        assert router["punctuations"]["in"] == puncts
        for port in ports:
            assert port["punctuations"]["in"] == puncts
            assert port["flushes"] == 1

    def test_output_is_ordered(self, rng):
        pairs = sorted(
            (rng.randrange(300), rng.randrange(10)) for _ in range(300)
        )
        sharded = shard_streamable(
            Streamable.from_elements(ordered_events(pairs)),
            grouped_count,
            4,
        ).collect()
        assert sharded.sync_times == sorted(sharded.sync_times)
        assert sharded.completed

    def test_single_shard_is_identity_plan(self):
        elements = ordered_events([(1, 0), (2, 1), (3, 0)])
        out = shard_streamable(
            Streamable.from_elements(elements), grouped_count, 1
        ).collect()
        assert sum(e.payload for e in out.events) == 3

    def test_custom_key_fn_routes_consistently(self):
        router_events = ordered_events(
            [(t, 0) for t in range(0, 100, 10)]
        )
        out = shard_streamable(
            Streamable.from_elements(router_events),
            lambda s: s.group_aggregate(
                Count(), key_fn=lambda e: e.sync_time % 3
            ),
            3,
            key_fn=lambda e: e.sync_time % 3,
        ).collect()
        assert sum(e.payload for e in out.events) == 10

    def test_invalid_shards(self):
        with pytest.raises(QueryBuildError):
            shard_streamable(Streamable.from_elements([]), grouped_count, 0)

    def test_wrapper_class(self):
        elements = ordered_events([(1, 0), (2, 1)])
        sharded = ShardedQuery(grouped_count, shards=2)
        out = sharded.over(Streamable.from_elements(elements)).collect()
        assert sum(e.payload for e in out.events) == 2

    @given(
        st.lists(
            st.tuples(st.integers(0, 200), st.integers(0, 8)),
            min_size=1, max_size=200,
        ),
        st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_sharding_property(self, raw_pairs, shards):
        pairs = sorted(raw_pairs)
        baseline = (
            Streamable.from_elements(ordered_events(pairs))
            .apply(grouped_count)
            .collect()
        )
        sharded = shard_streamable(
            Streamable.from_elements(ordered_events(pairs)),
            grouped_count,
            shards,
        ).collect()
        assert (
            sorted((e.sync_time, e.key, e.payload) for e in sharded.events)
            == sorted((e.sync_time, e.key, e.payload) for e in baseline.events)
        )


class TestStableHash:
    """stable_key_hash must not vary by process, seed, or representation."""

    def test_scalar_matches_vectorized_on_integers(self):
        import numpy as np

        from repro.engine.sharded import (
            stable_key_hash,
            stable_key_hash_array,
        )

        keys = [0, 1, 2, 63, 2**40, -1, -17, 2**63 - 1, -(2**63)]
        vectorized = stable_key_hash_array(np.array(keys, dtype=np.int64))
        for key, vec in zip(keys, vectorized.tolist()):
            assert stable_key_hash(key) == vec

    def test_bool_and_numpy_ints_normalize(self):
        import numpy as np

        from repro.engine.sharded import stable_key_hash

        assert stable_key_hash(np.int64(42)) == stable_key_hash(42)
        assert stable_key_hash(True) == stable_key_hash(repr(True))
        assert stable_key_hash("user-7") == stable_key_hash(b"user-7")

    @pytest.mark.parametrize("seed", ["0", "1", "31337"])
    def test_routing_survives_pythonhashseed(self, seed):
        """The same keys must route to the same shards under any
        PYTHONHASHSEED — builtin hash() of strings does not."""
        import json
        import os
        import subprocess
        import sys

        script = (
            "import json, sys\n"
            "from repro.engine.sharded import stable_key_hash\n"
            "keys = ['alpha', 'beta', b'gamma', 12345, -7, ('t', 3)]\n"
            "print(json.dumps([stable_key_hash(k) % 8 for k in keys]))\n"
        )
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(os.getcwd(), "src"),
                        env.get("PYTHONPATH")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, check=True,
        )
        from repro.engine.sharded import stable_key_hash

        keys = ["alpha", "beta", b"gamma", 12345, -7, ("t", 3)]
        assert json.loads(out.stdout) == [
            stable_key_hash(k) % 8 for k in keys
        ]


class TestBalancedMergeTree:
    def test_combine_order_is_pairwise_rounds(self):
        from repro.engine.sharded import balanced_merge

        calls = []

        def combine(a, b):
            calls.append((a, b))
            return f"({a}+{b})"

        assert balanced_merge(["a"], combine) == "a"
        assert calls == []
        result = balanced_merge(list("abcde"), combine)
        assert result == "(((a+b)+(c+d))+e)"  # depth 3
        assert calls == [
            ("a", "b"), ("c", "d"), ("(a+b)", "(c+d)"),
            ("((a+b)+(c+d))", "e"),
        ]

    def test_empty_rejected(self):
        from repro.engine.sharded import balanced_merge

        with pytest.raises(ValueError):
            balanced_merge([], lambda a, b: a)

    def test_union_tree_depth_is_logarithmic(self):
        """The merge stage above 8 shards must be 3 Unions deep, not 7."""
        stream = shard_streamable(
            Streamable.from_elements(ordered_events([(50, k) for k in
                                                     range(8)])),
            grouped_count,
            8,
        )
        depth = 0
        node = stream.node
        while node.name == "merge":
            depth += 1
            node = node.parents[0][0]
        assert depth == 3

    @pytest.mark.parametrize("shards", [2, 3, 5, 8])
    def test_tree_equivalence_required_counts(self, shards, rng):
        """ISSUE satellite: output equivalence for N in {2, 3, 5, 8}."""
        pairs = sorted(
            (rng.randrange(400), rng.randrange(24)) for _ in range(500)
        )
        baseline = (
            Streamable.from_elements(ordered_events(pairs))
            .apply(grouped_count)
            .collect()
        )
        sharded = shard_streamable(
            Streamable.from_elements(ordered_events(pairs)),
            grouped_count,
            shards,
        ).collect()
        assert sorted(
            (e.sync_time, e.other_time, e.key, e.payload)
            for e in sharded.events
        ) == sorted(
            (e.sync_time, e.other_time, e.key, e.payload)
            for e in baseline.events
        )
        times = [e.sync_time for e in sharded.events]
        assert times == sorted(times)
        assert sharded.completed


class TestShardDisordered:
    def test_sorts_inside_each_shard(self, rng):
        from repro.engine.sharded import shard_disordered

        pairs = sorted(
            (rng.randrange(400), rng.randrange(16)) for _ in range(400)
        )
        ordered = ordered_events(pairs)
        baseline = (
            Streamable.from_elements(ordered)
            .apply(grouped_count)
            .collect()
        )
        # Shuffle events between consecutive punctuations: disordered
        # arrival that every shard must repair locally.
        disordered = []
        window = []
        for element in ordered:
            if isinstance(element, Punctuation):
                rng.shuffle(window)
                disordered.extend(window)
                window = []
                disordered.append(element)
            else:
                window.append(element)
        rng.shuffle(window)
        disordered.extend(window)
        result = shard_disordered(
            Streamable.from_elements(disordered), grouped_count, 4
        ).collect()
        assert sorted(
            (e.sync_time, e.key, e.payload) for e in result.events
        ) == sorted(
            (e.sync_time, e.key, e.payload) for e in baseline.events
        )

    def test_invalid_arguments(self):
        from repro.engine.sharded import shard_disordered

        with pytest.raises(QueryBuildError):
            shard_disordered(
                Streamable.from_elements([]), grouped_count, 0
            )
        with pytest.raises(QueryBuildError):
            shard_disordered(
                Streamable.from_elements([]), grouped_count, 2,
                sorter=object(),
            )
