"""Tests for key-sharded (Map/Reduce) execution (repro.engine.sharded)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import QueryBuildError
from repro.engine import Event, Punctuation, Streamable
from repro.engine.operators.aggregates import Count
from repro.engine.sharded import ShardedQuery, shard_streamable


def ordered_events(pairs, punct_every=25):
    """pairs: (sync, key) tuples in ascending sync order."""
    elements = []
    high = None
    for i, (t, k) in enumerate(pairs):
        elements.append(Event(t - t % 10, t - t % 10 + 10, key=k))
        high = t if high is None or t > high else high
        if i % punct_every == punct_every - 1:
            elements.append(Punctuation(high - 10))
    return elements


def grouped_count(stream):
    return stream.group_aggregate(Count())


class TestShardedQuery:
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_equivalent_to_unsharded(self, shards, rng):
        pairs = sorted(
            (rng.randrange(500), rng.randrange(20)) for _ in range(600)
        )
        baseline = (
            Streamable.from_elements(ordered_events(pairs))
            .apply(grouped_count)
            .collect()
        )
        sharded = shard_streamable(
            Streamable.from_elements(ordered_events(pairs)),
            grouped_count,
            shards,
        ).collect()
        assert (
            sorted((e.sync_time, e.key, e.payload) for e in sharded.events)
            == sorted((e.sync_time, e.key, e.payload) for e in baseline.events)
        )

    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_equivalent_with_metrics_attached(self, shards, rng):
        """Instrumentation must not perturb sharded execution, and the
        snapshot's routing accounting must balance: every ingress event
        reaches the router, and the per-shard port counts sum back to
        the ingress count."""
        from repro.observability import MetricsRegistry

        pairs = sorted(
            (rng.randrange(500), rng.randrange(20)) for _ in range(600)
        )
        elements = ordered_events(pairs)
        ingress = sum(1 for e in elements if isinstance(e, Event))
        puncts = len(elements) - ingress

        baseline = (
            Streamable.from_elements(elements)
            .apply(grouped_count)
            .collect()
        )
        registry = MetricsRegistry()
        sharded = shard_streamable(
            Streamable.from_elements(elements), grouped_count, shards
        ).collect(metrics=registry)
        assert (
            sorted((e.sync_time, e.key, e.payload) for e in sharded.events)
            == sorted((e.sync_time, e.key, e.payload) for e in baseline.events)
        )

        snapshot = registry.snapshot()
        router = snapshot.operator(f"shard[{shards}]")
        assert router["events"]["in"] == ingress
        ports = [
            snapshot.operator(f"shard[{shards}]/out[{i}]")
            for i in range(shards)
        ]
        assert sum(p["events"]["in"] for p in ports) == ingress
        # Punctuations and flushes broadcast to every shard.
        assert router["punctuations"]["in"] == puncts
        for port in ports:
            assert port["punctuations"]["in"] == puncts
            assert port["flushes"] == 1

    def test_output_is_ordered(self, rng):
        pairs = sorted(
            (rng.randrange(300), rng.randrange(10)) for _ in range(300)
        )
        sharded = shard_streamable(
            Streamable.from_elements(ordered_events(pairs)),
            grouped_count,
            4,
        ).collect()
        assert sharded.sync_times == sorted(sharded.sync_times)
        assert sharded.completed

    def test_single_shard_is_identity_plan(self):
        elements = ordered_events([(1, 0), (2, 1), (3, 0)])
        out = shard_streamable(
            Streamable.from_elements(elements), grouped_count, 1
        ).collect()
        assert sum(e.payload for e in out.events) == 3

    def test_custom_key_fn_routes_consistently(self):
        router_events = ordered_events(
            [(t, 0) for t in range(0, 100, 10)]
        )
        out = shard_streamable(
            Streamable.from_elements(router_events),
            lambda s: s.group_aggregate(
                Count(), key_fn=lambda e: e.sync_time % 3
            ),
            3,
            key_fn=lambda e: e.sync_time % 3,
        ).collect()
        assert sum(e.payload for e in out.events) == 10

    def test_invalid_shards(self):
        with pytest.raises(QueryBuildError):
            shard_streamable(Streamable.from_elements([]), grouped_count, 0)

    def test_wrapper_class(self):
        elements = ordered_events([(1, 0), (2, 1)])
        sharded = ShardedQuery(grouped_count, shards=2)
        out = sharded.over(Streamable.from_elements(elements)).collect()
        assert sum(e.payload for e in out.events) == 2

    @given(
        st.lists(
            st.tuples(st.integers(0, 200), st.integers(0, 8)),
            min_size=1, max_size=200,
        ),
        st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_sharding_property(self, raw_pairs, shards):
        pairs = sorted(raw_pairs)
        baseline = (
            Streamable.from_elements(ordered_events(pairs))
            .apply(grouped_count)
            .collect()
        )
        sharded = shard_streamable(
            Streamable.from_elements(ordered_events(pairs)),
            grouped_count,
            shards,
        ).collect()
        assert (
            sorted((e.sync_time, e.key, e.payload) for e in sharded.events)
            == sorted((e.sync_time, e.key, e.payload) for e in baseline.events)
        )
