"""Tests for the online sorters: the generic buffered adapter and the
incremental heap (repro.sorting.incremental / heapsort), plus the online
registry."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import PunctuationOrderError
from repro.core.late import LatePolicy
from repro.sorting import make_online_sorter
from repro.sorting.heapsort import IncrementalHeapSorter
from repro.sorting.incremental import BufferedIncrementalSorter
from repro.sorting.quicksort import quicksort
from repro.sorting.registry import ONLINE_SORTERS


def _drive(sorter, data, punctuate_every, latency):
    """Feed data with periodic punctuations at high-watermark − latency."""
    out = []
    high = None
    last = None
    for i, value in enumerate(data):
        sorter.insert(value)
        high = value if high is None or value > high else high
        if i % punctuate_every == punctuate_every - 1:
            ts = high - latency
            if last is None or ts > last:
                last = ts
                out.append((ts, sorter.on_punctuation(ts)))
    return out


class TestBufferedAdapter:
    def test_emits_due_prefix_per_punctuation(self):
        sorter = BufferedIncrementalSorter(quicksort)
        sorter.extend([5, 1, 9, 3])
        assert sorter.on_punctuation(4) == [1, 3]
        assert sorter.buffered == 2
        sorter.extend([6, 2])  # 2 is late (watermark 4)? no: 2 <= 4 → late
        assert sorter.late.dropped == 1
        assert sorter.on_punctuation(8) == [5, 6]
        assert sorter.flush() == [9]

    def test_event_sorted_once_but_rewritten_in_merges(self):
        """The adapter's cost model: merge_events grows with each
        punctuation because the whole sorted buffer is rewritten."""
        sorter = BufferedIncrementalSorter(quicksort)
        for i in range(100, 0, -1):
            sorter.insert(i + 1000)
        sorter.on_punctuation(0)
        first = sorter.stats.merge_events
        for i in range(100):
            sorter.insert(i + 2000)
        sorter.on_punctuation(1)
        assert sorter.stats.merge_events > first + 100  # old buffer rewritten

    def test_flush_empties(self):
        sorter = BufferedIncrementalSorter(quicksort)
        sorter.extend([3, 1])
        assert sorter.flush() == [1, 3]
        assert sorter.buffered == 0
        assert sorter.flush() == []

    def test_key_function(self):
        sorter = BufferedIncrementalSorter(quicksort, key=lambda p: -p)
        sorter.extend([1, 3, 2])
        assert sorter.flush() == [3, 2, 1]

    def test_regressing_punctuation_raises(self):
        sorter = BufferedIncrementalSorter(quicksort)
        sorter.on_punctuation(5)
        with pytest.raises(PunctuationOrderError):
            sorter.on_punctuation(4)


class TestIncrementalHeap:
    def test_emits_due_prefix(self):
        sorter = IncrementalHeapSorter()
        sorter.extend([5, 1, 9, 3])
        assert sorter.on_punctuation(4) == [1, 3]
        assert sorter.buffered == 2
        assert sorter.flush() == [5, 9]

    def test_equal_keys_fifo(self):
        sorter = IncrementalHeapSorter(key=lambda p: p[0])
        sorter.extend([(1, "a"), (1, "b"), (1, "c")])
        assert sorter.flush() == [(1, "a"), (1, "b"), (1, "c")]

    def test_late_drop(self):
        sorter = IncrementalHeapSorter(late_policy=LatePolicy.DROP)
        sorter.insert(10)
        sorter.on_punctuation(5)
        assert sorter.insert(4) is False
        assert sorter.late.dropped == 1

    def test_late_adjust(self):
        sorter = IncrementalHeapSorter(late_policy=LatePolicy.ADJUST)
        sorter.insert(10)
        sorter.on_punctuation(5)
        assert sorter.insert(4) is True
        # Bare timestamp adjusted onto the watermark (Section I-A).
        assert sorter.flush() == [5, 10]

    @given(st.lists(st.integers(0, 1000)))
    @settings(max_examples=80, deadline=None)
    def test_heap_flush_sorts(self, data):
        sorter = IncrementalHeapSorter()
        sorter.extend(data)
        assert sorter.flush() == sorted(data)


class TestOnlineEquivalence:
    """All online sorters must produce identical event sequences."""

    @pytest.mark.parametrize("name", ONLINE_SORTERS)
    def test_online_matches_reference(self, name, rng):
        data = [rng.randrange(2000) for _ in range(3000)]
        sorter = make_online_sorter(name)
        chunks = _drive(sorter, data, punctuate_every=100, latency=300)
        tail = sorter.flush()
        emitted = [v for _, chunk in chunks for v in chunk] + tail
        # Every emitted stream is globally sorted...
        assert emitted == sorted(emitted)
        # ...each chunk respects its punctuation...
        for ts, chunk in chunks:
            assert all(v <= ts for v in chunk)
        # ...and emitted + dropped accounts for all input.
        assert len(emitted) + sorter.late.dropped == len(data)

    def test_all_sorters_drop_identically(self, rng):
        """Late handling is sorter-independent: same watermarks, same
        drops, same emitted multiset."""
        data = [rng.randrange(2000) for _ in range(2000)]
        results = {}
        for name in ONLINE_SORTERS:
            sorter = make_online_sorter(name)
            chunks = _drive(sorter, data, punctuate_every=128, latency=250)
            emitted = [v for _, c in chunks for v in c] + sorter.flush()
            results[name] = (sorted(emitted), sorter.late.dropped)
        reference = results["impatience"]
        for name, got in results.items():
            assert got == reference, name

    def test_unknown_online_name(self):
        with pytest.raises(ValueError, match="unknown online sorter"):
            make_online_sorter("bogosort")
