"""Tests for the discrete-event ingestion simulation."""

from __future__ import annotations

import pytest

from repro.metrics import measure_disorder
from repro.workloads.simulation import (
    EventDrivenSimulation,
    PhoneActor,
    ServerActor,
    simulate_androidlog,
    simulate_cloudlog,
)


class TestEngine:
    def test_actions_run_in_time_order(self):
        sim = EventDrivenSimulation()
        trace = []
        sim.schedule(5, lambda: trace.append("b"))
        sim.schedule(1, lambda: trace.append("a"))
        sim.schedule(9, lambda: trace.append("c"))
        sim.run()
        assert trace == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        sim = EventDrivenSimulation()
        trace = []
        sim.schedule(3, lambda: trace.append(1))
        sim.schedule(3, lambda: trace.append(2))
        sim.run()
        assert trace == [1, 2]

    def test_actions_may_schedule_more(self):
        sim = EventDrivenSimulation()
        trace = []

        def tick():
            trace.append(sim.now)
            if sim.now < 3:
                sim.schedule(sim.now + 1, tick)

        sim.schedule(0, tick)
        sim.run()
        assert trace == [0, 1, 2, 3]

    def test_run_until(self):
        sim = EventDrivenSimulation()
        trace = []
        sim.schedule(1, lambda: trace.append(1))
        sim.schedule(10, lambda: trace.append(10))
        sim.run(until=5)
        assert trace == [1]

    def test_collected_stream_arrival_order(self):
        sim = EventDrivenSimulation()
        sim.deliver(5.0, 100, 0)
        sim.deliver(2.0, 200, 1)
        assert sim.collected_stream() == [200, 100]

    def test_determinism(self):
        a = simulate_cloudlog(2_000, seed=5).timestamps
        b = simulate_cloudlog(2_000, seed=5).timestamps
        assert a == b
        assert simulate_cloudlog(2_000, seed=6).timestamps != a


class TestServerActor:
    def test_outage_holds_then_flushes(self):
        sim = EventDrivenSimulation(seed=1)
        server = ServerActor(
            sim, 0, rate_interval=10, base_delay=0.0, jitter=0.0,
            outages=((100, 200),),
        )
        server.start(horizon=300)
        sim.run()
        arrivals = sorted(sim.deliveries)
        outage_events = [
            (arr, ev) for arr, ev, _ in arrivals if 100 <= ev < 200
        ]
        assert outage_events, "some events fell inside the outage"
        # Everything generated during the outage arrives at/after recovery.
        assert all(arr >= 200 for arr, _ in outage_events)

    def test_no_outage_delivers_promptly(self):
        sim = EventDrivenSimulation(seed=1)
        ServerActor(sim, 0, 10, base_delay=3.0, jitter=0.0).start(200)
        sim.run()
        assert all(
            arr == pytest.approx(ev + 3.0)
            for arr, ev, _ in sim.deliveries
        )


class TestPhoneActor:
    def test_backlog_uploads_in_order(self):
        sim = EventDrivenSimulation(seed=2)
        PhoneActor(sim, 0, rate_interval=5, charge_times=[100, 200]).start(150)
        sim.run()
        # Two upload instants only.
        arrival_instants = sorted({arr for arr, _, _ in sim.deliveries})
        assert arrival_instants == [100, 200]
        stream = sim.collected_stream()
        # Within each batch, recorded order (ascending event time).
        first_batch = [ev for arr, ev, _ in sorted(sim.deliveries)
                       if arr == 100]
        assert first_batch == sorted(first_batch)
        assert len(stream) == len(sim.deliveries)


class TestSimulatedDatasets:
    def test_cloudlog_regime(self):
        dataset = simulate_cloudlog(8_000, n_servers=40,
                                    delay_spread_ms=400.0, seed=3)
        stats = measure_disorder(dataset.timestamps)
        assert stats.mean_run_length < 6          # fine-grained chaos
        assert stats.interleaved < stats.runs / 5  # coarse-grained order
        assert stats.distance > len(dataset) * 0.2  # the outage burst

    def test_androidlog_regime(self):
        dataset = simulate_androidlog(8_000, n_phones=20,
                                      uploads_per_phone=6, seed=3)
        stats = measure_disorder(dataset.timestamps)
        assert stats.mean_run_length > 10          # long batch runs
        assert stats.interleaved <= 21             # bounded by phones

    def test_agrees_with_fast_generator_regimes(self):
        """The causal simulation and the vectorized generator land in the
        same disorder regimes (they need not match numerically)."""
        from repro.workloads import generate_cloudlog

        causal = measure_disorder(
            simulate_cloudlog(6_000, n_servers=40, delay_spread_ms=400.0,
                              seed=1).timestamps
        )
        fast = measure_disorder(
            generate_cloudlog(6_000, delay_spread_ms=400.0,
                              seed=1).timestamps
        )
        assert causal.mean_run_length < 6 and fast.mean_run_length < 6
        assert causal.interleaved < causal.runs / 5
        assert fast.interleaved < fast.runs / 5

    def test_events_roughly_n(self):
        dataset = simulate_cloudlog(5_000, seed=0)
        assert 0.7 * 5_000 < len(dataset) < 1.3 * 5_000

    def test_sortable_end_to_end(self):
        from repro.core import ImpatienceSorter

        dataset = simulate_androidlog(4_000, seed=0)
        sorter = ImpatienceSorter()
        sorter.extend(dataset.timestamps)
        assert sorter.flush() == sorted(dataset.timestamps)
