"""Tests for the blocking union operator (repro.engine.operators.union)."""

from __future__ import annotations

from repro.engine.event import Event, Punctuation
from repro.engine.operators import Collector, Union


def make_union():
    union = Union()
    sink = Collector()
    union.add_downstream(sink)
    return union, sink


class TestUnionMerge:
    def test_blocks_until_both_sides_punctuate(self):
        union, sink = make_union()
        union.ports[0].on_event(Event(1))
        union.ports[0].on_punctuation(Punctuation(10))
        assert sink.events == []  # right side has no watermark yet
        union.ports[1].on_event(Event(2))
        union.ports[1].on_punctuation(Punctuation(10))
        assert sink.sync_times == [1, 2]
        assert sink.punctuations == [10]

    def test_emits_up_to_min_watermark_only(self):
        union, sink = make_union()
        union.ports[0].on_event(Event(1))
        union.ports[0].on_event(Event(8))
        union.ports[0].on_punctuation(Punctuation(20))
        union.ports[1].on_event(Event(3))
        union.ports[1].on_punctuation(Punctuation(5))
        assert sink.sync_times == [1, 3]
        assert union.buffered_count() == 1  # Event(8) held back
        assert sink.punctuations == [5]

    def test_interleaves_sorted(self):
        union, sink = make_union()
        for t in (1, 4, 7):
            union.ports[0].on_event(Event(t))
        for t in (2, 4, 9):
            union.ports[1].on_event(Event(t))
        union.ports[0].on_punctuation(Punctuation(100))
        union.ports[1].on_punctuation(Punctuation(100))
        assert sink.sync_times == [1, 2, 4, 4, 7, 9]

    def test_flush_requires_both_sides(self):
        union, sink = make_union()
        union.ports[0].on_event(Event(1))
        union.ports[0].on_flush()
        assert not sink.completed
        union.ports[1].on_flush()
        assert sink.completed
        assert sink.sync_times == [1]

    def test_max_buffered_high_water_mark(self):
        union, sink = make_union()
        for t in range(50):
            union.ports[0].on_event(Event(t))
        assert union.max_buffered == 50
        union.ports[0].on_punctuation(Punctuation(100))
        union.ports[1].on_punctuation(Punctuation(100))
        assert union.buffered_count() == 0
        assert union.max_buffered == 50  # peak is sticky

    def test_watermarks_never_regress_downstream(self):
        union, sink = make_union()
        union.ports[0].on_punctuation(Punctuation(10))
        union.ports[1].on_punctuation(Punctuation(10))
        union.ports[1].on_punctuation(Punctuation(5))  # stale, ignored
        assert sink.punctuations == [10]

    def test_out_of_contract_event_reordered_defensively(self):
        union, sink = make_union()
        union.ports[0].on_event(Event(5))
        union.ports[0].on_event(Event(3))  # violates the sorted contract
        union.ports[0].on_punctuation(Punctuation(10))
        union.ports[1].on_punctuation(Punctuation(10))
        assert sink.sync_times == [3, 5]

    def test_one_sided_stream(self):
        """A union where one side never produces events still drains once
        both sides punctuate (the framework's quiet-path case)."""
        union, sink = make_union()
        for t in (1, 2, 3):
            union.ports[0].on_event(Event(t))
        union.ports[0].on_punctuation(Punctuation(3))
        union.ports[1].on_punctuation(Punctuation(3))
        assert sink.sync_times == [1, 2, 3]
