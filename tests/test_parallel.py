"""Tests for the multi-process parallel shard runtime (repro.parallel).

The runtime's core invariant — ``run_parallel(ingress, plan, N)`` is
byte-identical to the single-process
``shard_disordered(stream, query, N)`` plan over the same element
sequence — is asserted here across plan families, merge strategies,
late policies, and worker counts, alongside unit tests for the
shared-memory ring transport, crash recovery, the framework/CLI entry
points, and the observability snapshot's ``parallel`` section.
"""

from __future__ import annotations

import os
import random
import re

import numpy as np
import pytest

from repro.core.errors import (
    LateEventError,
    QueryBuildError,
    SupervisionExhaustedError,
    WorkerCrashError,
)
from repro.core.impatience import ImpatienceSorter
from repro.core.late import LatePolicy
from repro.engine import Event, Punctuation, QueryPlan, Streamable
from repro.engine.batch import EventBatch
from repro.engine.compiler import UnsupportedPlanError
from repro.engine.kernels import field
from repro.engine.operators.aggregates import Avg, Count, Sum
from repro.engine.sharded import shard_disordered
from repro.parallel import (
    CompiledShardPlan,
    GroupedAggregatePlan,
    RowPlan,
    ShmRing,
    crash_once,
    run_parallel,
)
from repro.parallel import exchange
from repro.parallel.shm import RingClosedError
from repro.resilience.parallel import run_parallel_supervised


def _key(event):
    return (event.sync_time, event.other_time, event.key, event.payload)


def _assert_identical(result, reference, tag=""):
    assert list(map(_key, result.events)) == \
        list(map(_key, reference.events)), tag
    assert result.punctuations == reference.punctuations, tag


def disordered_elements(seed=7, n=800, key_range=12, ts_range=300,
                        punct_every=40, lag=8, payload=None):
    """A shuffled-window disordered stream with interleaved punctuations.

    A slice of each window's events is held back until after that
    window's punctuation, so streams carry genuine stragglers: with a
    small ``lag`` some arrive below the watermark (late), with a large
    ``lag`` they are disordered but still on time.
    """
    rng = random.Random(seed)
    pairs = sorted(
        (rng.randrange(ts_range), rng.randrange(key_range))
        for _ in range(n)
    )
    elements = []
    window = []
    held = []
    high = None
    for i, (t, k) in enumerate(pairs):
        event = Event(
            t, t + 1, key=k, payload=payload(t, k) if payload else None
        )
        if rng.random() < 0.1:
            held.append(event)
        else:
            window.append(event)
        high = t if high is None or t > high else high
        if i % punct_every == punct_every - 1:
            rng.shuffle(window)
            elements.extend(window)
            elements.append(Punctuation(high - lag))
            window = held  # stragglers surface after the punctuation
            held = []
    window.extend(held)
    rng.shuffle(window)
    elements.extend(window)
    return elements


def grouped_count(stream):
    return stream.tumbling_window(10).group_aggregate(Count())


def _sync(event):
    return event.sync_time


# ---------------------------------------------------------------------------
# Shared-memory ring transport
# ---------------------------------------------------------------------------

class TestShmRing:
    def test_frame_roundtrip(self):
        ring = ShmRing(1 << 12)
        try:
            ring.write(3, b"hello")
            ring.write(5)
            kind, payload = ring.try_read()
            assert (kind, bytes(payload)) == (3, b"hello")
            kind, payload = ring.try_read()
            assert (kind, bytes(payload)) == (5, b"")
            assert ring.try_read() is None
        finally:
            ring.unlink()

    def test_wrap_stress_sequence_integrity(self):
        """Mixed frame sizes at a small capacity force many wraps; every
        frame must come back intact and in order."""
        ring = ShmRing(1 << 12)
        rng = random.Random(3)
        sizes = [rng.choice([0, 8, 24, 200, 1000]) for _ in range(500)]
        sent = 0
        received = 0
        try:
            while received < len(sizes):
                while sent < len(sizes) and ring.try_write(
                    1, sent.to_bytes(4, "little") * (sizes[sent] // 4 + 1)
                ):
                    sent += 1
                frame = ring.try_read()
                assert frame is not None
                kind, payload = frame
                assert kind == 1
                assert bytes(payload[:4]) == received.to_bytes(4, "little")
                assert len(payload) == 4 * (sizes[received] // 4 + 1)
                received += 1
        finally:
            ring.unlink()

    def test_payload_view_survives_until_next_read(self):
        """The head is published on the *next* read: a producer must not
        be able to overwrite a frame the consumer is still decoding."""
        ring = ShmRing(1 << 12)
        big = bytes(range(256)) * 14   # ~3.5k of the 4k ring
        try:
            assert ring.try_write(1, big)
            kind, payload = ring.try_read()
            # Slot not yet released: an equally big frame cannot fit.
            assert not ring.try_write(1, big)
            assert bytes(payload) == big
            # The next read (even on an empty ring) releases the slot.
            assert ring.try_read() is None
            assert ring.try_write(1, big)
        finally:
            ring.unlink()

    def test_reserve_in_place_fill(self):
        ring = ShmRing(1 << 12)

        def fill(view):
            view[:] = b"ab" * 8

        try:
            ring.write(2, reserve=(16, fill))
            kind, payload = ring.try_read()
            assert (kind, bytes(payload)) == (2, b"ab" * 8)
        finally:
            ring.unlink()

    def test_oversized_frame_rejected(self):
        ring = ShmRing(1 << 12)
        try:
            with pytest.raises(ValueError, match="exceeds ring size"):
                ring.try_write(1, b"x" * (1 << 13))
        finally:
            ring.unlink()

    def test_dead_peer_surfaces_ring_closed(self):
        ring = ShmRing(1 << 12)
        try:
            with pytest.raises(RingClosedError):
                ring.read(alive=lambda: False)
        finally:
            ring.unlink()

    def test_full_ring_write_times_out(self):
        ring = ShmRing(1 << 12)
        payload = b"x" * 1024
        try:
            while ring.try_write(1, payload):
                pass
            with pytest.raises(TimeoutError):
                ring.write(1, payload, timeout=0.05)
        finally:
            ring.unlink()


class TestExchange:
    def test_event_batch_roundtrip(self):
        ring = ShmRing(1 << 14)
        batch = EventBatch(
            [5, 3, 9], [6, 4, 10], [1, 2, 1], [[7, 8, 9], [0, 1, 2]]
        )
        try:
            exchange.write_batch(ring, batch)
            kind, payload = ring.try_read()
            assert kind == exchange.DATA
            out = exchange.read_batch(payload, copy=True)
            assert out.sync_times.tolist() == [5, 3, 9]
            assert out.other_times.tolist() == [6, 4, 10]
            assert out.keys.tolist() == [1, 2, 1]
            assert [col.tolist() for col in out.payload_columns] == \
                [[7, 8, 9], [0, 1, 2]]
        finally:
            ring.unlink()

    def test_pickled_roundtrip(self):
        ring = ShmRing(1 << 14)
        items = [Event(1, 2, key=3, payload=(4,)), Punctuation(5)]
        try:
            exchange.write_pickled(ring, exchange.PICKLE, items)
            kind, payload = ring.try_read()
            assert kind == exchange.PICKLE
            assert exchange.read_pickled(payload) == items
        finally:
            ring.unlink()


# ---------------------------------------------------------------------------
# Equivalence with the single-process sharded plan
# ---------------------------------------------------------------------------

# Extra worker counts can be exercised from CI via
# ``REPRO_PARALLEL_WORKERS=<n>`` (mirrors the chaos-matrix knob).
WORKER_SWEEP = [1, 2, 3, 4]
_env_workers = os.environ.get("REPRO_PARALLEL_WORKERS")
if _env_workers is not None and int(_env_workers) not in WORKER_SWEEP:
    WORKER_SWEEP.append(int(_env_workers))


class TestEquivalence:
    @pytest.mark.parametrize("workers", WORKER_SWEEP)
    @pytest.mark.parametrize("merge", ["auto", "tree"])
    def test_grouped_kernel_matches_sharded(self, workers, merge):
        elements = disordered_elements(seed=workers, lag=30)
        reference = shard_disordered(
            Streamable.from_elements(list(elements)), grouped_count, workers
        ).collect()
        result = run_parallel(
            list(elements), GroupedAggregatePlan(10), workers,
            batch_size=64, merge=merge,
        )
        _assert_identical(result, reference, f"w={workers} merge={merge}")
        assert result.completed
        assert result.parallel["workers"] == workers
        if merge == "tree":
            assert result.parallel["fast_merge_rounds"] == 0

    @pytest.mark.parametrize("workers", [1, 3])
    def test_row_plan_matches_sharded(self, workers):
        elements = disordered_elements(seed=2, lag=30)
        reference = shard_disordered(
            Streamable.from_elements(list(elements)), grouped_count, workers
        ).collect()
        result = run_parallel(
            list(elements), RowPlan(grouped_count), workers, batch_size=64
        )
        _assert_identical(result, reference, f"row w={workers}")

    @pytest.mark.parametrize("policy", [LatePolicy.DROP, LatePolicy.ADJUST])
    @pytest.mark.parametrize("agg", ["count", "sum", "avg", "min", "max"])
    def test_late_policies_and_aggregates(self, policy, agg):
        from repro.engine.kernels import field
        from repro.engine.operators.aggregates import Avg, Max, Min

        elements = disordered_elements(
            seed=23, n=600, lag=10, payload=lambda t, k: (t % 9, 1)
        )
        if agg == "count":
            query = grouped_count
            plan = GroupedAggregatePlan(10, late_policy=policy)
        else:
            cls = {"sum": Sum, "avg": Avg, "min": Min, "max": Max}[agg]
            query = lambda s: s.tumbling_window(10).group_aggregate(  # noqa: E731
                cls(field(0))
            )
            plan = GroupedAggregatePlan(
                10, agg=agg, value_column=0, late_policy=policy
            )
        sorter = lambda: ImpatienceSorter(  # noqa: E731
            key=_sync, late_policy=policy
        )
        reference = shard_disordered(
            Streamable.from_elements(list(elements)), query, 3, sorter=sorter
        ).collect()
        result = run_parallel(list(elements), plan, 3, batch_size=64)
        _assert_identical(result, reference, f"{policy.name}/{agg}")
        if policy is LatePolicy.DROP:
            assert sum(
                s["late_dropped"] for s in result.parallel["shards"]
            ) > 0
        else:
            assert sum(
                s["late_adjusted"] for s in result.parallel["shards"]
            ) > 0

    def test_avg_payloads_are_row_engine_floats(self):
        elements = disordered_elements(
            seed=29, n=400, lag=30, payload=lambda t, k: (t % 7, 1)
        )
        result = run_parallel(
            list(elements), GroupedAggregatePlan(10, agg="avg"), 2,
            batch_size=64,
        )
        assert result.events
        assert all(isinstance(e.payload, float) for e in result.events)

    def test_top_k_plan_finalizes_on_coordinator(self):
        """agg='top-k' wires the grouped count through a coordinator-side
        WindowTopK; matches the unsharded single-process plan."""
        elements = disordered_elements(seed=4, n=600, lag=40)
        # Tie-free scores (see test_finalize_runs_on_coordinator).
        score = lambda e: (e.payload, e.key)  # noqa: E731
        single = (
            Streamable.from_elements(
                sorted(
                    (e for e in elements if isinstance(e, Event)),
                    key=_sync,
                )
            )
            .tumbling_window(10).group_aggregate(Count()).top_k(3, score)
            .collect()
        )
        plan = GroupedAggregatePlan(10, agg="top-k", k=3, score_fn=score)
        result = run_parallel(list(elements), plan, 3, batch_size=64)
        assert sorted(map(_key, result.events)) == \
            sorted(map(_key, single.events))

    def test_rejects_unknown_aggregate(self):
        with pytest.raises(ValueError, match="unsupported aggregate"):
            GroupedAggregatePlan(10, agg="median")

    def test_session_window_row_plan(self):
        query = lambda s: s.session_window(15)  # noqa: E731
        elements = disordered_elements(seed=9, n=500, lag=40)
        reference = shard_disordered(
            Streamable.from_elements(list(elements)), query, 3
        ).collect()
        result = run_parallel(
            list(elements), RowPlan(query), 3, batch_size=64
        )
        _assert_identical(result, reference, "sessions")
        assert len(result.events) > 0

    def test_finalize_runs_on_coordinator(self):
        """A non-key-local top-k stage executes over the exact merged
        interleaving, matching the unsharded single-process plan."""
        elements = disordered_elements(seed=4, n=600, lag=40)
        # Scores must be tie-free: WindowTopK breaks score ties by
        # arrival order, which legitimately differs between the merged
        # parallel interleaving and the fully sorted reference.
        score = lambda e: (e.payload, e.key)  # noqa: E731
        single = (
            Streamable.from_elements(
                sorted(
                    (e for e in elements if isinstance(e, Event)),
                    key=_sync,
                )
            )
            .tumbling_window(10).group_aggregate(Count()).top_k(3, score)
            .collect()
        )
        plan = GroupedAggregatePlan(10)
        plan.finalize = lambda s: s.top_k(3, score)
        result = run_parallel(list(elements), plan, 3, batch_size=64)
        assert sorted(map(_key, result.events)) == \
            sorted(map(_key, single.events))

    def test_columnar_ingress_matches_row_ingress(self):
        """Whole EventBatch blocks route vectorized to the same result
        as the equivalent per-event stream."""
        elements = disordered_elements(seed=31, n=600, lag=30)
        rows = []
        blocks = []
        for element in elements:
            if isinstance(element, Event):
                rows.append(element)
            else:
                if rows:
                    blocks.append(EventBatch(
                        [e.sync_time for e in rows],
                        [e.other_time for e in rows],
                        [e.key for e in rows],
                        [],
                    ))
                    rows = []
                blocks.append(element)
        if rows:
            blocks.append(EventBatch(
                [e.sync_time for e in rows],
                [e.other_time for e in rows],
                [e.key for e in rows],
                [],
            ))
        stripped = [
            Event(e.sync_time, e.other_time, e.key)
            if isinstance(e, Event) else e
            for e in elements
        ]
        reference = run_parallel(
            stripped, GroupedAggregatePlan(10), 3, batch_size=64
        )
        result = run_parallel(blocks, GroupedAggregatePlan(10), 3)
        _assert_identical(result, reference, "columnar ingress")

    def test_pre_alignment_matches_pushdown_plan(self):
        """align='pre' replicates TumblingWindow-before-Sort (§IV):
        identical to the single-process push-down query, and distinct
        from the post-sort alignment under aggressive lateness."""
        from repro.engine import DisorderedStreamable
        from repro.engine.graph import source_node

        elements = disordered_elements(seed=13, n=700, lag=3)

        def pushdown_reference():
            src = source_node("test")
            streamable = (
                DisorderedStreamable(src, None)
                .tumbling_window(10)
                .to_streamable()
                .group_aggregate(Count())
            )
            from repro.engine.graph import Pipeline, QueryNode
            from repro.engine.operators.sink import Collector

            sink = QueryNode(
                Collector, ((streamable.node, None),), name="sink"
            )
            pipeline = Pipeline([sink])
            pipeline.run(iter(elements))
            return pipeline.operator_for(sink)

        reference = pushdown_reference()
        result = run_parallel(
            list(elements), GroupedAggregatePlan(10, align="pre"), 1,
            batch_size=64,
        )
        assert list(map(_key, result.events)) == \
            list(map(_key, reference.events))
        post = run_parallel(
            list(elements), GroupedAggregatePlan(10), 1, batch_size=64
        )
        assert sorted(map(_key, post.events)) != \
            sorted(map(_key, result.events))

    def test_raise_policy_crosses_process_boundary(self):
        elements = disordered_elements(seed=11, n=600, lag=5)
        sorter = lambda: ImpatienceSorter(  # noqa: E731
            key=_sync, late_policy=LatePolicy.RAISE
        )
        with pytest.raises(LateEventError) as row_err:
            shard_disordered(
                Streamable.from_elements(list(elements)), grouped_count, 2,
                sorter=sorter,
            ).collect()
        with pytest.raises(LateEventError) as par_err:
            run_parallel(
                list(elements),
                GroupedAggregatePlan(10, late_policy=LatePolicy.RAISE),
                2, batch_size=64,
            )
        assert par_err.value.event_time == row_err.value.event_time
        assert par_err.value.punctuation_time == \
            row_err.value.punctuation_time

    def test_rejects_bad_arguments(self):
        with pytest.raises(QueryBuildError):
            run_parallel([], GroupedAggregatePlan(10), 0)
        with pytest.raises(QueryBuildError):
            run_parallel([], GroupedAggregatePlan(10), 2, merge="bogus")


# ---------------------------------------------------------------------------
# Crash handling and supervised recovery
# ---------------------------------------------------------------------------

class TestCrashRecovery:
    def test_worker_crash_carries_journal_offset(self):
        elements = disordered_elements(seed=5, n=600, lag=8, punct_every=30)
        with pytest.raises(WorkerCrashError) as err:
            run_parallel(
                list(elements), GroupedAggregatePlan(20), 3,
                fault=crash_once(1, 2), batch_size=64,
            )
        crash = err.value
        assert crash.shard == 1
        assert crash.exitcode == 43
        assert crash.journal_offset >= 0

    def test_supervised_rerun_byte_identical(self):
        elements = disordered_elements(seed=5, n=600, lag=8, punct_every=30)
        baseline = run_parallel(
            list(elements), GroupedAggregatePlan(20), 3, batch_size=64
        )
        delivered = []
        supervised = run_parallel_supervised(
            list(elements), GroupedAggregatePlan(20), 3,
            fault=crash_once(2, 12), on_event=delivered.append,
            batch_size=64,
        )
        assert supervised.restarts == 1
        assert supervised.crashes[0].shard == 2
        assert supervised.completed
        # Rounds delivered before the crash are verified and suppressed,
        # not re-delivered: exactly-once reaches on_event.
        assert supervised.duplicates_suppressed > 0
        assert list(map(_key, supervised.events)) == \
            list(map(_key, baseline.events))
        assert supervised.punctuations == baseline.punctuations
        assert list(map(_key, delivered)) == \
            list(map(_key, baseline.events))
        doc = supervised.resilience_doc()
        assert doc["mode"] == "parallel"
        assert doc["restarts"] == 1
        assert doc["crashes"][0]["shard"] == 2

    def test_supervision_budget_exhausts(self):
        # The supervisor forwards the fault on the first attempt only, so
        # a zero budget turns that first crash into exhaustion.
        elements = disordered_elements(seed=5, n=300, lag=8, punct_every=30)
        with pytest.raises(SupervisionExhaustedError) as err:
            run_parallel_supervised(
                list(elements), GroupedAggregatePlan(20), 2,
                fault=crash_once(0, 2), max_restarts=0,
                batch_size=64,
            )
        assert isinstance(err.value.__cause__, WorkerCrashError)


class TestGracefulWorkerShutdown:
    """SIGTERM is a drain request: workers flush and exit 0, never crash."""

    def _start_worker(self, plan):
        from multiprocessing import get_context

        from repro.parallel.worker import worker_main

        in_ring = ShmRing(1 << 16)
        out_ring = ShmRing(1 << 16)
        process = get_context("fork").Process(
            target=worker_main, args=(0, plan, in_ring, out_ring, None),
            daemon=True,
        )
        process.start()
        return process, in_ring, out_ring

    def _read_until(self, ring, process, kinds, limit=200):
        frames = []
        for _ in range(limit):
            frame = ring.read(timeout=10.0, alive=process.is_alive)
            decoded = (
                frame[0],
                exchange.read_pickled(frame[1])
                if frame[0] in (exchange.PICKLE, exchange.STATS)
                else bytes(frame[1]),
            )
            frames.append(decoded)
            if frame[0] in kinds:
                return frames
        raise AssertionError(f"never saw {kinds}; got {frames}")

    def test_sigterm_drains_and_exits_zero(self):
        import signal as _signal

        process, in_ring, out_ring = self._start_worker(
            GroupedAggregatePlan(10)
        )
        try:
            batch = EventBatch(
                [3, 7, 14, 21], [4, 8, 15, 22], [1, 2, 1, 2],
                [[1, 1, 1, 1]],
            )
            exchange.write_batch(in_ring, batch, alive=process.is_alive)
            in_ring.write(
                exchange.PUNCT, exchange.PUNCT_STRUCT.pack(9, 0, 5),
                alive=process.is_alive,
            )
            pre = self._read_until(out_ring, process, {exchange.ACK})
            assert pre[-1][0] == exchange.ACK
            # Worker is now parked on an empty input ring: drain it.
            os.kill(process.pid, _signal.SIGTERM)
            post = self._read_until(out_ring, process, {exchange.DONE})
            kinds = [kind for kind, _ in post]
            # The drain epilogue is indistinguishable from completion:
            # the remaining windows (a DATA batch), FLUSH, STATS, DONE —
            # the final merged punctuation is the coordinator tree's job
            # in both cases.
            assert exchange.DATA in kinds
            assert exchange.FLUSH in kinds
            assert exchange.STATS in kinds
            assert kinds[-1] == exchange.DONE
            assert exchange.ERROR not in kinds
            process.join(timeout=10)
            assert process.exitcode == 0
        finally:
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
            in_ring.unlink()
            out_ring.unlink()

    def test_sigterm_mid_round_defers_to_frame_boundary(self):
        import signal as _signal

        process, in_ring, out_ring = self._start_worker(
            GroupedAggregatePlan(10)
        )
        try:
            batch = EventBatch([3, 7], [4, 8], [1, 2], [[1, 1]])
            exchange.write_batch(in_ring, batch, alive=process.is_alive)
            in_ring.write(
                exchange.PUNCT, exchange.PUNCT_STRUCT.pack(5, 0, 3),
                alive=process.is_alive,
            )
            self._read_until(out_ring, process, {exchange.ACK})
            # Deliver the signal while the worker holds buffered data
            # above the watermark — the drain must still flush it.
            batch = EventBatch([14, 21], [15, 22], [1, 2], [[1, 1]])
            exchange.write_batch(in_ring, batch, alive=process.is_alive)
            os.kill(process.pid, _signal.SIGTERM)
            post = self._read_until(out_ring, process, {exchange.DONE})
            kinds = [kind for kind, _ in post]
            assert kinds[-1] == exchange.DONE
            assert exchange.ERROR not in kinds
            process.join(timeout=10)
            assert process.exitcode == 0
        finally:
            if process.is_alive():
                process.kill()
                process.join(timeout=5)
            in_ring.unlink()
            out_ring.unlink()

    def test_coordinator_shutdown_leaves_no_crash_exitcodes(self):
        from repro.parallel.runtime import _Coordinator

        elements = disordered_elements(seed=9, n=300, lag=8, punct_every=30)
        coordinator = _Coordinator(
            GroupedAggregatePlan(10), 2, 64, 1 << 20, None, "auto", None
        )
        try:
            for handle in coordinator.handles:
                handle.process.start()
            for element in elements[:120]:
                if isinstance(element, Punctuation):
                    coordinator.broadcast_punctuation(element.timestamp)
                    coordinator.merge_ready_rounds()
                else:
                    coordinator.route_event(element)
        finally:
            # Mid-stream teardown — the path that used to kill workers
            # wherever they stood.  No WorkerCrashError may surface and
            # every worker must exit 0 (graceful drain), not -SIGTERM.
            coordinator.shutdown()
        for handle in coordinator.handles:
            assert not handle.process.is_alive()
            assert handle.process.exitcode == 0, handle.shard


# ---------------------------------------------------------------------------
# Framework and observability surfaces
# ---------------------------------------------------------------------------

class TestStreamablesParallel:
    def _build(self):
        from repro.engine import DisorderedStreamable
        from repro.workloads import load_dataset

        dataset = load_dataset("cloudlog", 4000)
        return (
            DisorderedStreamable.from_dataset(
                dataset, punctuation_frequency=500, reorder_latency=0
            )
            .tumbling_window(50)
            .to_streamables([0, 20, 100])
            .apply(lambda s: s.group_aggregate(Count()))
        )

    def test_matches_shared_single_pass(self):
        reference = self._build().run()
        result = self._build().run(parallel=2)
        for i in range(3):
            assert list(map(_key, result.output_events(i))) == \
                list(map(_key, reference.output_events(i))), i
            assert result.collectors[i].punctuations == \
                reference.collectors[i].punctuations, i
            assert abs(
                result.completeness(i) - reference.completeness(i)
            ) < 1e-12, i
        assert result.summary()["routed"] == reference.summary()["routed"]
        assert result.parallel["workers"] == 2
        assert result.parallel["assignment"] == [[0, 2], [1]]

    def test_worker_count_clamps_to_outputs(self):
        result = self._build().run(parallel=8)
        assert result.parallel["workers"] == 3

    def test_parallel_excludes_inprocess_instrumentation(self):
        from repro.core.errors import QueryBuildError
        from repro.observability import MetricsRegistry

        with pytest.raises(QueryBuildError):
            self._build().run(parallel=2, metrics=MetricsRegistry())


class TestObservabilitySection:
    def test_snapshot_carries_parallel_doc(self):
        from repro.observability import MetricsRegistry

        elements = disordered_elements(seed=1, n=300, lag=30)
        result = run_parallel(
            list(elements), GroupedAggregatePlan(10), 2, batch_size=64
        )
        snapshot = MetricsRegistry(trace=False).snapshot(
            parallel=result.parallel
        )
        assert snapshot.parallel["workers"] == 2
        assert len(snapshot.parallel["shards"]) == 2
        for stats in snapshot.parallel["shards"]:
            assert stats["plan"] == "grouped-aggregate"
            assert stats["events_in"] >= 0
        assert '"parallel"' in snapshot.to_json()

    def test_accounting_balances(self):
        elements = disordered_elements(seed=1, n=300, lag=30)
        result = run_parallel(
            list(elements), GroupedAggregatePlan(10), 2, batch_size=64
        )
        doc = result.parallel
        assert doc["journal_elements"] == len(elements)
        assert doc["rounds"] == sum(
            1 for e in elements if isinstance(e, Punctuation)
        )
        assert doc["fast_merge_rounds"] + doc["tree_merge_rounds"] <= \
            doc["rounds"]
        assert sum(s["events_in"] for s in doc["shards"]) == sum(
            1 for e in elements if isinstance(e, Event)
        )


class TestCliParallel:
    def test_run_parallel_flag(self, capsys):
        from repro.cli import main

        code = main([
            "run", "--dataset", "cloudlog", "--n", "2000",
            "--query", "grouped-count", "--parallel", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "workers" in out

    def test_parallel_matches_single_process_output(self, capsys):
        from repro.cli import main

        assert main([
            "run", "--dataset", "cloudlog", "--n", "2000",
            "--query", "grouped-count",
        ]) == 0
        single = capsys.readouterr().out
        assert main([
            "run", "--dataset", "cloudlog", "--n", "2000",
            "--query", "grouped-count", "--parallel", "2",
        ]) == 0
        parallel = capsys.readouterr().out
        pick = lambda text: re.search(  # noqa: E731
            r"(\d+) result events", text
        ).group(1)
        assert pick(single) == pick(parallel)

    def test_chaos_rejected_with_parallel(self, capsys):
        from repro.cli import main

        code = main([
            "run", "--dataset", "cloudlog", "--n", "2000",
            "--query", "grouped-count", "--parallel", "2",
            "--chaos", "0.5",
        ])
        assert code == 2


# ---------------------------------------------------------------------------
# Compiled shard workers: kernel pipelines shipped to shard processes
# ---------------------------------------------------------------------------

def _tuple_payload(t, k):
    return (t % 9, t % 5)


def _compiled_shapes():
    """(name, plan_builder(policy), row query_fn, row pre) covering every
    lowered kernel family.  The row leg replicates the compiled plan's
    per-shard pipeline with row operators; byte-identity through
    ``run_parallel`` then follows from the shared merge tree."""
    return [
        ("grouped-count",
         lambda p: QueryPlan().tumbling_window(10).sort(late_policy=p)
         .group_aggregate(Count()),
         lambda s: s.group_aggregate(Count()),
         lambda d: d.tumbling_window(10)),
        ("grouped-avg",
         lambda p: QueryPlan().tumbling_window(10).sort(late_policy=p)
         .group_aggregate(Avg(field(0))),
         lambda s: s.group_aggregate(Avg(field(0))),
         lambda d: d.tumbling_window(10)),
        ("count",
         lambda p: QueryPlan().tumbling_window(10).sort(late_policy=p)
         .count(),
         lambda s: s.count(),
         lambda d: d.tumbling_window(10)),
        ("session",
         lambda p: QueryPlan().sort(late_policy=p).session_window(15),
         lambda s: s.session_window(15),
         None),
        ("session-avg",
         lambda p: QueryPlan().sort(late_policy=p)
         .session_window(12, Avg(field(0))),
         lambda s: s.session_window(12, Avg(field(0))),
         None),
        ("coalesce",
         lambda p: QueryPlan().tumbling_window(10).sort(late_policy=p)
         .coalesce(),
         lambda s: s.coalesce(),
         lambda d: d.tumbling_window(10)),
        ("self-join",
         lambda p: QueryPlan().sort(late_policy=p).self_join(),
         lambda s: s.self_join(),
         None),
        ("pattern",
         lambda p: QueryPlan().sort(late_policy=p)
         .pattern_match(field(0) > 4, field(1) < 2, 20),
         lambda s: s.pattern_match(
             lambda e: e.payload[0] > 4, lambda e: e.payload[1] < 2, 20),
         None),
        ("group-apply",
         lambda p: QueryPlan().sort(late_policy=p).group_apply(
             lambda s: s.where(field(1) < 3).tumbling_window(16)
             .aggregate(Sum(field(0)))),
         lambda s: s.group_apply(
             lambda b: b.where(field(1) < 3).tumbling_window(16)
             .aggregate(Sum(field(0)))),
         None),
        ("group-apply-stage",
         lambda p: QueryPlan().sort(late_policy=p).group_apply(
             lambda s: s.where(field(0) > 2)),
         lambda s: s.group_apply(lambda b: b.where(field(0) > 2)),
         None),
        ("distinct",
         lambda p: QueryPlan().sort(late_policy=p).distinct(field(0)),
         lambda s: s.distinct(field(0)),
         None),
        ("raw-topk",
         lambda p: QueryPlan().tumbling_window(10).sort(late_policy=p)
         .top_k(2),
         lambda s: s.top_k(2),
         lambda d: d.tumbling_window(10)),
        ("where-grouped",
         lambda p: QueryPlan().where(field(0) > 2).tumbling_window(10)
         .sort(late_policy=p).group_aggregate(Sum(field(1))),
         lambda s: s.group_aggregate(Sum(field(1))),
         lambda d: d.where(lambda e: e.payload[0] > 2)
         .tumbling_window(10)),
    ]


COMPILED_SHAPES = _compiled_shapes()
_SHAPE_IDS = [shape[0] for shape in COMPILED_SHAPES]


def _run_compiled_pair(shape, policy, workers, n=450, memory_budget=None):
    """run_parallel the compiled plan and its row-operator twin over the
    same disordered stream; return both results."""
    name, build, row_q, row_pre = shape
    elements = disordered_elements(
        seed=17, n=n, lag=12, payload=_tuple_payload
    )
    compiled = CompiledShardPlan(build(policy), memory_budget=memory_budget)
    result = run_parallel(list(elements), compiled, workers, batch_size=64)
    sorter = lambda: ImpatienceSorter(  # noqa: E731
        key=_sync, late_policy=policy
    )
    reference = run_parallel(
        list(elements), RowPlan(row_q, sorter=sorter, pre=row_pre),
        workers, batch_size=64,
    )
    return result, reference


class TestCompiledShardPlan:
    @pytest.mark.parametrize(
        "policy", [LatePolicy.DROP, LatePolicy.ADJUST],
        ids=["drop", "adjust"],
    )
    @pytest.mark.parametrize("shape", COMPILED_SHAPES, ids=_SHAPE_IDS)
    def test_every_kernel_matches_row_plan(self, shape, policy):
        result, reference = _run_compiled_pair(shape, policy, workers=2)
        _assert_identical(result, reference, f"{shape[0]} {policy.name}")
        for stats in result.parallel["shards"]:
            assert stats["plan"] == "compiled"
            assert stats["engine"] == "columnar"

    @pytest.mark.parametrize("workers", WORKER_SWEEP)
    @pytest.mark.parametrize(
        "shape_name", ["grouped-avg", "session", "self-join"]
    )
    def test_worker_sweep(self, shape_name, workers):
        shape = COMPILED_SHAPES[_SHAPE_IDS.index(shape_name)]
        result, reference = _run_compiled_pair(
            shape, LatePolicy.DROP, workers
        )
        _assert_identical(result, reference, f"{shape_name} w={workers}")

    @pytest.mark.parametrize(
        "shape_name", ["grouped-avg", "distinct", "self-join"]
    )
    def test_memory_budget_spills_byte_identical(self, shape_name):
        """A tiny per-shard budget forces the external columnar sorter
        to spill; output must not change by a byte."""
        shape = COMPILED_SHAPES[_SHAPE_IDS.index(shape_name)]
        budgeted, _ = _run_compiled_pair(
            shape, LatePolicy.DROP, workers=2, memory_budget=2048
        )
        unbounded, _ = _run_compiled_pair(shape, LatePolicy.DROP, workers=2)
        _assert_identical(budgeted, unbounded, f"{shape_name} budget")

    @pytest.mark.parametrize(
        "shape_name", ["grouped-count", "session"]
    )
    def test_raise_guard_deterministic_across_worker_counts(
        self, shape_name
    ):
        """RAISE surfaces the same late event no matter how many workers
        split the stream — the coordinator-side guard sees the global
        arrival order, not a shard-local one."""
        shape = COMPILED_SHAPES[_SHAPE_IDS.index(shape_name)]
        _, build, _, _ = shape
        seen = []
        for workers in (1, 2, 4):
            elements = disordered_elements(
                seed=11, n=450, lag=3, payload=_tuple_payload
            )
            with pytest.raises(LateEventError) as err:
                run_parallel(
                    list(elements),
                    CompiledShardPlan(build(LatePolicy.RAISE)),
                    workers, batch_size=64,
                )
            seen.append(err.value.args)
        assert seen[0] == seen[1] == seen[2]

    def test_avg_rides_native_float_frames(self):
        """Satellite: avg results cross the ring as float64 FDATA
        frames — no pickled elements anywhere on the aggregate hot
        path, for both the vectorized plan and the compiled plan."""
        elements = disordered_elements(
            seed=9, n=500, lag=20, payload=_tuple_payload
        )
        vectorized = run_parallel(
            list(elements),
            GroupedAggregatePlan(10, agg="avg", align="pre"), 2,
            batch_size=64,
        )
        shape = COMPILED_SHAPES[_SHAPE_IDS.index("grouped-avg")]
        compiled = run_parallel(
            list(elements),
            CompiledShardPlan(shape[1](LatePolicy.DROP)), 2,
            batch_size=64,
        )
        for result in (vectorized, compiled):
            received = result.parallel["frames_received_by_kind"]
            sent = result.parallel["frames_sent_by_kind"]
            assert received.get("FDATA", 0) > 0
            assert "PICKLE" not in received
            assert "PICKLE" not in sent
            assert all(
                isinstance(e.payload, float) for e in result.events
            )
        _assert_identical(vectorized, compiled, "avg fdata")

    def test_tuple_payloads_ride_columnar_frames(self):
        """distinct emits multi-column int64 DATA frames, not pickles."""
        shape = COMPILED_SHAPES[_SHAPE_IDS.index("distinct")]
        result, _ = _run_compiled_pair(shape, LatePolicy.DROP, workers=2)
        received = result.parallel["frames_received_by_kind"]
        assert received.get("DATA", 0) > 0
        assert "PICKLE" not in received

    def test_unsupported_plan_raises_at_build_time(self):
        plan = (
            QueryPlan().where(lambda e: e.key < 4).tumbling_window(8)
            .sort().count()
        )
        with pytest.raises(UnsupportedPlanError) as err:
            CompiledShardPlan(plan)
        assert "opaque Python callable" in err.value.reason

    def test_describe_names_kernels_and_wire(self):
        shape = COMPILED_SHAPES[_SHAPE_IDS.index("grouped-avg")]
        plan = CompiledShardPlan(shape[1](LatePolicy.DROP))
        doc = plan.describe()
        assert doc["plan"] == "compiled"
        assert doc["wire"] == "float"
        assert doc["kernels"]

    def test_supervised_recovery_byte_identical(self):
        """A shard worker dying mid-run and being replayed under
        supervision reproduces the exact compiled-plan output."""
        shape = COMPILED_SHAPES[_SHAPE_IDS.index("grouped-count")]
        elements = disordered_elements(
            seed=23, n=450, lag=12, payload=_tuple_payload
        )
        reference = run_parallel(
            list(elements),
            CompiledShardPlan(shape[1](LatePolicy.DROP)), 2,
            batch_size=64,
        )
        recovered = run_parallel_supervised(
            list(elements),
            CompiledShardPlan(shape[1](LatePolicy.DROP)), 2,
            batch_size=64, fault=crash_once(1, after_rounds=1),
        )
        _assert_identical(recovered, reference, "supervised compiled")
