"""Tests for the benchmark harness and report formatting."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    offline_throughput,
    online_throughput,
    pipeline_throughput,
    sort_as_needed_speedup,
    stream_length,
)
from repro.bench.reporting import format_table, markdown_table
from repro.workloads import generate_synthetic


class TestStreamLength:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_N", raising=False)
        assert stream_length(12345) == 12345

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_N", "777")
        assert stream_length() == 777


class TestThroughputHarnesses:
    def test_offline(self):
        dataset = generate_synthetic(3_000, seed=1)
        meps = offline_throughput("impatience", dataset.timestamps)
        assert meps > 0

    def test_offline_unknown_name(self):
        with pytest.raises(KeyError):
            offline_throughput("bogosort", [1, 2])

    def test_online(self):
        dataset = generate_synthetic(3_000, seed=1)
        meps = online_throughput(
            "impatience", dataset.timestamps, frequency=500,
            reorder_latency=300,
        )
        assert meps > 0

    def test_pipeline(self):
        dataset = generate_synthetic(2_000, seed=1)
        meps = pipeline_throughput(
            lambda d: d.to_streamable(), dataset, 500, 300, repeats=2
        )
        assert meps > 0

    def test_sort_as_needed_contains_both_sides(self):
        dataset = generate_synthetic(2_000, seed=1)
        ops = lambda s: s.where(lambda e: e.key < 50)  # noqa: E731
        result = sort_as_needed_speedup(ops, ops, dataset, repeats=1)
        assert set(result) == {"baseline_meps", "pushdown_meps", "speedup"}
        assert result["speedup"] == pytest.approx(
            result["pushdown_meps"] / result["baseline_meps"]
        )


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["a", 1], ["bb", 22.5]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "22.500" in lines[4]

    def test_format_table_thousands_separator(self):
        text = format_table(["n"], [[1234567]])
        assert "1,234,567" in text

    def test_format_table_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_markdown_table(self):
        text = markdown_table(["x", "y"], [[1, 2.5]])
        lines = text.splitlines()
        assert lines[0] == "| x | y |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.500 |"
