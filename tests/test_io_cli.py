"""Tests for dataset CSV I/O and the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.errors import DatasetFormatError
from repro.workloads import generate_synthetic
from repro.workloads.io import load_dataset_csv, save_dataset_csv


class TestCsvRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        dataset = generate_synthetic(200, seed=3)
        path = tmp_path / "events.csv"
        save_dataset_csv(dataset, path)
        loaded = load_dataset_csv(path, name="roundtrip")
        assert loaded.timestamps == dataset.timestamps
        assert loaded.keys == dataset.keys
        assert loaded.payloads == dataset.payloads
        assert loaded.name == "roundtrip"
        assert loaded.params["source"] == str(path)

    def test_minimal_csv_defaults_columns(self, tmp_path):
        path = tmp_path / "min.csv"
        path.write_text("event_time\n5\n3\n9\n")
        loaded = load_dataset_csv(path)
        assert loaded.timestamps == [5, 3, 9]
        assert len(loaded.keys) == 3  # defaulted

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,stuff\n1,2\n")
        with pytest.raises(ValueError, match="event_time"):
            load_dataset_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("event_time,key\n1,0\n\n2,1\n")
        assert load_dataset_csv(path).timestamps == [1, 2]


class TestMalformedRows:
    def test_bad_row_carries_path_and_row_number(self, tmp_path):
        path = tmp_path / "rows.csv"
        path.write_text("event_time,key\n1,0\n2,oops\n3,1\n")
        with pytest.raises(DatasetFormatError) as excinfo:
            load_dataset_csv(path)
        # Row 3 of the file: the header is row 1.
        assert excinfo.value.row == 3
        assert excinfo.value.path == str(path)
        assert f"{path}:3" in str(excinfo.value)

    def test_bad_header_is_typed_with_row_1(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,stuff\n1,2\n")
        with pytest.raises(DatasetFormatError) as excinfo:
            load_dataset_csv(path)
        assert excinfo.value.row == 1

    def test_format_error_is_still_valueerror(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time\n")
        with pytest.raises(ValueError):
            load_dataset_csv(path)

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("event_time,key\n1,0\n2\n")
        with pytest.raises(DatasetFormatError, match="cannot parse"):
            load_dataset_csv(path)

    def test_lenient_skips_and_counts(self, tmp_path):
        path = tmp_path / "hostile.csv"
        path.write_text(
            "event_time,key\n1,0\n2,oops\nnope,1\n3,1\n4\n5,2\n"
        )
        loaded = load_dataset_csv(path, lenient=True)
        assert loaded.timestamps == [1, 3, 5]
        assert loaded.params["skipped_rows"] == 3

    def test_lenient_reports_zero_when_clean(self, tmp_path):
        path = tmp_path / "clean.csv"
        path.write_text("event_time,key\n1,0\n2,1\n")
        loaded = load_dataset_csv(path, lenient=True)
        assert loaded.params["skipped_rows"] == 0


class TestCli:
    def test_stats(self, capsys):
        assert main(["stats", "--dataset", "synthetic", "--n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "inversions" in out
        assert "mean run length" in out

    def test_latency(self, capsys):
        assert main(["latency", "--dataset", "cloudlog", "--n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "suggested latency" in out
        assert "100%" in out

    def test_sort(self, capsys):
        assert main([
            "sort", "--dataset", "androidlog", "--n", "2000",
            "--algorithm", "impatience",
        ]) == 0
        assert "M events/s" in capsys.readouterr().out

    def test_generate_then_stats_from_csv(self, tmp_path, capsys):
        out_csv = str(tmp_path / "gen.csv")
        assert main([
            "generate", "--dataset", "synthetic", "--n", "500",
            "--out", out_csv,
        ]) == 0
        assert main(["stats", "--csv", out_csv]) == 0
        assert "Disorder statistics (csv)" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo", "--dataset", "synthetic", "--n", "3000"]) == 0
        out = capsys.readouterr().out
        assert "windows:" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCliStructuredErrors:
    def test_missing_csv_exits_2_with_one_line_error(self, capsys):
        assert main(["stats", "--csv", "/nonexistent/events.csv"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: FileNotFoundError:")
        assert captured.err.count("\n") == 1
        assert "Traceback" not in captured.err

    def test_malformed_csv_exits_2_with_location(self, tmp_path, capsys):
        path = tmp_path / "broken.csv"
        path.write_text("event_time,key\n1,0\nnope,1\n")
        assert main(["stats", "--csv", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: DatasetFormatError:")
        assert f"{path}:3" in err

    def test_bad_chaos_spec_exits_2(self, capsys):
        assert main([
            "run", "--dataset", "synthetic", "--n", "500",
            "--chaos", "explode:p=1",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ChaosSpecError:")


class TestCliChaos:
    def test_supervised_run_reports_recovery(self, capsys):
        assert main([
            "run", "--dataset", "synthetic", "--n", "3000",
            "--chaos", "crash:punct=2;io:p=0.01", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "supervised: restarts=1" in out
        assert "chaos (seed 1)" in out

    def test_chaos_output_matches_plain_run(self, capsys):
        assert main([
            "run", "--dataset", "synthetic", "--n", "3000",
        ]) == 0
        plain = capsys.readouterr().out.splitlines()[0]
        assert main([
            "run", "--dataset", "synthetic", "--n", "3000",
            "--chaos", "crash:punct=3", "--seed", "0",
        ]) == 0
        chaotic = capsys.readouterr().out.splitlines()[0]
        # Same result-event count despite the mid-run crash (the line
        # differs only in elapsed time).
        assert plain.split(" in ")[0] == chaotic.split(" in ")[0]

    def test_supervised_metrics_export_has_resilience(self, tmp_path,
                                                      capsys):
        import json

        out_path = tmp_path / "metrics.json"
        assert main([
            "run", "--dataset", "synthetic", "--n", "2000",
            "--supervised", "--metrics-out", str(out_path),
        ]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["resilience"]["restarts"] == 0
        assert doc["resilience"]["quarantine"]["total"] == 0


class TestCliProfile:
    def test_profile(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main([
            "profile", "--dataset", "androidlog", "--n", "3000",
            "--regions", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "Regional disorder profile" in out
        assert out.count("\n") >= 6
