"""Tests for dataset CSV I/O and the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.workloads import generate_synthetic
from repro.workloads.io import load_dataset_csv, save_dataset_csv


class TestCsvRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        dataset = generate_synthetic(200, seed=3)
        path = tmp_path / "events.csv"
        save_dataset_csv(dataset, path)
        loaded = load_dataset_csv(path, name="roundtrip")
        assert loaded.timestamps == dataset.timestamps
        assert loaded.keys == dataset.keys
        assert loaded.payloads == dataset.payloads
        assert loaded.name == "roundtrip"
        assert loaded.params["source"] == str(path)

    def test_minimal_csv_defaults_columns(self, tmp_path):
        path = tmp_path / "min.csv"
        path.write_text("event_time\n5\n3\n9\n")
        loaded = load_dataset_csv(path)
        assert loaded.timestamps == [5, 3, 9]
        assert len(loaded.keys) == 3  # defaulted

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,stuff\n1,2\n")
        with pytest.raises(ValueError, match="event_time"):
            load_dataset_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("event_time,key\n1,0\n\n2,1\n")
        assert load_dataset_csv(path).timestamps == [1, 2]


class TestCli:
    def test_stats(self, capsys):
        assert main(["stats", "--dataset", "synthetic", "--n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "inversions" in out
        assert "mean run length" in out

    def test_latency(self, capsys):
        assert main(["latency", "--dataset", "cloudlog", "--n", "2000"]) == 0
        out = capsys.readouterr().out
        assert "suggested latency" in out
        assert "100%" in out

    def test_sort(self, capsys):
        assert main([
            "sort", "--dataset", "androidlog", "--n", "2000",
            "--algorithm", "impatience",
        ]) == 0
        assert "M events/s" in capsys.readouterr().out

    def test_generate_then_stats_from_csv(self, tmp_path, capsys):
        out_csv = str(tmp_path / "gen.csv")
        assert main([
            "generate", "--dataset", "synthetic", "--n", "500",
            "--out", out_csv,
        ]) == 0
        assert main(["stats", "--csv", out_csv]) == 0
        assert "Disorder statistics (csv)" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo", "--dataset", "synthetic", "--n", "3000"]) == 0
        out = capsys.readouterr().out
        assert "windows:" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCliProfile:
    def test_profile(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main([
            "profile", "--dataset", "androidlog", "--n", "3000",
            "--regions", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "Regional disorder profile" in out
        assert out.count("\n") >= 6
