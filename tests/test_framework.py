"""Integration tests for the Impatience framework (repro.framework)."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryBuildError
from repro.engine import DisorderedStreamable
from repro.framework import make_query
from repro.framework.audit import run_method
from repro.framework.queries import PAPER_QUERIES

LATENCIES = [500, 5_000, 50_000]
FREQ = 500


def build(dataset, query, latencies=LATENCIES, advanced=True):
    disordered = DisorderedStreamable.from_dataset(
        dataset, punctuation_frequency=FREQ
    ).tumbling_window(query.window_size)
    if advanced:
        return disordered.to_streamables(
            latencies, piq=query.piq, merge=query.merge
        )
    return disordered.to_streamables(latencies).apply(query.body)


class TestConstruction:
    def test_requires_latencies(self):
        disordered = DisorderedStreamable.from_elements([])
        with pytest.raises(QueryBuildError, match="at least one latency"):
            disordered.to_streamables([])

    def test_piq_without_merge_rejected(self):
        disordered = DisorderedStreamable.from_elements([])
        q = make_query("Q1")
        with pytest.raises(QueryBuildError, match="both piq and merge"):
            disordered.to_streamables([1, 2], piq=q.piq)

    def test_output_count_matches_latencies(self):
        disordered = DisorderedStreamable.from_elements([])
        streamables = disordered.to_streamables([1, 10, 100])
        assert len(streamables) == 3
        assert streamables.latencies == [1, 10, 100]
        assert len(list(iter(streamables))) == 3


class TestEngineSelector:
    """``Streamables.run(engine=...)`` mirrors ``QueryPlan.run``'s
    selector: framework runs always execute the row pipeline and say so;
    ``columnar`` is an explicit, loud error."""

    def test_run_records_row_engine_and_reason(self, cloudlog_small):
        query = make_query("Q1")
        result = build(cloudlog_small, query).run()
        assert result.engine == "row"
        assert "opaque operator DAG" in result.engine_reason

    def test_engine_row_is_accepted(self, cloudlog_small):
        query = make_query("Q1")
        result = build(cloudlog_small, query).run(engine="row")
        assert result.engine == "row"
        assert result.engine_reason == "engine='row' requested"

    def test_engine_columnar_raises(self, cloudlog_small):
        query = make_query("Q1")
        with pytest.raises(QueryBuildError, match="cannot be compiled"):
            build(cloudlog_small, query).run(engine="columnar")

    def test_rejects_unknown_engine(self, cloudlog_small):
        query = make_query("Q1")
        with pytest.raises(QueryBuildError, match="engine must be"):
            build(cloudlog_small, query).run(engine="fused")


class TestSemantics:
    @pytest.mark.parametrize("query", PAPER_QUERIES, ids=lambda q: q.name)
    def test_advanced_final_output_matches_ground_truth(
        self, query, cloudlog_small
    ):
        """The advanced framework's most-complete output must equal the
        single-sort full query at the same (max) latency."""
        advanced = build(cloudlog_small, query).run()
        truth = build(
            cloudlog_small, query, latencies=LATENCIES[-1:], advanced=False
        ).run()
        got = {
            (e.sync_time, e.key): e.payload
            for e in advanced.collectors[-1].events
        }
        want = {
            (e.sync_time, e.key): e.payload
            for e in truth.collectors[0].events
        }
        assert got == want

    @pytest.mark.parametrize("query", PAPER_QUERIES[:2], ids=lambda q: q.name)
    def test_basic_final_output_matches_ground_truth(
        self, query, cloudlog_small
    ):
        basic = build(cloudlog_small, query, advanced=False).run()
        truth = build(
            cloudlog_small, query, latencies=LATENCIES[-1:], advanced=False
        ).run()
        got = {
            (e.sync_time, e.key): e.payload
            for e in basic.collectors[-1].events
        }
        want = {
            (e.sync_time, e.key): e.payload
            for e in truth.collectors[0].events
        }
        assert got == want

    def test_passthrough_piq_merge_equals_basic(self, synthetic_small):
        """Section V-B: pass-through PIQ/merge reduces the advanced
        framework to the basic framework."""
        identity = lambda s: s  # noqa: E731 - the paper's pass-through
        disordered = DisorderedStreamable.from_dataset(
            synthetic_small, punctuation_frequency=FREQ
        )
        via_advanced = disordered.to_streamables(
            LATENCIES, piq=identity, merge=identity
        ).run()
        disordered2 = DisorderedStreamable.from_dataset(
            synthetic_small, punctuation_frequency=FREQ
        )
        via_basic = disordered2.to_streamables(LATENCIES).run()
        for a, b in zip(via_advanced.collectors, via_basic.collectors):
            assert a.sync_times == b.sync_times
            assert a.payloads == b.payloads

    def test_outputs_are_sorted_and_nested(self, cloudlog_small):
        """Each output is sync-ordered; later outputs contain at least as
        many raw events (basic framework)."""
        result = build(
            cloudlog_small, make_query("Q1"), advanced=False
        ).run()
        # basic: outputs carry query results; check via partition ledger
        sizes = result.summary()["outputs"]
        assert result.partition.routed[0] > 0
        for collector in result.collectors:
            assert collector.sync_times == sorted(collector.sync_times)
        assert sizes == sorted(sizes)

    def test_completeness_monotone_in_latency(self, androidlog_small):
        result = build(androidlog_small, make_query("Q1")).run()
        completeness = [
            result.completeness(i) for i in range(len(result.collectors))
        ]
        assert completeness == sorted(completeness)
        assert completeness[-1] <= 1.0


class TestMemory:
    def test_advanced_uses_less_memory_than_basic(self, cloudlog_small):
        """Figure 10(b)'s headline: embedding PIQ/merge shrinks the union
        buffers from raw events to per-window aggregates.  Latencies must
        sit inside the stream horizon (as in the paper, where 1 h << the
        log's span) for the union buffering to be the dominant term."""
        query = make_query("Q1", window_size=100)
        latencies = [200, 1_000, 4_000]
        advanced = build(cloudlog_small, query, latencies=latencies).run()
        basic = build(
            cloudlog_small, query, latencies=latencies, advanced=False
        ).run()
        assert advanced.memory.peak_events < basic.memory.peak_events / 4

    def test_memory_meter_sampled(self, cloudlog_small):
        result = build(cloudlog_small, make_query("Q1")).run()
        assert result.memory.samples > 0
        assert result.memory.peak_mb >= 0


class TestRunMethodAudit:
    def test_all_methods_run(self, cloudlog_small):
        query = make_query("Q1")
        for method in ("advanced", "basic", "min", "max"):
            result = run_method(
                method, cloudlog_small, query, LATENCIES,
                punctuation_frequency=FREQ,
            )
            assert result.method == method
            assert result.input_events == len(cloudlog_small)
            assert result.elapsed_seconds > 0
            assert result.throughput_meps > 0

    def test_min_method_uses_first_latency_only(self, cloudlog_small):
        result = run_method(
            "min", cloudlog_small, make_query("Q1"), LATENCIES,
            punctuation_frequency=FREQ,
        )
        assert result.latencies == [LATENCIES[0]]
        assert len(result.output_events) == 1

    def test_min_loses_events_max_does_not(self, cloudlog_small):
        """Table II's tradeoff, on the burst-y CloudLog simulation."""
        query = make_query("Q1")
        low = run_method(
            "min", cloudlog_small, query, [50, 50_000],
            punctuation_frequency=FREQ,
        )
        high = run_method(
            "max", cloudlog_small, query, [50, 50_000],
            punctuation_frequency=FREQ,
        )
        assert low.final_completeness < 1.0
        assert high.final_completeness > low.final_completeness

    def test_advanced_matches_max_completeness(self, cloudlog_small):
        query = make_query("Q1")
        lat = [50, 1_000, 50_000]
        adv = run_method(
            "advanced", cloudlog_small, query, lat, punctuation_frequency=FREQ
        )
        mx = run_method(
            "max", cloudlog_small, query, lat, punctuation_frequency=FREQ
        )
        assert adv.final_completeness == pytest.approx(
            mx.final_completeness, abs=1e-9
        )

    def test_unknown_method(self, cloudlog_small):
        with pytest.raises(ValueError, match="unknown method"):
            run_method("turbo", cloudlog_small, make_query("Q1"), LATENCIES)

    def test_table2_rows(self, cloudlog_small):
        from repro.framework.audit import table2_rows

        rows = table2_rows(
            cloudlog_small, make_query("Q1"), [50, 50_000],
            punctuation_frequency=FREQ,
        )
        by_method = {row["method"]: row for row in rows}
        assert set(by_method) == {"advanced", "basic", "min", "max"}
        assert by_method["min"]["completeness"] <= by_method["max"]["completeness"]
        assert by_method["advanced"]["completeness"] == pytest.approx(
            by_method["max"]["completeness"]
        )
