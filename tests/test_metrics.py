"""Tests for the four disorder measures (repro.metrics.disorder)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    count_interleaved_runs,
    count_inversions,
    count_inversions_mergesort,
    count_natural_runs,
    max_inversion_distance,
    measure_disorder,
)

int_lists = st.lists(st.integers(-500, 500), max_size=300)


class TestInversions:
    def test_sorted_has_none(self):
        assert count_inversions(list(range(100))) == 0

    def test_reverse_has_max(self):
        n = 50
        assert count_inversions(list(range(n, 0, -1))) == n * (n - 1) // 2

    def test_ties_are_not_inversions(self):
        assert count_inversions([1, 1, 1]) == 0
        assert count_inversions([2, 1, 1]) == 2

    def test_known_small(self):
        assert count_inversions([2, 6, 5, 1, 4, 3, 7, 8]) == 9

    def test_empty_and_single(self):
        assert count_inversions([]) == 0
        assert count_inversions([7]) == 0

    @given(int_lists)
    @settings(max_examples=150, deadline=None)
    def test_fenwick_agrees_with_mergesort(self, data):
        assert count_inversions(data) == count_inversions_mergesort(data)

    @given(int_lists)
    @settings(max_examples=80, deadline=None)
    def test_brute_force_small(self, data):
        data = data[:40]
        brute = sum(
            1
            for i in range(len(data))
            for j in range(i + 1, len(data))
            if data[i] > data[j]
        )
        assert count_inversions(data) == brute


class TestDistance:
    def test_sorted(self):
        assert max_inversion_distance(list(range(50))) == 0

    def test_single_displaced_element(self):
        data = list(range(100))
        data.append(0)  # a duplicate 0 at the very end: inverts with 1..99
        assert max_inversion_distance(data) == 99

    def test_reverse(self):
        assert max_inversion_distance([3, 2, 1]) == 2

    def test_ties_do_not_count(self):
        assert max_inversion_distance([5, 5, 5]) == 0

    @given(int_lists)
    @settings(max_examples=80, deadline=None)
    def test_brute_force_small(self, data):
        data = data[:40]
        brute = max(
            (
                j - i
                for i in range(len(data))
                for j in range(i + 1, len(data))
                if data[i] > data[j]
            ),
            default=0,
        )
        assert max_inversion_distance(data) == brute


class TestRuns:
    def test_empty(self):
        assert count_natural_runs([]) == 0

    def test_sorted_is_one_run(self):
        assert count_natural_runs([1, 2, 2, 3]) == 1

    def test_reverse_is_n_runs(self):
        assert count_natural_runs([3, 2, 1]) == 3

    def test_paper_example(self):
        assert count_natural_runs([2, 6, 5, 1, 4, 3, 7, 8]) == 4


class TestInterleaved:
    def test_single_stream(self):
        assert count_interleaved_runs(list(range(100))) == 1

    def test_reverse(self):
        assert count_interleaved_runs([5, 4, 3, 2, 1]) == 5

    def test_two_interleaved(self):
        # 1,10,2,20,3,30: two ascending lanes.
        assert count_interleaved_runs([1, 10, 2, 20, 3, 30]) == 2

    @given(int_lists)
    @settings(max_examples=80, deadline=None)
    def test_equals_longest_strictly_decreasing_subsequence(self, data):
        """Dilworth's theorem, checked against O(n^2) DP."""
        data = data[:60]
        n = len(data)
        lds = [1] * n
        best = 1 if n else 0
        for j in range(n):
            for i in range(j):
                if data[i] > data[j] and lds[i] + 1 > lds[j]:
                    lds[j] = lds[i] + 1
            if lds[j] > best:
                best = lds[j]
        assert count_interleaved_runs(data) == best

    @given(int_lists)
    @settings(max_examples=80, deadline=None)
    def test_interleaved_at_most_runs(self, data):
        """Concatenation is a special interleaving."""
        assert count_interleaved_runs(data) <= max(
            count_natural_runs(data), 0 if not data else 1
        )


class TestMeasureDisorder:
    def test_full_bundle(self):
        stats = measure_disorder([2, 6, 5, 1, 4, 3, 7, 8])
        assert stats.n == 8
        assert stats.inversions == 9
        assert stats.distance == 4
        assert stats.runs == 4
        assert stats.interleaved == 4
        assert stats.as_dict()["runs"] == 4

    def test_mean_run_length(self):
        stats = measure_disorder([1, 2, 3, 0, 1, 2])
        assert stats.runs == 2
        assert stats.mean_run_length == 3.0

    def test_empty_stream(self):
        stats = measure_disorder([])
        assert stats.n == 0
        assert stats.mean_run_length == 0.0

    @given(int_lists)
    @settings(max_examples=60, deadline=None)
    def test_sorted_stream_is_clean(self, data):
        stats = measure_disorder(sorted(data))
        assert stats.inversions == 0
        assert stats.distance == 0
        assert stats.runs <= 1 or stats.runs == 1
        assert stats.interleaved <= 1
