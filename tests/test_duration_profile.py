"""Tests for duration operators and stream profiling utilities."""

from __future__ import annotations

import pytest

from repro.engine import DisorderedStreamable, Streamable
from repro.engine.event import Event
from repro.engine.operators import Collector
from repro.engine.operators.duration import (
    AlterEventDuration,
    ClipEventDuration,
)
from repro.metrics.profile import (
    disorder_profile,
    lateness_quantiles,
    lateness_values,
    suggest_reorder_latency,
)


class TestDurationOperators:
    def test_alter_sets_fixed_lifetime(self):
        op = AlterEventDuration(60)
        sink = Collector()
        op.add_downstream(sink)
        op.on_event(Event(10, 11))
        assert (sink.events[0].sync_time, sink.events[0].other_time) == (10, 70)

    def test_clip_caps_lifetime(self):
        op = ClipEventDuration(5)
        sink = Collector()
        op.add_downstream(sink)
        op.on_event(Event(10, 100))
        op.on_event(Event(20, 22))
        assert [(e.sync_time, e.other_time) for e in sink.events] == [
            (10, 15), (20, 22),
        ]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AlterEventDuration(0)
        with pytest.raises(ValueError):
            ClipEventDuration(0)

    def test_available_on_both_stream_types(self):
        events = [Event(t) for t in (3, 1, 2)]
        ordered = (
            DisorderedStreamable.from_elements(events)
            .alter_duration(10)
            .clip_duration(5)
            .to_streamable()
            .collect()
        )
        assert [(e.sync_time, e.other_time) for e in ordered.events] == [
            (1, 6), (2, 7), (3, 8),
        ]
        stream = Streamable.from_elements(
            [Event(1)]
        ).alter_duration(4).collect()
        assert stream.events[0].other_time == 5

    def test_alter_duration_enables_overlap_join(self):
        """alter_duration is how 'within d of each other' joins are built."""
        events = [
            Event(0, key=1, payload="a"),
            Event(3, key=1, payload="b"),
            Event(50, key=1, payload="c"),
        ]
        base = Streamable.from_elements(events).alter_duration(10)
        a = base.where(lambda e: e.payload == "a")
        rest = base.where(lambda e: e.payload != "a")
        out = a.join(rest).collect()
        assert [e.payload for e in out.events] == [("a", "b")]


class TestLateness:
    def test_values(self):
        assert lateness_values([1, 5, 3, 7, 2]) == [0, 0, 2, 0, 5]

    def test_empty(self):
        assert lateness_values([]) == []
        assert lateness_quantiles([])[1.0] == 0

    def test_quantiles(self):
        # lateness: [0, 0, 10] -> median 0, max 10
        q = lateness_quantiles([10, 20, 10], quantiles=(0.5, 1.0))
        assert q[0.5] == 0
        assert q[1.0] == 10

    def test_suggest_full_coverage(self):
        times = [10, 20, 5, 30, 25]
        latency = suggest_reorder_latency(times, coverage=1.0)
        assert latency == max(lateness_values(times)) == 15

    def test_suggest_partial_coverage_smaller(self):
        times = list(range(100)) + [0]  # one maximally late event
        assert suggest_reorder_latency(times, 1.0) == 99
        assert suggest_reorder_latency(times, 0.9) == 0

    def test_suggest_invalid_coverage(self):
        with pytest.raises(ValueError):
            suggest_reorder_latency([1], coverage=0.0)

    def test_suggested_latency_achieves_coverage(self, cloudlog_small):
        """The headline property: sorting with the suggested latency
        preserves at least the requested fraction of events."""
        from repro.core.impatience import ImpatienceSorter
        from repro.engine.ingress import ingress_timestamps

        times = cloudlog_small.timestamps
        latency = suggest_reorder_latency(times, coverage=0.9)
        sorter = ImpatienceSorter()
        for tag, value in ingress_timestamps(times, 100, latency):
            if tag == "event":
                sorter.insert(value)
            else:
                sorter.on_punctuation(value)
        sorter.flush()
        kept = 1 - sorter.late.dropped / len(times)
        assert kept >= 0.9


class TestDisorderProfile:
    def test_regions_cover_stream(self):
        profile = disorder_profile(list(range(100)), region_size=30)
        assert [r["offset"] for r in profile] == [0, 30, 60, 90]
        assert sum(r["n"] for r in profile) == 100

    def test_sorted_regions_are_clean(self):
        profile = disorder_profile(list(range(100)), region_size=50)
        assert all(r["inversions"] == 0 for r in profile)
        assert all(r["runs"] == 1 for r in profile)

    def test_detects_local_burst(self):
        data = list(range(50)) + list(range(100, 50, -1)) + list(range(101, 150))
        profile = disorder_profile(data, region_size=50)
        assert profile[0]["inversions"] == 0
        assert profile[1]["inversions"] > 1000  # the reversed region

    def test_invalid_region_size(self):
        with pytest.raises(ValueError):
            disorder_profile([1, 2], region_size=1)

    def test_android_coarse_vs_fine(self, androidlog_small):
        """AndroidLog's signature: regions are locally much cleaner than
        the global stream (chaos lives at the coarse granularity)."""
        from repro.metrics import measure_disorder

        times = androidlog_small.timestamps
        global_stats = measure_disorder(times)
        regions = disorder_profile(times, region_size=500)
        local_inversion_rate = sum(r["inversions"] for r in regions) / len(times)
        global_inversion_rate = global_stats.inversions / len(times)
        assert local_inversion_rate < global_inversion_rate / 3
