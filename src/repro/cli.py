"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``stats``       Table I disorder measures for a dataset (built-in or CSV).
``latency``     Suggest reorder latencies for target completeness levels.
``profile``     Per-region disorder profile (the Figure 2 zoom).
``sort``        Sort a dataset with a chosen algorithm; report throughput.
``generate``    Write a simulated workload to CSV.
``demo``        Run the windowed-count quickstart end to end.
``run``         Run an example query fully instrumented; ``--engine``
                picks the execution path (``auto`` compiles to the fused
                columnar pipeline when possible); ``--metrics-out``
                exports the observability JSON document.  ``--chaos`` /
                ``--supervised`` run it under the fault-tolerant
                supervisor with seeded fault injection;
                ``--memory-budget`` bounds the sorter's resident buffer
                by spilling cold sorted runs to disk.

Errors from unreadable or malformed inputs exit with status 2 and a
one-line ``error: <kind>: <detail>`` on stderr — never a traceback.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.reporting import format_table
from repro.core.errors import ReproError
from repro.metrics import measure_disorder
from repro.metrics.profile import lateness_quantiles, suggest_reorder_latency
from repro.sorting.registry import OFFLINE_SORTS, offline_sort
from repro.workloads import DATASET_NAMES, load_dataset
from repro.workloads.io import load_dataset_csv, save_dataset_csv

__all__ = ["main"]


def _load(args):
    if args.csv:
        return load_dataset_csv(args.csv)
    return load_dataset(args.dataset, args.n)


def _add_source(parser):
    parser.add_argument("--dataset", default="cloudlog",
                        choices=list(DATASET_NAMES))
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument("--csv", default=None,
                        help="read events from a CSV instead of simulating")


def _cmd_stats(args):
    dataset = _load(args)
    stats = measure_disorder(dataset.timestamps)
    print(format_table(
        ["measure", "value"],
        [
            ["events", stats.n],
            ["inversions", stats.inversions],
            ["distance", stats.distance],
            ["runs", stats.runs],
            ["interleaved", stats.interleaved],
            ["mean run length", round(stats.mean_run_length, 2)],
        ],
        title=f"Disorder statistics ({dataset.name})",
    ))
    return 0


def _cmd_latency(args):
    dataset = _load(args)
    quantiles = lateness_quantiles(
        dataset.timestamps, (0.5, 0.9, 0.95, 0.99, 1.0)
    )
    rows = [
        [f"{q:.0%}", lateness, suggest_reorder_latency(dataset.timestamps, q)]
        for q, lateness in sorted(quantiles.items())
    ]
    print(format_table(
        ["completeness", "lateness quantile", "suggested latency"],
        rows,
        title=f"Reorder-latency suggestions ({dataset.name})",
    ))
    return 0


def _cmd_profile(args):
    from repro.metrics.profile import disorder_profile

    dataset = _load(args)
    region = max(len(dataset) // args.regions, 2)
    rows = [
        [
            row["offset"], row["n"], row["inversions"], row["runs"],
            row["interleaved"], round(row["mean_run_length"], 2),
        ]
        for row in disorder_profile(dataset.timestamps, region_size=region)
    ]
    print(format_table(
        ["offset", "n", "inversions", "runs", "interleaved", "mean run"],
        rows,
        title=f"Regional disorder profile ({dataset.name}, "
              f"{args.regions} regions)",
    ))
    return 0


def _cmd_sort(args):
    dataset = _load(args)
    start = time.perf_counter()
    result = offline_sort(args.algorithm, dataset.timestamps)
    elapsed = time.perf_counter() - start
    assert result == sorted(dataset.timestamps)
    print(
        f"{args.algorithm}: {len(result):,} events in {elapsed:.3f}s "
        f"({len(result) / elapsed / 1e6:.3f} M events/s)"
    )
    return 0


def _cmd_generate(args):
    dataset = load_dataset(args.dataset, args.n, seed=args.seed)
    save_dataset_csv(dataset, args.out)
    print(f"wrote {len(dataset):,} events to {args.out}")
    return 0


def _cmd_demo(args):
    from repro.engine import DisorderedStreamable

    dataset = _load(args)
    latency = suggest_reorder_latency(dataset.timestamps, 0.99)
    result = (
        DisorderedStreamable.from_dataset(
            dataset, punctuation_frequency=1_000, reorder_latency=latency
        )
        .tumbling_window(max(args.n // 100, 1))
        .to_streamable()
        .count()
        .collect()
    )
    print(f"reorder latency (99% coverage): {latency}")
    print(f"windows: {len(result.events)}, "
          f"events counted: {sum(result.payloads):,}")
    for event in result.events[:5]:
        print(f"  window [{event.sync_time} .. {event.other_time}) "
              f"-> {event.payload}")
    return 0


def _single_plan(query, window):
    """Single-process :class:`QueryPlan` for a ``run`` query.

    All three plans window *before* the sort (the §IV push-down), so the
    compiler can fuse them; ``top-k`` over raw events is tie-order
    sensitive and legitimately falls back to the row engine under
    ``--engine auto``.
    """
    from repro.engine import QueryPlan
    from repro.engine.operators.aggregates import Count

    plan = QueryPlan().tumbling_window(window).sort()
    if query == "grouped-count":
        return plan.group_aggregate(Count())
    if query == "top-k":
        return plan.top_k(3)
    return plan.count()


def _parallel_plan(query, window, engine="auto"):
    """Per-shard plan + coordinator finalize for a ``run`` query.

    Under ``--engine auto`` (default) and ``--engine columnar`` every
    shard worker runs the fused compiled kernel pipeline
    (:class:`~repro.parallel.CompiledShardPlan`); ``--engine row``
    forces the row-operator shard plans.  ``grouped-count`` is
    key-local, so the whole query runs inside the shard workers.  The
    other two decompose: each shard computes its partial per-window
    answer and a coordinator ``finalize`` query combines the partials —
    summed counts for the global ``windowed-count``,
    top-k-of-shard-top-ks for ``top-k``.  All plans keep the windowing
    stage *before* the per-shard sort (the §IV push-down), matching the
    single-process plans byte-for-byte — including which events count
    as late.

    Returns ``(plan, engine_name, engine_reason)``; ``engine_reason``
    is the compiler's fallback reason when ``auto`` lands on the row
    path.  Raises
    :class:`~repro.engine.compiler.UnsupportedPlanError` when
    ``columnar`` is forced on a shape the compiler cannot lower.
    """
    from repro.engine import QueryPlan
    from repro.engine.compiler import UnsupportedPlanError
    from repro.engine.operators.aggregates import Count, Sum
    from repro.parallel import CompiledShardPlan, RowPlan

    if query == "grouped-count":
        qplan = (QueryPlan().tumbling_window(window).sort()
                 .group_aggregate(Count()))
        finalize = None
    elif query == "windowed-count":
        qplan = QueryPlan().tumbling_window(window).sort().count()
        finalize = (
            lambda s: s.tumbling_window(window).aggregate(Sum())
        )
    else:
        qplan = QueryPlan().tumbling_window(window).sort().top_k(3)
        finalize = lambda s: s.top_k(3)

    reason = None
    if engine in ("auto", "columnar"):
        try:
            plan = CompiledShardPlan(qplan, finalize=finalize)
            return plan, "columnar", None
        except UnsupportedPlanError as exc:
            if engine == "columnar":
                raise
            reason = exc.reason

    if query == "grouped-count":
        plan = RowPlan(
            lambda s: s.group_aggregate(Count()),
            pre=lambda d: d.tumbling_window(window),
        )
    elif query == "windowed-count":
        plan = RowPlan(
            lambda s: s.count(),
            pre=lambda d: d.tumbling_window(window),
            finalize=finalize,
        )
    else:
        plan = RowPlan(
            lambda s: s.top_k(3),
            pre=lambda d: d.tumbling_window(window),
            finalize=finalize,
        )
    return plan, "row", reason


def _cmd_run(args):
    from repro.engine import DisorderedStreamable
    from repro.engine.operators.aggregates import Count
    from repro.framework.memory import MemoryMeter
    from repro.observability import MetricsRegistry
    from repro.bench.reporting import format_metrics_summary

    memory_budget = None
    if args.memory_budget is not None:
        from repro.sorting.external import parse_memory_budget

        if args.supervised or args.chaos:
            print("error: QueryBuildError: --memory-budget runs the "
                  "bounded-memory engine path; it cannot be combined with "
                  "--supervised/--chaos (checkpoint budgeted sorters via "
                  "resilience.SorterSupervisor)", file=sys.stderr)
            return 2
        if args.parallel:
            print("error: QueryBuildError: --memory-budget bounds the "
                  "single-process sorter; with --parallel each shard "
                  "buffers independently", file=sys.stderr)
            return 2
        try:
            memory_budget = parse_memory_budget(args.memory_budget)
        except ValueError as exc:
            print(f"error: ValueError: {exc}", file=sys.stderr)
            return 2
    dataset = _load(args)
    latency = (
        args.latency if args.latency is not None
        else suggest_reorder_latency(dataset.timestamps, 0.99)
    )
    window = args.window or max(len(dataset) // 100, 1)
    if args.parallel:
        return _run_parallel_cli(args, dataset, latency, window)
    disordered = DisorderedStreamable.from_dataset(
        dataset, args.punctuation_frequency, latency
    )
    registry = MetricsRegistry()
    meter = MemoryMeter()
    resilience = None
    engine_line = None
    start = time.perf_counter()
    if args.supervised or args.chaos:
        if args.engine != "auto":
            print("error: QueryBuildError: --supervised/--chaos run on the "
                  "row operator runtime; drop --engine", file=sys.stderr)
            return 2
        from repro.resilience import run_supervised

        queries = {
            "windowed-count": lambda d: (
                d.tumbling_window(window).to_streamable().count()
            ),
            "grouped-count": lambda d: (
                d.tumbling_window(window).to_streamable()
                .group_aggregate(Count())
            ),
            "top-k": lambda d: (
                d.tumbling_window(window).to_streamable().top_k(3)
            ),
        }
        outcome = run_supervised(
            queries[args.query](disordered), chaos=args.chaos,
            seed=args.seed, quarantine=True,
            metrics=registry, memory=meter,
        )
        elapsed = time.perf_counter() - start
        n_results = len(outcome.events)
        resilience = outcome.resilience_doc()
        snapshot = None
    else:
        plan = _single_plan(args.query, window)
        result = plan.run(disordered, engine=args.engine, metrics=registry,
                          memory_budget=memory_budget)
        elapsed = time.perf_counter() - start
        n_results = len(result)
        if result.engine == "columnar":
            engine_line = "engine: columnar (fused kernel pipeline)"
        else:
            engine_line = f"engine: row ({result.reason})"
        if result.spill is not None:
            spill = result.spill
            engine_line += (
                f"\nspill: budget {spill['budget_bytes']:,} B, "
                f"{spill['runs_spilled']} runs spilled "
                f"({spill['bytes_written']:,} B written / "
                f"{spill['bytes_read']:,} B read), "
                f"merge fan-in <= {spill['max_merge_fan_in']}, "
                f"peak buffered {spill['peak_buffered_bytes']:,} B"
            )
        snapshot = result.snapshot(meta={
            "query": args.query,
            "dataset": dataset.name,
            "n": len(dataset),
            "window": window,
            "punctuation_frequency": args.punctuation_frequency,
            "reorder_latency": latency,
            "elapsed_s": elapsed,
            "throughput_meps": len(dataset) / elapsed / 1e6,
        })
    if snapshot is None:
        snapshot = registry.snapshot(
            memory=meter, resilience=resilience, meta={
                "query": args.query,
                "dataset": dataset.name,
                "n": len(dataset),
                "window": window,
                "punctuation_frequency": args.punctuation_frequency,
                "reorder_latency": latency,
                "elapsed_s": elapsed,
                "throughput_meps": len(dataset) / elapsed / 1e6,
            },
        )

    print(
        f"{args.query} over {dataset.name} (n={len(dataset):,}, "
        f"reorder latency {latency}): {n_results} result events "
        f"in {elapsed:.3f}s"
    )
    if engine_line:
        print(engine_line)
    print()
    print(format_metrics_summary(snapshot))
    if resilience is not None:
        quarantined = (resilience["quarantine"] or {}).get("total", 0)
        print()
        print(
            f"supervised: restarts={resilience['restarts']} "
            f"retries={resilience['retries']} "
            f"checkpoints={resilience['checkpoints']} "
            f"deduplicated={resilience['outputs_deduplicated']} "
            f"quarantined={quarantined}"
        )
        if args.chaos:
            fired = resilience.get("chaos", {}).get("fired", {})
            print(f"chaos (seed {args.seed}): fired={fired or 'none'}")
    if args.metrics_out:
        try:
            snapshot.save(args.metrics_out)
        except OSError as exc:
            print(f"error: cannot write {args.metrics_out}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"\nwrote {args.metrics_out}")
    return 0


def _run_parallel_cli(args, dataset, latency, window):
    """The ``run --parallel N`` path: shard workers + columnar exchange."""
    from repro.engine.ingress import ingress_dataset
    from repro.engine.stream import Streamable
    from repro.observability import MetricsRegistry

    if args.chaos:
        print("error: QueryBuildError: --chaos is single-process fault "
              "injection; with --parallel use --supervised (worker-crash "
              "recovery)", file=sys.stderr)
        return 2

    from repro.parallel import parse_parallel_spec

    try:
        workers, policy = parse_parallel_spec(args.parallel)
    except ValueError as exc:
        print(f"error: ValueError: {exc}", file=sys.stderr)
        return 2
    if policy is not None and args.engine == "row":
        print("error: QueryBuildError: --parallel auto rescales compiled "
              "shard state; row-plan operator state cannot be "
              "re-partitioned — drop --engine row or use a fixed worker "
              "count", file=sys.stderr)
        return 2
    if workers < 1:
        print("error: QueryBuildError: workers must be >= 1",
              file=sys.stderr)
        return 2

    from repro.engine.compiler import UnsupportedPlanError

    try:
        plan, engine_name, engine_reason = _parallel_plan(
            args.query, window, args.engine
        )
    except UnsupportedPlanError as exc:
        print("error: QueryBuildError: --engine columnar forced, but the "
              f"'{args.query}' shard plan cannot be compiled: {exc.reason}",
              file=sys.stderr)
        return 2
    if policy is not None and not getattr(plan, "rescalable", False):
        reason = getattr(plan, "rescale_reason", None) or "not rescalable"
        print(f"error: QueryBuildError: --parallel auto cannot rescale "
              f"the '{args.query}' plan: {reason}", file=sys.stderr)
        return 2
    ingress = ingress_dataset(dataset, args.punctuation_frequency, latency)
    resilience = None
    start = time.perf_counter()
    if args.supervised:
        from repro.resilience.parallel import run_parallel_supervised

        outcome = run_parallel_supervised(
            ingress, plan, workers, fault=None, autoscale=policy
        )
        parallel_doc = outcome.parallel
        resilience = outcome.resilience_doc()
        if plan.finalize is not None:
            finalized = plan.finalize(
                Streamable.from_elements(outcome.elements)
            ).collect()
            n_results = len(finalized.events)
        else:
            n_results = len(outcome.events)
    else:
        from repro.parallel import run_parallel

        result = run_parallel(ingress, plan, workers, autoscale=policy)
        parallel_doc = result.parallel
        n_results = len(result.events)
    elapsed = time.perf_counter() - start

    snapshot = MetricsRegistry(trace=False).snapshot(
        resilience=resilience, parallel=parallel_doc, meta={
            "query": args.query,
            "dataset": dataset.name,
            "n": len(dataset),
            "window": window,
            "punctuation_frequency": args.punctuation_frequency,
            "reorder_latency": latency,
            "workers": workers,
            "parallel_spec": str(args.parallel),
            "engine": engine_name,
            "engine_reason": engine_reason,
            "elapsed_s": elapsed,
            "throughput_meps": len(dataset) / elapsed / 1e6,
        },
    )

    workers_label = (
        f"{workers} workers" if policy is None else
        f"auto workers ({policy.min_workers}-{policy.max_workers})"
    )
    print(
        f"{args.query} over {dataset.name} (n={len(dataset):,}, "
        f"reorder latency {latency}, {workers_label}): "
        f"{n_results} result events in {elapsed:.3f}s "
        f"({len(dataset) / elapsed / 1e6:.3f} M events/s)"
    )
    if engine_name == "columnar":
        print("engine: columnar (compiled shard kernels)")
    elif engine_reason is not None:
        print(f"engine: row ({engine_reason})")
    else:
        print("engine: row (forced)")
    print()
    print(format_parallel_summary(parallel_doc))
    if resilience is not None:
        print()
        print(
            f"supervised: restarts={resilience['restarts']} "
            f"deduplicated={resilience['duplicates_suppressed']} "
            f"crashes={len(resilience['crashes'])}"
        )
    if args.metrics_out:
        try:
            snapshot.save(args.metrics_out)
        except OSError as exc:
            print(f"error: cannot write {args.metrics_out}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"\nwrote {args.metrics_out}")
    return 0


def _cmd_serve(args):
    import asyncio

    from repro.serve.server import ReproServer

    async def _run():
        server = ReproServer(
            args.data_dir, host=args.host, port=args.port,
            http_port=args.http_port, quota=args.quota,
            tenant_slots=args.tenant_slots,
            queue_capacity=args.queue, read_deadline=args.deadline,
        )
        await server.start()
        # Parseable readiness line: harnesses scrape the bound ports.
        print(
            f"serving on {server.host}:{server.port} "
            f"http={server.host}:{server.http_port}",
            flush=True,
        )
        await server.wait_stopped()

    asyncio.run(_run())
    return 0


def format_parallel_summary(doc) -> str:
    """Console table for a parallel run's coordinator accounting."""
    lines = [
        f"parallel: {doc['workers']} workers, batch {doc['batch_size']}, "
        f"{doc['rounds']} rounds ({doc['fast_merge_rounds']} huffman / "
        f"{doc['tree_merge_rounds']} tree merges), "
        f"{doc['frames_sent']} frames out / {doc['frames_received']} in",
    ]
    rows = []
    for shard, stats in enumerate(doc["shards"]):
        stats = stats or {}
        rows.append([
            shard,
            stats.get("plan", "?"),
            stats.get("engine", "row"),
            stats.get("events_in", 0),
            stats.get("buffered_peak", 0),
            stats.get("runs_peak", "-"),
            stats.get("late_dropped", 0),
            stats.get("late_adjusted", 0),
        ])
    lines.append(format_table(
        ["shard", "plan", "engine", "ev in", "peak buf", "peak runs",
         "late drop", "late adj"],
        rows, title="Per-shard workers",
    ))
    autoscale = doc.get("autoscale")
    if autoscale:
        trajectory = [autoscale["initial_workers"]] + [
            entry["workers"] for entry in autoscale["applied"]
        ]
        lines.append(
            "autoscale: "
            + "→".join(str(w) for w in trajectory)
            + f" workers (range {autoscale['policy']['min_workers']}-"
            f"{autoscale['policy']['max_workers']}), "
            f"{len(autoscale['applied'])} rescales "
            f"({autoscale['deferred_rounds']} deferred rounds), "
            f"{autoscale['worker_seconds']:.2f} worker-seconds"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Impatience sort & framework reproduction toolbox",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="Table I disorder measures")
    _add_source(p)
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser("latency", help="suggest reorder latencies")
    _add_source(p)
    p.set_defaults(fn=_cmd_latency)

    p = sub.add_parser("profile", help="regional disorder profile")
    _add_source(p)
    p.add_argument("--regions", type=int, default=10)
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("sort", help="offline-sort a dataset")
    _add_source(p)
    p.add_argument("--algorithm", default="impatience",
                   choices=sorted(OFFLINE_SORTS))
    p.set_defaults(fn=_cmd_sort)

    p = sub.add_parser("generate", help="write a simulated workload CSV")
    p.add_argument("--dataset", default="cloudlog",
                   choices=list(DATASET_NAMES))
    p.add_argument("--n", type=int, default=100_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(fn=_cmd_generate)

    p = sub.add_parser("demo", help="windowed-count quickstart")
    _add_source(p)
    p.set_defaults(fn=_cmd_demo)

    p = sub.add_parser(
        "run", help="run an instrumented example query (observability demo)"
    )
    _add_source(p)
    p.add_argument("--query", default="windowed-count",
                   choices=["windowed-count", "grouped-count", "top-k"])
    p.add_argument("--window", type=int, default=None,
                   help="window size (default: n/100)")
    p.add_argument("--punctuation-frequency", type=int, default=1_000)
    p.add_argument("--latency", type=int, default=None,
                   help="reorder latency (default: 99%% coverage)")
    p.add_argument("--engine", default="auto",
                   choices=["auto", "columnar", "row"],
                   help="execution engine: 'auto' compiles to the fused "
                        "columnar pipeline when possible (default), "
                        "'columnar' fails if the plan cannot compile, "
                        "'row' forces the operator DAG")
    p.add_argument("--memory-budget", default=None, metavar="BYTES",
                   help="bound the sorter's resident buffer (bytes, or "
                        "'64MB'); cold sorted runs spill to disk and the "
                        "output stays byte-identical")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the metrics JSON export here")
    p.add_argument("--parallel", default=None, metavar="N|auto[:MIN-MAX]",
                   help="execute on shard worker processes with "
                        "shared-memory columnar exchange: a fixed count "
                        "N, or 'auto' / 'auto:2-6' to let the coordinator "
                        "grow and shrink the pool between punctuation "
                        "rounds (output stays byte-identical)")
    p.add_argument("--supervised", action="store_true",
                   help="run under the fault-tolerant supervisor")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="fault-injection spec, e.g. "
                        "'io:p=0.01;crash:punct=5' (implies --supervised)")
    p.add_argument("--seed", type=int, default=0,
                   help="chaos RNG seed (default 0)")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "serve",
        help="always-on multi-tenant standing-query service",
    )
    p.add_argument("--data-dir", required=True, metavar="DIR",
                   help="journal + state directory (survives restarts)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP line-protocol port (0 = ephemeral)")
    p.add_argument("--http-port", type=int, default=0,
                   help="HTTP/JSON-log port (0 = ephemeral)")
    p.add_argument("--quota", type=int, default=None, metavar="EVENTS",
                   help="per-tenant buffered-event quota; breaches force "
                        "an early punctuation (load shedding)")
    p.add_argument("--tenant-slots", type=int, default=1, metavar="N",
                   help="elastic quota slots per tenant: a quota breach "
                        "grows the tenant's budget (up to N x quota) "
                        "before any shedding; slots retire as buffers "
                        "drain (default 1 = shed immediately)")
    p.add_argument("--queue", type=int, default=256, metavar="FRAMES",
                   help="per-tenant bounded ingress queue capacity")
    p.add_argument("--deadline", type=float, default=2.0, metavar="SECONDS",
                   help="read/drain deadline before evicting a stalled "
                        "peer (slowloris defense)")
    p.set_defaults(fn=_cmd_serve)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
