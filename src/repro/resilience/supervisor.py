"""Supervised pipeline execution: restart, replay, deduplicate.

The supervisor turns a single-shot pipeline drive into a fault-tolerant
run.  It owns the ingress loop of a materialized query graph:

* every element consumed from the source is appended to an in-memory
  **journal** (the stand-in for a durable ingress log — the
  "checkpoint raw events at ingress" strategy that
  :mod:`repro.engine.checkpoint`'s docstring prescribes for keyed/rich
  event pipelines);
* **transient source failures** (``OSError``, ``TimeoutError``,
  ``asyncio.TimeoutError`` — the :class:`RetryPolicy`'s ``retry_on``
  set) are retried in place with
  deterministic exponential backoff + jitter — the element is never
  lost because a well-behaved transient failure (and
  :class:`~repro.resilience.chaos.FaultInjector`) raises before the
  underlying element is consumed;
* any other non-semantic exception (an operator crash, an injected
  hard failure) triggers a **restart**: a fresh pipeline is
  materialized from the same query nodes, the journal is replayed
  through it to rebuild operator state deterministically, and
  re-emitted outputs are **deduplicated** (and verified byte-identical)
  against what was already delivered, so a recovered run's output is
  indistinguishable from an uninterrupted one;
* semantic errors (:class:`~repro.core.errors.ReproError` — bad
  queries, strict late policies without quarantine, replay divergence)
  fail fast: restarting cannot fix a deterministic error.

Checkpoints are taken every ``checkpoint_every`` ingress punctuations;
for generic pipelines they record the recovery position (journal
offset, watermark, delivered-output counts) that restarts report
against, while :class:`~repro.resilience.sorter.SorterSupervisor`
additionally uses :func:`~repro.engine.checkpoint.checkpoint_sorter`
to restore sorter state in O(state) and truncate the journal.

The ingress guard between the source and the pipeline also quarantines
poison elements (malformed events, regressing punctuations, optional
consecutive duplicates) into a
:class:`~repro.resilience.quarantine.QuarantineLedger` instead of
letting them kill the run, and consults a
:class:`~repro.resilience.degradation.LoadSheddingGuard` after every
punctuation.
"""

from __future__ import annotations

import asyncio as _asyncio
import random
import time

from repro.core.errors import (
    MalformedEventError,
    ReplayDivergenceError,
    ReproError,
    SupervisionExhaustedError,
)
from repro.engine.event import Punctuation, is_punctuation
from repro.engine.graph import Pipeline, QueryNode
from repro.engine.operators.sink import Collector
from repro.resilience.chaos import FaultInjector
from repro.resilience.quarantine import QuarantineLedger, Reason

__all__ = [
    "PipelineSupervisor",
    "RetryPolicy",
    "SupervisedResult",
    "run_supervised",
]

_EXHAUSTED = object()
_NEG_INF = float("-inf")


#: Exception types a :class:`RetryPolicy` treats as transient by default.
#: ``TimeoutError`` (builtin) already subclasses :class:`OSError`, but
#: ``asyncio.TimeoutError`` only aliases it from Python 3.11 — on 3.10 a
#: deadline expiry (``asyncio.wait_for``) raises a distinct class, so it
#: is listed explicitly.
_DEFAULT_RETRY_ON = (OSError, TimeoutError, _asyncio.TimeoutError)


class RetryPolicy:
    """Deterministic exponential backoff with seeded jitter.

    ``delay(attempt)`` returns ``min(base * multiplier**attempt,
    max_delay)`` stretched by a jitter factor in ``[1, 1 + jitter]``
    drawn from a seeded RNG — deterministic for tests, decorrelated in
    fleets where each worker seeds differently.

    ``retry_on`` classifies which exceptions count as transient:
    ``handles(exc)`` is consulted by every retry loop (the supervisor's
    source pulls, the serve layer's client writes).  The default covers
    transient I/O *and* expired per-operation deadlines —
    ``TimeoutError`` and ``asyncio.TimeoutError`` — so a deadline-bound
    operation retries on the same seeded schedule as a failed one.
    """

    def __init__(self, max_retries=5, base_delay=0.05, multiplier=2.0,
                 max_delay=5.0, jitter=0.5, seed=0, retry_on=None):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.max_retries = max_retries
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.retry_on = (
            _DEFAULT_RETRY_ON if retry_on is None else tuple(retry_on)
        )
        self._rng = random.Random(seed)

    def handles(self, exc) -> bool:
        """True when ``exc`` is transient under this policy."""
        return isinstance(exc, self.retry_on)

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        base = min(
            self.base_delay * self.multiplier ** attempt, self.max_delay
        )
        return base * (1.0 + self.jitter * self._rng.random())

    def __repr__(self):
        return (
            f"RetryPolicy(max_retries={self.max_retries}, "
            f"base={self.base_delay}, x{self.multiplier}, "
            f"max={self.max_delay}, jitter={self.jitter})"
        )


class _DeliveryChannel:
    """Exactly-once output ledger for one pipeline sink.

    Holds everything delivered so far across restarts.  During a
    recovery replay the re-emitted prefix is verified element-by-element
    against the already-delivered record (catching non-deterministic
    pipelines) and suppressed; only genuinely new output is appended
    and forwarded to the user callback.
    """

    __slots__ = ("events", "punctuations", "completed", "suppressed",
                 "on_event", "_seen_events", "_seen_puncts")

    def __init__(self, on_event=None):
        self.events = []
        self.punctuations = []
        self.completed = False
        #: re-emitted outputs verified and suppressed during replays.
        self.suppressed = 0
        self.on_event = on_event
        self._seen_events = 0
        self._seen_puncts = 0

    def begin_attempt(self):
        self._seen_events = 0
        self._seen_puncts = 0

    def accept_event(self, event):
        index = self._seen_events
        self._seen_events += 1
        if index < len(self.events):
            if event != self.events[index]:
                raise ReplayDivergenceError(
                    f"replayed output #{index} diverged: delivered "
                    f"{self.events[index]!r}, replay produced {event!r}"
                )
            self.suppressed += 1
            return
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(event)

    def accept_punctuation(self, punctuation):
        index = self._seen_puncts
        self._seen_puncts += 1
        if index < len(self.punctuations):
            if punctuation.timestamp != self.punctuations[index]:
                raise ReplayDivergenceError(
                    f"replayed punctuation #{index} diverged: delivered "
                    f"{self.punctuations[index]!r}, replay produced "
                    f"{punctuation.timestamp!r}"
                )
            return
        self.punctuations.append(punctuation.timestamp)

    def accept_flush(self):
        self.completed = True


class SupervisedResult:
    """Everything one supervised execution produced and survived."""

    def __init__(self, supervisor, pipeline, sinks):
        self._channels = supervisor._channels
        #: the last attempt's live pipeline (fully caught up).
        self.pipeline = pipeline
        #: the last attempt's sink operator instances.
        self.collectors = sinks
        self.restarts = supervisor.restarts
        self.retries = supervisor.retries
        self.checkpoints = list(supervisor._checkpoints)
        self.restores = list(supervisor.restores)
        self.duplicates_suppressed = supervisor.duplicates_suppressed
        self.punctuations_suppressed = supervisor.punctuations_suppressed
        self.ledger = supervisor.ledger
        self.guard = supervisor.guard
        self.injector = supervisor.injector
        self.metrics = supervisor.metrics
        self.memory = supervisor.memory

    @property
    def channels(self):
        """Exactly-once delivery channels, one per sink."""
        return list(self._channels)

    @property
    def events(self):
        """Channel 0's delivered events (the single-output case)."""
        return self._channels[0].events

    @property
    def punctuations(self):
        """Channel 0's delivered punctuation timestamps."""
        return self._channels[0].punctuations

    @property
    def completed(self) -> bool:
        return all(channel.completed for channel in self._channels)

    @property
    def outputs_deduplicated(self) -> int:
        """Re-emitted outputs suppressed (and verified) during replays."""
        return sum(channel.suppressed for channel in self._channels)

    def output_events(self, index):
        """Events delivered on the index-th output channel."""
        return self._channels[index].events

    def resilience_doc(self) -> dict:
        """JSON-ready summary for ``PipelineSnapshot``'s resilience field."""
        doc = {
            "restarts": self.restarts,
            "retries": self.retries,
            "checkpoints": len(self.checkpoints),
            "restores": [dict(r) for r in self.restores],
            "outputs_deduplicated": self.outputs_deduplicated,
            "duplicates_suppressed": self.duplicates_suppressed,
            "punctuations_suppressed": self.punctuations_suppressed,
            "quarantine": (
                self.ledger.as_dict() if self.ledger is not None else None
            ),
            "degradations": (
                self.guard.as_dicts() if self.guard is not None else None
            ),
        }
        if self.injector is not None:
            doc["chaos"] = {
                "seed": self.injector.seed,
                "fired": self.injector.summary(),
            }
        return doc

    def __repr__(self):
        return (
            f"SupervisedResult(events={len(self.events)}, "
            f"restarts={self.restarts}, retries={self.retries}, "
            f"deduplicated={self.outputs_deduplicated})"
        )


class PipelineSupervisor:
    """Drives ``build()``-materialized pipelines until the stream completes.

    Parameters
    ----------
    build:
        Zero-argument callable returning ``(pipeline, sinks)`` — a
        freshly materialized :class:`~repro.engine.graph.Pipeline` and
        the list of sink operator instances whose output constitutes
        the run's result.  Called once per attempt.
    elements:
        The ingress element iterable (events + punctuations, arrival
        order).  Consumed exactly once across all attempts.
    checkpoint_every:
        Ingress punctuations between checkpoints (>= 1).
    retry:
        :class:`RetryPolicy` for transient source failures.
    max_restarts:
        Hard-crash restart budget before giving up with
        :class:`~repro.core.errors.SupervisionExhaustedError`.
    quarantine:
        ``True`` (fresh ledger), a
        :class:`~repro.resilience.quarantine.QuarantineLedger`, or
        ``None`` — with a ledger, malformed elements are dead-lettered
        instead of raising, and sorters' ``RAISE`` late policies route
        violations to the ledger instead of killing the run.
    guard:
        Optional :class:`~repro.resilience.degradation.LoadSheddingGuard`.
    dedupe:
        Suppress consecutive duplicate ingress events (at-least-once
        upstreams).  ``None`` auto-enables when the chaos spec injects
        duplicates.
    chaos:
        Optional fault injection — a spec string,
        :class:`~repro.resilience.chaos.ChaosSpec`, or a live
        :class:`~repro.resilience.chaos.FaultInjector` — wrapped around
        the source.
    seed:
        Injector seed when ``chaos`` is a spec.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; reset
        and re-attached per attempt so its final counts describe the
        logical run, not the restarts.
    memory:
        Optional :class:`~repro.framework.memory.MemoryMeter`, sampled
        after every punctuation (reset per attempt).
    on_event:
        Exactly-once delivery callback for channel 0's events.
    on_build:
        Per-attempt hook ``on_build(pipeline)`` (tests use it to wrap
        operators with fault injectors).
    sleep:
        Injectable sleeper for retry backoff (default
        :func:`time.sleep`); tests pass a recorder so nothing blocks.
    """

    def __init__(self, build, elements, *, checkpoint_every=1, retry=None,
                 max_restarts=8, quarantine=None, guard=None, dedupe=None,
                 chaos=None, seed=0, metrics=None, memory=None,
                 on_event=None, on_build=None, sleep=None):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self._build = build
        self._elements = elements
        self.checkpoint_every = checkpoint_every
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_restarts = max_restarts
        if quarantine is True:
            quarantine = QuarantineLedger()
        self.ledger = quarantine
        self.guard = guard
        if chaos is None or isinstance(chaos, FaultInjector):
            self.injector = chaos
        else:
            self.injector = FaultInjector(chaos, seed)
        if dedupe is None:
            dedupe = bool(self.injector and self.injector.spec.dup_p > 0)
        self.dedupe = dedupe
        self.metrics = metrics
        self.memory = memory
        self._on_event = on_event
        self._on_build = on_build
        self._sleep = time.sleep if sleep is None else sleep

        self._journal = []
        self._channels = None
        self._checkpoints = []
        self.restores = []
        self.restarts = 0
        self.retries = 0
        self.duplicates_suppressed = 0
        self.punctuations_suppressed = 0
        # Per-attempt ingress-guard state (rebuilt by every replay).
        self._last_punct = None
        self._last_event = None
        self._high_watermark = _NEG_INF
        self._punct_count = 0

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> SupervisedResult:
        """Drive the stream to completion, surviving crashes; returns the
        exactly-once result."""
        elements = iter(self._elements)
        if self.injector is not None:
            elements = self.injector.wrap(elements)
        while True:
            pipeline, sinks = self._build_attempt()
            try:
                self._drive(pipeline, elements)
            except ReproError:
                raise  # deterministic semantic failure: restarting can't help
            except Exception as exc:  # noqa: BLE001 — supervision boundary
                self.restarts += 1
                if self.restarts > self.max_restarts:
                    raise SupervisionExhaustedError(
                        f"gave up after {self.max_restarts} restarts "
                        f"(last failure: {exc!r})"
                    ) from exc
                last = self._checkpoints[-1] if self._checkpoints else None
                offset = last["offset"] if last else 0
                self.restores.append({
                    "restart": self.restarts,
                    "error": repr(exc),
                    "checkpoint_offset": offset,
                    "checkpoint_watermark": last["watermark"] if last
                    else None,
                    "replayed": len(self._journal),
                    "delta": len(self._journal) - offset,
                })
                continue
            return SupervisedResult(self, pipeline, sinks)

    # -- per-attempt setup -------------------------------------------------

    def _build_attempt(self):
        pipeline, sinks = self._build()
        sinks = list(sinks)
        if self._channels is None:
            self._channels = [
                _DeliveryChannel(self._on_event if i == 0 else None)
                for i in range(len(sinks))
            ]
        elif len(sinks) != len(self._channels):
            raise ReproError(
                "build() returned a different number of sinks across "
                "attempts"
            )
        # Deterministic replay regenerates ledger entries, guard
        # decisions, and observability counters identically — reset
        # instead of deduplicating.
        if self.ledger is not None:
            self.ledger.clear()
        if self.guard is not None:
            self.guard.reset()
        if self.metrics is not None:
            self.metrics.reset()
            self.metrics.attach(pipeline)
        if self.memory is not None:
            self.memory.reset()
        self._wire_quarantine(pipeline)
        for channel, sink in zip(self._channels, sinks):
            channel.begin_attempt()
            self._wire_delivery(sink, channel)
        if self._on_build is not None:
            self._on_build(pipeline)
        return pipeline, sinks

    def _wire_quarantine(self, pipeline):
        if self.ledger is None:
            return
        for op in pipeline.operators:
            late = getattr(getattr(op, "sorter", None), "late", None)
            if late is not None:
                late.quarantine = self.ledger

    @staticmethod
    def _wire_delivery(sink, channel):
        def wrap_event(bound):
            def on_event(event):
                bound(event)
                channel.accept_event(event)
            return on_event

        def wrap_punctuation(bound):
            def on_punctuation(punctuation):
                bound(punctuation)
                channel.accept_punctuation(punctuation)
            return on_punctuation

        def wrap_flush(bound):
            def on_flush():
                bound()
                channel.accept_flush()
            return on_flush

        sink.instrument({
            "on_event": wrap_event,
            "on_punctuation": wrap_punctuation,
            "on_flush": wrap_flush,
        })

    # -- driving -----------------------------------------------------------

    def _drive(self, pipeline, elements):
        source = pipeline.sources[0]
        self._last_punct = None
        self._last_event = None
        self._high_watermark = _NEG_INF
        self._punct_count = 0
        self._events_pushed = 0
        for element in self._journal:
            self._push(element, source, pipeline, replaying=True)
        while True:
            element = self._pull(elements)
            if element is _EXHAUSTED:
                break
            self._journal.append(element)
            self._push(element, source, pipeline, replaying=False)
        source.on_flush()

    def _pull(self, elements):
        failures = 0
        while True:
            try:
                return next(elements)
            except StopIteration:
                return _EXHAUSTED
            except Exception as exc:
                if not self.retry.handles(exc):
                    raise
                failures += 1
                self.retries += 1
                if failures > self.retry.max_retries:
                    raise SupervisionExhaustedError(
                        f"source failed {failures} consecutive times "
                        f"(last: {exc!r})"
                    ) from exc
                self._sleep(self.retry.delay(failures - 1))

    def _push(self, element, source, pipeline, replaying):
        if is_punctuation(element):
            timestamp = element.timestamp
            if self._last_punct is not None and timestamp < self._last_punct:
                if not replaying:
                    self.punctuations_suppressed += 1
                if self.ledger is not None:
                    self.ledger.record(
                        Reason.PUNCTUATION_REGRESSION, timestamp,
                        previous=self._last_punct,
                    )
                return
            self._last_punct = timestamp
            self._punct_count += 1
            source.on_punctuation(element)
            self._after_punctuation(pipeline, source, replaying)
            return
        if not self._valid_event(element):
            if self.ledger is not None:
                self.ledger.record(
                    Reason.MALFORMED, element,
                    offset=len(self._journal), watermark=self._last_punct,
                )
                return
            raise MalformedEventError(element)
        if self.dedupe and element == self._last_event:
            if not replaying:
                self.duplicates_suppressed += 1
            if self.ledger is not None:
                self.ledger.record(
                    Reason.DUPLICATE, element, watermark=self._last_punct,
                )
            return
        self._last_event = element
        if element.sync_time > self._high_watermark:
            self._high_watermark = element.sync_time
        source.on_event(element)
        self._events_pushed += 1
        if (
            self.guard is not None
            and self._events_pushed % self.guard.check_interval == 0
        ):
            # Event-interval check: catches punctuation starvation, where
            # no punctuation ever arrives to trigger the guard.
            self._guard_check(pipeline, source)

    @staticmethod
    def _valid_event(element) -> bool:
        return isinstance(
            getattr(element, "sync_time", None), (int, float)
        ) and not isinstance(getattr(element, "sync_time", None), bool)

    def _guard_check(self, pipeline, source):
        forced = self.guard.check(pipeline, self._high_watermark)
        if forced is not None and (
            self._last_punct is None or forced >= self._last_punct
        ):
            # Forced punctuations are NOT journaled: the guard is
            # deterministic, so replay re-forces them identically.
            self._last_punct = forced
            source.on_punctuation(Punctuation(forced))
            if self.memory is not None:
                self.memory.sample(pipeline)

    def _after_punctuation(self, pipeline, source, replaying):
        if self.memory is not None:
            self.memory.sample(pipeline)
        if self.guard is not None:
            self._guard_check(pipeline, source)
        if (
            not replaying
            and self._punct_count % self.checkpoint_every == 0
        ):
            self._checkpoints.append({
                "offset": len(self._journal),
                "punct_index": self._punct_count,
                "watermark": self._last_punct,
                "delivered": [
                    len(channel.events) for channel in self._channels
                ],
            })


def run_supervised(stream, **kwargs) -> SupervisedResult:
    """Execute a :class:`~repro.engine.stream.Streamable` under supervision.

    The fault-tolerant counterpart of ``stream.collect()``: the query is
    materialized (re-materialized after every crash), its source driven
    through the supervised ingress loop, and the exactly-once delivered
    output returned as a :class:`SupervisedResult` whose ``events`` are
    byte-identical to an uninterrupted ``collect()``.

    Keyword arguments are :class:`PipelineSupervisor`'s.
    """
    sink_node = QueryNode(
        Collector, ((stream.node, None),), name="collect"
    )

    def build():
        pipeline = Pipeline([sink_node])
        return pipeline, [pipeline.operator_for(sink_node)]

    supervisor = PipelineSupervisor(
        build, stream.source.elements(), **kwargs
    )
    return supervisor.run()
