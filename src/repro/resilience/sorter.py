"""Supervised keyless sorting with true checkpoint/restore.

:class:`~repro.resilience.supervisor.PipelineSupervisor` recovers
arbitrary pipelines by replaying the full ingress journal — correct for
any operator graph, but O(stream) recovery time.  For the keyless
:class:`~repro.core.impatience.ImpatienceSorter` the engine has a
compact structural checkpoint (:mod:`repro.engine.checkpoint`), and
:class:`SorterSupervisor` exploits it: every ``checkpoint_every``
punctuations the sorter state is snapshotted and the ingress journal is
**truncated** to the delta since the snapshot, so recovery cost is
O(sorter state + delta) regardless of how much stream has flowed.

The element protocol is the raw-pair form used by the micro-benchmarks:
``("event", value)`` and ``("punct", timestamp)`` tuples, with the same
ingress guard as the pipeline supervisor (transient-retry, malformed /
regressing-punctuation quarantine, optional duplicate suppression) and
the same exactly-once verified output delivery.
"""

from __future__ import annotations

from repro.core.errors import (
    MalformedEventError,
    ReplayDivergenceError,
    ReproError,
    SpillCorruptionError,
    SupervisionExhaustedError,
)
from repro.core.impatience import ImpatienceSorter
from repro.engine.checkpoint import (
    checkpoint_sorter,
    release_checkpoint,
    restore_sorter,
)
from repro.resilience.chaos import FaultInjector
from repro.resilience.quarantine import QuarantineLedger, Reason
from repro.resilience.supervisor import RetryPolicy

__all__ = ["SorterSupervisor", "SorterResult"]

_EXHAUSTED = object()


class SorterResult:
    """Outcome of one supervised sort."""

    def __init__(self, supervisor, sorter):
        #: the totally ordered output, exactly once.
        self.output = supervisor._delivered
        #: the last attempt's live sorter.
        self.sorter = sorter
        self.restarts = supervisor.restarts
        self.retries = supervisor.retries
        self.checkpoints = supervisor.checkpoints_taken
        self.restores = list(supervisor.restores)
        self.outputs_deduplicated = supervisor.outputs_deduplicated
        self.duplicates_suppressed = supervisor.duplicates_suppressed
        self.punctuations_suppressed = supervisor.punctuations_suppressed
        self.ledger = supervisor.ledger
        self.injector = supervisor.injector
        #: journal elements still held at completion (the delta since the
        #: last checkpoint — the proof that truncation happened).
        self.journal_len = len(supervisor._delta)

    def __repr__(self):
        return (
            f"SorterResult(output={len(self.output)}, "
            f"restarts={self.restarts}, checkpoints={self.checkpoints}, "
            f"journal_len={self.journal_len})"
        )


class SorterSupervisor:
    """Crash-tolerant driver for a keyless :class:`ImpatienceSorter`.

    Parameters mirror :class:`~repro.resilience.supervisor
    .PipelineSupervisor` where they overlap; ``sorter_factory`` builds
    the initial sorter (restarts restore from the checkpoint instead
    whenever one exists).
    """

    def __init__(self, sorter_factory=None, *, checkpoint_every=1,
                 retry=None, max_restarts=8, quarantine=None, dedupe=None,
                 chaos=None, seed=0, sleep=None):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self._factory = sorter_factory or ImpatienceSorter
        self.checkpoint_every = checkpoint_every
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_restarts = max_restarts
        if quarantine is True:
            quarantine = QuarantineLedger()
        self.ledger = quarantine
        if chaos is None or isinstance(chaos, FaultInjector):
            self.injector = chaos
        else:
            self.injector = FaultInjector(chaos, seed)
        if dedupe is None:
            dedupe = bool(self.injector and self.injector.spec.dup_p > 0)
        self.dedupe = dedupe
        self._sleep = sleep

        self._checkpoint = None
        self._delta = []
        self._delivered = []
        self._delivered_at_checkpoint = 0
        self._ledger_mark = ([], {}, 0)
        self.checkpoints_taken = 0
        self.restores = []
        self.restarts = 0
        self.retries = 0
        self.outputs_deduplicated = 0
        self.duplicates_suppressed = 0
        self.punctuations_suppressed = 0

    # -- public ------------------------------------------------------------

    def run(self, elements) -> SorterResult:
        """Sort the raw-pair element stream to completion."""
        elements = iter(elements)
        if self.injector is not None:
            elements = self.injector.wrap(elements)
        while True:
            sorter = self._build_attempt()
            try:
                self._drive(sorter, elements)
            except SpillCorruptionError as exc:
                # Environmental, like a crash: a spilled run file turned
                # out corrupt/truncated/unreadable.  The failed attempt's
                # files are quarantined-by-deletion (close()) and the
                # checkpoint — which owns its *own* pinned copies —
                # rebuilds a clean twin.
                self._fail_attempt(sorter, exc)
                continue
            except ReproError:
                raise
            except Exception as exc:  # noqa: BLE001 — supervision boundary
                self._fail_attempt(sorter, exc)
                continue
            # The stream completed and every output was delivered: the
            # checkpoint (and its pinned spill files) has nothing left
            # to recover.
            release_checkpoint(self._checkpoint)
            self._checkpoint = None
            return SorterResult(self, sorter)

    # -- internals ---------------------------------------------------------

    def _fail_attempt(self, sorter, exc):
        """Tear down a crashed attempt and account for the restart."""
        close = getattr(sorter, "close", None)
        if callable(close):
            close()  # deletes the attempt's spilled run files, if any
        self.restarts += 1
        if self.restarts > self.max_restarts:
            # Giving up: free the checkpoint's pinned spill files now
            # rather than leaving them to the GC backstop.
            release_checkpoint(self._checkpoint)
            self._checkpoint = None
            raise SupervisionExhaustedError(
                f"gave up after {self.max_restarts} restarts "
                f"(last failure: {exc!r})"
            ) from exc
        if self.ledger is not None and isinstance(
            exc, SpillCorruptionError
        ):
            # Quarantine the poisoned file visibly.  Roll back to the
            # checkpoint mark first (replay regenerates everything past
            # it) and re-mark after, so the record survives rebuilds
            # without ever being doubled.
            self._rollback_ledger()
            self.ledger.record(
                Reason.MALFORMED,
                f"spill:{exc.path}@{exc.offset}",
                watermark=self._last_punct,
            )
            self._mark_ledger()
        self.restores.append({
            "restart": self.restarts,
            "error": repr(exc),
            "from_checkpoint": self._checkpoint is not None,
            "replayed": len(self._delta),
        })

    def _build_attempt(self):
        if self._checkpoint is not None:
            sorter = restore_sorter(self._checkpoint)
        else:
            sorter = self._factory()
        if self.injector is not None:
            attach = getattr(sorter, "attach_injector", None)
            if callable(attach):
                attach(self.injector)
        if self.ledger is not None:
            # Roll the ledger back to the checkpoint mark: the truncated
            # journal can only regenerate records made since then.
            self._rollback_ledger()
            sorter.late.quarantine = self.ledger
        return sorter

    def _rollback_ledger(self):
        entries, counts, seq = self._ledger_mark
        self.ledger.entries[:] = entries
        self.ledger.counts.clear()
        self.ledger.counts.update(counts)
        self.ledger._seq = seq

    def _mark_ledger(self):
        self._ledger_mark = (
            list(self.ledger.entries),
            dict(self.ledger.counts),
            self.ledger._seq,
        )

    def _drive(self, sorter, elements):
        self._seen = self._delivered_at_checkpoint
        self._last_punct = None
        self._last_event = None
        for element in self._delta:
            self._push(element, sorter, replaying=True)
        punct_index = 0
        while True:
            element = self._pull(elements)
            if element is _EXHAUSTED:
                break
            self._delta.append(element)
            was_punct = self._push(element, sorter, replaying=False)
            if was_punct:
                punct_index += 1
                if punct_index % self.checkpoint_every == 0:
                    # The compact checkpoint supersedes the journal
                    # prefix: truncate to keep recovery O(state + delta).
                    superseded = self._checkpoint
                    self._checkpoint = checkpoint_sorter(sorter)
                    release_checkpoint(superseded)
                    self._delivered_at_checkpoint = len(self._delivered)
                    if self.ledger is not None:
                        self._mark_ledger()
                    self._delta.clear()
                    self.checkpoints_taken += 1
        self._deliver(sorter.flush())

    def _pull(self, elements):
        failures = 0
        while True:
            try:
                return next(elements)
            except StopIteration:
                return _EXHAUSTED
            except OSError as exc:
                failures += 1
                self.retries += 1
                if failures > self.retry.max_retries:
                    raise SupervisionExhaustedError(
                        f"source failed {failures} consecutive times "
                        f"(last: {exc!r})"
                    ) from exc
                if self._sleep is not None:
                    self._sleep(self.retry.delay(failures - 1))

    def _push(self, element, sorter, replaying) -> bool:
        """Guard + apply one raw-pair element; True when a punctuation
        was applied."""
        kind, value = self._classify(element, replaying)
        if kind == "skip":
            return False
        if kind == "punct":
            if self._last_punct is not None and value < self._last_punct:
                if not replaying:
                    self.punctuations_suppressed += 1
                if self.ledger is not None:
                    self.ledger.record(
                        Reason.PUNCTUATION_REGRESSION, value,
                        previous=self._last_punct,
                    )
                return False
            self._last_punct = value
            self._deliver(sorter.on_punctuation(value))
            return True
        if self.dedupe and value == self._last_event:
            if not replaying:
                self.duplicates_suppressed += 1
            if self.ledger is not None:
                self.ledger.record(
                    Reason.DUPLICATE, value, watermark=self._last_punct,
                )
            return False
        self._last_event = value
        sorter.insert(value)
        return False

    def _classify(self, element, replaying):
        if (
            type(element) is tuple
            and len(element) == 2
            and element[0] in ("event", "punct")
            and isinstance(element[1], (int, float))
            and not isinstance(element[1], bool)
        ):
            return element
        if self.ledger is not None:
            self.ledger.record(
                Reason.MALFORMED, element, watermark=self._last_punct,
            )
            return ("skip", None)
        raise MalformedEventError(element)

    def _deliver(self, items):
        for item in items:
            index = self._seen
            self._seen += 1
            if index < len(self._delivered):
                if item != self._delivered[index]:
                    raise ReplayDivergenceError(
                        f"replayed sort output #{index} diverged: "
                        f"delivered {self._delivered[index]!r}, replay "
                        f"produced {item!r}"
                    )
                self.outputs_deduplicated += 1
                continue
            self._delivered.append(item)
