"""Supervised execution of the parallel shard runtime.

Worker processes can die — OOM-killed, segfaulted, power-cycled — which
the coordinator surfaces as
:class:`~repro.core.errors.WorkerCrashError` carrying the dead shard's
last *acknowledged* ingress-journal offset.  This module adds the
recovery loop on top, honoring the PR 2 supervisor semantics:

- **Journal**: the full ingress element sequence is materialized before
  the first attempt (the coordinator already stamps its offsets onto
  every punctuation frame), so any attempt can be replayed exactly.
- **Restart + replay**: a crash tears the whole pool down (shard worker
  state lives in process memory, so the crashed shard must rebuild from
  offset 0; restarting only the survivors would desynchronize rounds),
  forks a fresh pool, and replays the journal.
- **Exactly-once delivery**: outputs stream through a
  :class:`~repro.resilience.supervisor._DeliveryChannel`-style ledger —
  the replayed prefix is verified element-by-element against what was
  already delivered (``ReplayDivergenceError`` on mismatch, catching
  non-determinism) and suppressed; only new output reaches the caller.
- **Budget**: ``max_restarts`` crashes are absorbed; the next one
  raises :class:`~repro.core.errors.SupervisionExhaustedError` with the
  final ``WorkerCrashError`` as ``__cause__``.
- **Rescale journal**: when an ``autoscale`` policy is active, applied
  pool resizes are recorded in one schedule list shared across
  attempts.  A replay re-executes the recorded rescales at the same
  punctuation rounds *without* consulting the policy, so a crash
  mid-rescale (or anywhere after one) recovers onto the same pool
  trajectory; the policy resumes live past the recorded horizon.
  Output identity never depends on this — rescales are output-invariant
  — but replaying them keeps the attempt's round/epoch accounting
  coherent and exercises the same code path that crashed.

Semantic failures (``ReproError``: late events under RAISE, punctuation
regressions) are *not* retried — replaying deterministic input cannot
fix them, exactly like the single-process supervisor.
"""

from __future__ import annotations

from repro.core.errors import (
    ReproError,
    SupervisionExhaustedError,
    WorkerCrashError,
)
from repro.engine.event import is_punctuation
from repro.resilience.supervisor import _DeliveryChannel

__all__ = ["run_parallel_supervised", "SupervisedParallelResult"]


class SupervisedParallelResult:
    """Merged output plus the recovery ledger of a supervised run."""

    def __init__(self, channel, parallel, crashes, elements):
        self.events = channel.events
        self.punctuations = channel.punctuations
        self.completed = channel.completed
        self.parallel = parallel
        #: :class:`WorkerCrashError` instances absorbed, in order.
        self.crashes = crashes
        self.duplicates_suppressed = channel.suppressed
        #: the exact interleaved output stream (events + punctuations) of
        #: the final, completed attempt — feed it to a plan's ``finalize``
        #: query via ``Streamable.from_elements`` when one is configured.
        self.elements = elements

    @property
    def restarts(self) -> int:
        return len(self.crashes)

    def resilience_doc(self) -> dict:
        """Summary in the shape of ``SupervisedResult.resilience_doc``,
        for the observability snapshot's ``resilience`` section."""
        autoscale = None
        if isinstance(self.parallel, dict):
            autoscale = self.parallel.get("autoscale")
        return {
            "mode": "parallel",
            "restarts": self.restarts,
            "duplicates_suppressed": self.duplicates_suppressed,
            "crashes": [
                {
                    "shard": crash.shard,
                    "journal_offset": crash.journal_offset,
                    "exitcode": crash.exitcode,
                }
                for crash in self.crashes
            ],
            "rescales": (
                len(autoscale["applied"]) if autoscale else 0
            ),
            "completed": self.completed,
        }


def run_parallel_supervised(ingress, plan, workers, *, max_restarts=2,
                            on_event=None, fault=None,
                            **run_kwargs) -> SupervisedParallelResult:
    """Run :func:`repro.parallel.run_parallel` under crash supervision.

    ``ingress`` is materialized into the replay journal up front.
    ``on_event`` receives each output event exactly once, across any
    number of worker crashes and replays.  Remaining keyword arguments
    are forwarded to ``run_parallel`` (``batch_size``, ``merge``, …);
    ``fault`` is forwarded on the *first* attempt only — combined with
    :func:`repro.parallel.crash_once` it scripts the crash the recovery
    tests assert on.

    Plans with a coordinator ``finalize`` stage deliver (and record) the
    merged *pre-finalize* stream — apply the finalize query to the
    result's ``elements`` afterwards if needed
    (``plan.finalize(Streamable.from_elements(result.elements))``).
    """
    from repro.parallel.runtime import run_parallel

    journal = list(ingress)
    if run_kwargs.get("autoscale") is not None:
        # One schedule list across every attempt: entries recorded
        # before a crash replay verbatim on the next one.
        run_kwargs.setdefault("rescale_schedule", [])
    channel = _DeliveryChannel(on_event)
    crashes = []
    attempt_elements = []

    def deliver(element):
        attempt_elements.append(element)
        if is_punctuation(element):
            channel.accept_punctuation(element)
        else:
            channel.accept_event(element)

    while True:
        channel.begin_attempt()
        attempt_elements.clear()
        attempt_fault = fault if not crashes else None
        try:
            result = run_parallel(
                iter(journal), plan, workers, fault=attempt_fault,
                deliver=deliver, **run_kwargs,
            )
        except WorkerCrashError as crash:
            crashes.append(crash)
            if len(crashes) > max_restarts:
                raise SupervisionExhaustedError(
                    f"gave up after {len(crashes)} worker crashes "
                    f"(budget: {max_restarts} restarts)"
                ) from crash
            continue
        except ReproError:
            raise
        channel.accept_flush()
        return SupervisedParallelResult(
            channel, result.parallel, crashes, list(attempt_elements)
        )
