"""Fault-tolerant runtime: supervision, chaos, quarantine, degradation.

The resilience layer wraps the existing engine without modifying its
operators: a supervisor owns the ingress loop (journal + checkpoint +
restart + replay + exactly-once delivery), a seeded fault injector
manufactures the failures the supervisor claims to survive, a
dead-letter ledger absorbs poison events, and a load-shedding guard
degrades gracefully instead of running out of memory.  See
``docs/resilience.md`` for the full design.
"""

from repro.resilience.chaos import (
    ChaosSpec,
    FaultInjector,
    InjectedCrashError,
    MalformedEvent,
    TransientInjectedError,
    parse_chaos_spec,
)
from repro.resilience.degradation import (
    DEGRADE_LATE_POLICY,
    EARLY_PUNCTUATION,
    DegradationDecision,
    LoadSheddingGuard,
)
from repro.resilience.quarantine import (
    QuarantinedEvent,
    QuarantineLedger,
    Reason,
)
from repro.resilience.sorter import SorterResult, SorterSupervisor
from repro.resilience.supervisor import (
    PipelineSupervisor,
    RetryPolicy,
    SupervisedResult,
    run_supervised,
)

__all__ = [
    "ChaosSpec",
    "DEGRADE_LATE_POLICY",
    "DegradationDecision",
    "EARLY_PUNCTUATION",
    "FaultInjector",
    "InjectedCrashError",
    "LoadSheddingGuard",
    "MalformedEvent",
    "PipelineSupervisor",
    "QuarantineLedger",
    "QuarantinedEvent",
    "Reason",
    "RetryPolicy",
    "SorterResult",
    "SorterSupervisor",
    "SupervisedResult",
    "TransientInjectedError",
    "parse_chaos_spec",
    "run_supervised",
]
