"""Poison-event quarantine: a dead-letter ledger with reason codes.

Production log feeds contain rows no policy can save — events that fail
to parse, events later than the strictest lateness bound under
:data:`~repro.core.late.LatePolicy.RAISE`, punctuations that regress.
Killing the pipeline on the first one (the pre-resilience behaviour)
turns a single poison event into an outage; silently dropping it turns
it into an invisible data-loss bug.  The ledger is the middle road: the
offending element is recorded with a reason code and its arrival
context, the pipeline keeps running, and the counts surface in the
observability export (``docs/resilience.md`` documents the schema).

Memory stays bounded under a poison flood: past ``max_entries`` the
*oldest* retained entries rotate out — to a JSONL sidecar file when one
is configured, so nothing is lost, otherwise they are discarded (counts
always keep accumulating, so the export stays truthful either way).
"""

from __future__ import annotations

import json

__all__ = ["QuarantineLedger", "QuarantinedEvent", "Reason"]


class Reason:
    """Quarantine reason codes (stable strings, used in the JSON export)."""

    #: Event time at or below the watermark under ``LatePolicy.RAISE``.
    LATE_EVENT = "late-event"
    #: Element is neither a valid event nor a punctuation.
    MALFORMED = "malformed"
    #: Punctuation timestamp regressed below an earlier punctuation.
    PUNCTUATION_REGRESSION = "punctuation-regression"
    #: Consecutive duplicate delivered by an at-least-once upstream.
    DUPLICATE = "duplicate"

    ALL = (LATE_EVENT, MALFORMED, PUNCTUATION_REGRESSION, DUPLICATE)


class QuarantinedEvent:
    """One dead-lettered element: what, why, and when it arrived."""

    __slots__ = ("seq", "reason", "element", "context")

    def __init__(self, seq, reason, element, context):
        #: Arrival sequence number within this ledger (0-based).
        self.seq = seq
        #: One of :class:`Reason`'s codes.
        self.reason = reason
        #: The offending element (or its sort key for sorter-level
        #: quarantine, where the full event is not visible).
        self.element = element
        #: Arrival context: watermark, ingress offset, detail — whatever
        #: the quarantining site knew at the time.
        self.context = context

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "reason": self.reason,
            "element": repr(self.element),
            "context": dict(self.context),
        }

    def __repr__(self):
        return (
            f"QuarantinedEvent(seq={self.seq}, reason={self.reason!r}, "
            f"element={self.element!r})"
        )


class QuarantineLedger:
    """Append-only dead-letter store shared by every quarantining site.

    One ledger serves a whole supervised run: the ingress guard records
    malformed elements and punctuation regressions, the sorters' late
    trackers record ``RAISE`` violations.  ``max_entries`` bounds the
    retained elements: past the bound the oldest entry rotates out —
    appended to the ``sidecar`` JSONL file when one is configured (one
    ``QuarantinedEvent.as_dict()`` document per line), discarded
    otherwise.  Counts keep accumulating past the bound either way, so
    the export stays truthful on pathological feeds and a poison-flood
    tenant cannot OOM the process through the dead-letter path.

    The supervisor clears the ledger before a recovery replay —
    deterministic replay regenerates the same records, so clearing (not
    deduplicating) is what keeps recovered runs byte-identical.
    """

    def __init__(self, max_entries=1_000, sidecar=None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.sidecar = None if sidecar is None else str(sidecar)
        self.entries = []
        self.counts = {}     # reason -> total occurrences (unbounded)
        #: entries rotated out of memory (and into the sidecar, if any).
        self.rotated = 0
        self._seq = 0

    def record(self, reason, element, **context):
        """Dead-letter one element; returns the ledger entry.

        Past ``max_entries`` the oldest retained entry is rotated out
        first (to the sidecar when configured), so the in-memory window
        always holds the most recent ``max_entries`` poison elements.
        """
        self.counts[reason] = self.counts.get(reason, 0) + 1
        seq = self._seq
        self._seq += 1
        if len(self.entries) >= self.max_entries:
            overflow = len(self.entries) - self.max_entries + 1
            self._rotate_out(self.entries[:overflow])
            del self.entries[:overflow]
            self.rotated += overflow
        entry = QuarantinedEvent(seq, reason, element, context)
        self.entries.append(entry)
        return entry

    def _rotate_out(self, entries):
        if self.sidecar is None or not entries:
            return
        with open(self.sidecar, "a") as fh:
            for entry in entries:
                fh.write(json.dumps(entry.as_dict(), default=str))
                fh.write("\n")
            fh.flush()

    @property
    def total(self) -> int:
        """Total quarantined elements across all reasons."""
        return sum(self.counts.values())

    def count(self, reason) -> int:
        """Occurrences of one reason code."""
        return self.counts.get(reason, 0)

    def clear(self):
        """Reset for a deterministic recovery replay."""
        self.entries.clear()
        self.counts.clear()
        self.rotated = 0
        self._seq = 0

    def as_dict(self) -> dict:
        """JSON-ready summary for the observability export."""
        return {
            "total": self.total,
            "by_reason": dict(sorted(self.counts.items())),
            "retained": len(self.entries),
            "rotated": self.rotated,
            "sidecar": self.sidecar,
            "entries": [entry.as_dict() for entry in self.entries],
        }

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __repr__(self):
        return (
            f"QuarantineLedger(total={self.total}, "
            f"by_reason={dict(sorted(self.counts.items()))})"
        )
