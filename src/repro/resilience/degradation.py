"""Graceful degradation: load shedding before memory kills the process.

A sorter under punctuation starvation (or fed a pathologically late
stream) buffers without bound — the Figure 10 memory series turned into
an OOM.  The :class:`LoadSheddingGuard` watches pipeline buffered
occupancy (the same ``buffered_count`` census as
:class:`~repro.framework.memory.MemoryMeter`) at every punctuation and,
past a configurable bound, takes one of two recorded actions:

* ``early-punctuation`` — ask the supervisor to force a punctuation at
  the current event-time high watermark, flushing the reorder buffers
  (equivalent to temporarily shrinking the reorder latency to zero:
  memory is saved, subsequent genuinely-late events pay the late
  policy);
* ``degrade-late-policy`` — flip every sorter running
  :data:`~repro.core.late.LatePolicy.RAISE` to
  :data:`~repro.core.late.LatePolicy.ADJUST`, trading strictness for
  availability without forcing emission.

Every decision is recorded with its trigger context and surfaces in the
``PipelineSnapshot`` export (``resilience.degradations``).
"""

from __future__ import annotations

from repro.core.late import LatePolicy
from repro.engine.event import EVENT_BYTES

__all__ = ["DegradationDecision", "LoadSheddingGuard"]

_NEG_INF = float("-inf")

#: Guard modes.
EARLY_PUNCTUATION = "early-punctuation"
DEGRADE_LATE_POLICY = "degrade-late-policy"
_MODES = (EARLY_PUNCTUATION, DEGRADE_LATE_POLICY)


class DegradationDecision:
    """One recorded shedding action."""

    __slots__ = ("kind", "buffered", "watermark", "detail")

    def __init__(self, kind, buffered, watermark, detail):
        self.kind = kind
        #: buffered events at the moment of the decision.
        self.buffered = buffered
        #: event-time high watermark when the decision fired.
        self.watermark = watermark
        #: action specifics (forced timestamp / degraded operator count).
        self.detail = dict(detail)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "buffered": self.buffered,
            "watermark": self.watermark,
            "detail": dict(self.detail),
        }

    def __repr__(self):
        return (
            f"DegradationDecision({self.kind}, buffered={self.buffered}, "
            f"watermark={self.watermark!r})"
        )


class LoadSheddingGuard:
    """Occupancy watchdog with a recorded degradation policy.

    Parameters
    ----------
    max_buffered_events:
        Occupancy bound in events; checked against the pipeline-wide
        ``buffered_events()`` census after every punctuation.
    max_buffered_mb:
        Alternative bound in megabytes using the Trill event layout
        (:data:`~repro.engine.event.EVENT_BYTES` per event); exactly one
        of the two bounds must be given.
    mode:
        ``"early-punctuation"`` (default) or ``"degrade-late-policy"``.
    bytes_per_event:
        Byte cost used to convert ``max_buffered_mb``.
    check_interval:
        The supervisor consults the guard after every punctuation *and*
        every ``check_interval`` ingress events — the latter is what
        catches punctuation starvation, where no punctuation ever
        arrives to trigger a check.

    The guard is deterministic and replay-safe: the supervisor resets it
    before a recovery replay, and identical element sequences re-produce
    identical decisions.
    """

    def __init__(self, max_buffered_events=None, max_buffered_mb=None,
                 mode=EARLY_PUNCTUATION, bytes_per_event=EVENT_BYTES,
                 check_interval=32):
        if (max_buffered_events is None) == (max_buffered_mb is None):
            raise ValueError(
                "exactly one of max_buffered_events / max_buffered_mb "
                "is required"
            )
        if mode not in _MODES:
            raise ValueError(
                f"unknown mode {mode!r}; expected one of {_MODES}"
            )
        if max_buffered_events is None:
            max_buffered_events = int(
                max_buffered_mb * 1024.0 * 1024.0 / bytes_per_event
            )
        if max_buffered_events < 1:
            raise ValueError("occupancy bound must be >= 1 event")
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.max_buffered_events = max_buffered_events
        self.mode = mode
        self.check_interval = check_interval
        self.decisions = []

    def reset(self):
        """Forget recorded decisions (supervised recovery replay)."""
        self.decisions.clear()

    def check(self, pipeline, high_watermark):
        """Inspect occupancy; returns a forced-punctuation timestamp or
        ``None``.

        Called by the supervisor after each ingress punctuation.  In
        ``degrade-late-policy`` mode the degradation is applied directly
        to the pipeline's sorters and ``None`` is returned.
        """
        buffered = pipeline.buffered_events()
        if buffered <= self.max_buffered_events:
            return None
        if self.mode == EARLY_PUNCTUATION:
            if high_watermark == _NEG_INF:
                return None
            self.decisions.append(DegradationDecision(
                EARLY_PUNCTUATION, buffered, high_watermark,
                {"forced_timestamp": high_watermark,
                 "bound": self.max_buffered_events},
            ))
            return high_watermark
        degraded = 0
        for op in pipeline.operators:
            late = getattr(getattr(op, "sorter", None), "late", None)
            if late is not None and late.policy is LatePolicy.RAISE:
                late.policy = LatePolicy.ADJUST
                degraded += 1
        if degraded:
            self.decisions.append(DegradationDecision(
                DEGRADE_LATE_POLICY, buffered, high_watermark,
                {"sorters_degraded": degraded,
                 "bound": self.max_buffered_events},
            ))
        return None

    def as_dicts(self):
        """JSON-ready decision list for the observability export."""
        return [decision.as_dict() for decision in self.decisions]

    def __repr__(self):
        return (
            f"LoadSheddingGuard(mode={self.mode}, "
            f"bound={self.max_buffered_events}, "
            f"decisions={len(self.decisions)})"
        )
