"""Deterministic fault injection for recovery testing.

A :class:`FaultInjector` wraps an ingress iterable (or an operator) and
injects configurable faults drawn from a seeded RNG, so every failure
mode the supervisor claims to survive can be reproduced exactly — in
tests and from the CLI (``repro run --chaos <spec> --seed N``).

Fault spec grammar (full reference in ``docs/resilience.md``)::

    spec     := clause (";" clause)*
    clause   := fault [":" param ("," param)*]
    param    := key "=" value
    fault    := "io" | "crash" | "malform" | "dup" | "drop"
              | "regress" | "op" | "spill" | "net"

Examples::

    io:p=0.01                      1% transient IOError per source pull
    crash:punct=5                  crash after the 5th punctuation
    crash:every=50,limit=3         crash after every 50th, at most 3 times
    malform:p=0.002                inject garbage elements
    dup:p=0.01                     duplicate elements (at-least-once feed)
    drop:p=0.001                   lose elements outright
    regress:p=0.01,delta=5         inject regressing punctuations
    op:p=0.001,limit=2             operator-level crashes (wrap_operator)
    spill:p=0.01,mode=corrupt      corrupt spilled run-file blocks
    spill:p=0.1,mode=oserror,on=read,limit=1
                                   one transient read error on spill I/O
    net:p=0.01,mode=disconnect     drop the client connection mid-stream
    net:p=0.005,mode=malform,tenant=acme
                                   send unparseable frames as tenant acme

Unlike the scalar faults, ``net`` clauses accumulate: a spec may carry
several (one per mode/tenant), and :meth:`FaultInjector.net_fault` is
consulted once per client-side protocol operation, returning the first
firing clause's mode.  Modes: ``disconnect`` (close the socket
mid-stream), ``slowloris`` (stall longer than the server's consumer
deadline), ``malform`` (send an unparseable frame), ``dup`` (resend the
previous frame), ``split`` (tear one frame across delayed writes).

Faults are injected *losslessly* where the real-world analogue is
lossless: transient I/O errors raise before the underlying element is
consumed, crashes fire on the pull after a punctuation was delivered,
and malformed/regressing elements are injected *in addition to* the
real stream — so a supervised, quarantining run over a chaos-wrapped
source can still be byte-identical to the fault-free run.  ``drop`` is
the deliberate exception: it models true upstream data loss.
"""

from __future__ import annotations

import random

from repro.core.errors import ChaosSpecError
from repro.engine.event import is_punctuation

__all__ = [
    "ChaosSpec",
    "FaultInjector",
    "InjectedCrashError",
    "MalformedEvent",
    "TransientInjectedError",
    "parse_chaos_spec",
]


class TransientInjectedError(IOError):
    """Injected transient source failure; retry succeeds (no data loss)."""


class InjectedCrashError(RuntimeError):
    """Injected hard crash; recovery requires restore-and-replay."""


class MalformedEvent:
    """An unparseable stream element (the injected "poison row").

    Deliberately satisfies neither the event protocol (``sync_time`` is
    ``None``) nor the punctuation protocol, so ingress validation must
    either quarantine it or fail.
    """

    __slots__ = ("raw",)

    def __init__(self, raw):
        self.raw = raw

    #: Present but unusable, like a log row whose timestamp failed to parse.
    sync_time = None

    def __repr__(self):
        return f"MalformedEvent({self.raw!r})"


_FAULT_KEYS = {
    "io": {"p", "limit"},
    "crash": {"punct", "every", "limit"},
    "malform": {"p", "limit"},
    "dup": {"p", "limit"},
    "drop": {"p", "limit"},
    "regress": {"p", "delta", "limit"},
    "op": {"p", "limit"},
    "spill": {"p", "mode", "on", "limit"},
    "net": {"p", "mode", "tenant", "limit"},
}

_SPILL_MODES = ("oserror", "corrupt", "truncate")
_SPILL_SIDES = ("read", "write", "both")
_NET_MODES = ("disconnect", "slowloris", "malform", "dup", "split")


class ChaosSpec:
    """Parsed fault configuration (one attribute group per fault)."""

    def __init__(self):
        self.io_p = 0.0
        self.io_limit = None
        self.crash_puncts = frozenset()
        self.crash_every = None
        self.crash_limit = None
        self.malform_p = 0.0
        self.malform_limit = None
        self.dup_p = 0.0
        self.dup_limit = None
        self.drop_p = 0.0
        self.drop_limit = None
        self.regress_p = 0.0
        self.regress_delta = 1
        self.regress_limit = None
        self.op_p = 0.0
        self.op_limit = None
        self.spill_p = 0.0
        self.spill_mode = "oserror"
        self.spill_on = "both"
        self.spill_limit = None
        #: list of {"p", "mode", "tenant", "limit"} dicts, spec order.
        self.net = []

    def __repr__(self):
        active = [
            name for name in (
                "io", "crash", "malform", "dup", "drop", "regress", "op",
                "spill",
            )
            if getattr(self, f"{name}_p", 0.0)
            or (name == "crash" and (self.crash_puncts or self.crash_every))
        ]
        if self.net:
            active.append("net")
        return f"ChaosSpec(active={active})"


def _parse_params(fault, body, path):
    params = {}
    for part in body.split(","):
        if "=" not in part:
            raise ChaosSpecError(
                f"{path}: expected key=value, got {part!r}"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        if key not in _FAULT_KEYS[fault]:
            raise ChaosSpecError(
                f"{path}: unknown parameter {key!r} for fault {fault!r} "
                f"(expected one of {sorted(_FAULT_KEYS[fault])})"
            )
        params[key] = value.strip()
    return params


def _float_param(params, key, path, default=None):
    if key not in params:
        if default is None:
            raise ChaosSpecError(f"{path}: missing required {key}=")
        return default
    try:
        value = float(params[key])
    except ValueError:
        raise ChaosSpecError(
            f"{path}: {key}={params[key]!r} is not a number"
        ) from None
    if key == "p" and not 0.0 <= value <= 1.0:
        raise ChaosSpecError(f"{path}: p must be in [0, 1], got {value}")
    return value


def _int_param(params, key, path, default=None, minimum=1):
    if key not in params:
        return default
    try:
        value = int(params[key])
    except ValueError:
        raise ChaosSpecError(
            f"{path}: {key}={params[key]!r} is not an integer"
        ) from None
    if value < minimum:
        raise ChaosSpecError(f"{path}: {key} must be >= {minimum}")
    return value


def parse_chaos_spec(spec) -> ChaosSpec:
    """Parse a chaos spec string (see the module docstring's grammar).

    A :class:`ChaosSpec` passes through unchanged, so callers can accept
    either form.  Raises :class:`~repro.core.errors.ChaosSpecError` on
    any grammar or range violation.
    """
    if isinstance(spec, ChaosSpec):
        return spec
    parsed = ChaosSpec()
    if not spec or not spec.strip():
        raise ChaosSpecError("empty chaos spec")
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        fault, _, body = clause.partition(":")
        fault = fault.strip()
        if fault not in _FAULT_KEYS:
            raise ChaosSpecError(
                f"unknown fault {fault!r} "
                f"(expected one of {sorted(_FAULT_KEYS)})"
            )
        params = _parse_params(fault, body, clause) if body else {}
        if fault == "crash":
            puncts = params.get("punct")
            if puncts is not None:
                try:
                    values = frozenset(
                        int(v) for v in puncts.split("+")
                    )
                except ValueError:
                    raise ChaosSpecError(
                        f"{clause}: punct must be ints joined by '+', "
                        f"got {puncts!r}"
                    ) from None
                if any(v < 1 for v in values):
                    raise ChaosSpecError(
                        f"{clause}: punctuation indices are 1-based"
                    )
                parsed.crash_puncts = parsed.crash_puncts | values
            parsed.crash_every = _int_param(params, "every", clause)
            parsed.crash_limit = _int_param(params, "limit", clause)
            if not parsed.crash_puncts and parsed.crash_every is None:
                raise ChaosSpecError(
                    f"{clause}: crash needs punct= or every="
                )
        elif fault == "spill":
            parsed.spill_p = _float_param(params, "p", clause)
            parsed.spill_limit = _int_param(params, "limit", clause)
            mode = params.get("mode", "oserror").strip()
            if mode not in _SPILL_MODES:
                raise ChaosSpecError(
                    f"{clause}: mode must be one of {list(_SPILL_MODES)}, "
                    f"got {mode!r}"
                )
            parsed.spill_mode = mode
            side = params.get("on", "both").strip()
            if side not in _SPILL_SIDES:
                raise ChaosSpecError(
                    f"{clause}: on must be one of {list(_SPILL_SIDES)}, "
                    f"got {side!r}"
                )
            parsed.spill_on = side
        elif fault == "net":
            mode = params.get("mode", "").strip()
            if mode not in _NET_MODES:
                raise ChaosSpecError(
                    f"{clause}: mode must be one of {list(_NET_MODES)}, "
                    f"got {mode!r}"
                )
            tenant = params.get("tenant", "").strip() or None
            parsed.net.append({
                "p": _float_param(params, "p", clause),
                "mode": mode,
                "tenant": tenant,
                "limit": _int_param(params, "limit", clause),
            })
        elif fault == "regress":
            parsed.regress_p = _float_param(params, "p", clause)
            parsed.regress_delta = _int_param(
                params, "delta", clause, default=1
            )
            parsed.regress_limit = _int_param(params, "limit", clause)
        else:
            setattr(parsed, f"{fault}_p", _float_param(params, "p", clause))
            setattr(
                parsed, f"{fault}_limit", _int_param(params, "limit", clause)
            )
    return parsed


class FaultInjector:
    """Seeded fault source; wraps iterables and operators.

    One injector instance carries its RNG and fault counters across
    supervisor restarts — recovery replays do not consult the injector
    (the journal already holds the elements it produced), so a crash
    scheduled "after the 8th punctuation" fires exactly once no matter
    how many times the pipeline restarts before or after it.
    """

    def __init__(self, spec, seed=0):
        self.spec = parse_chaos_spec(spec)
        self.seed = seed
        self.rng = random.Random(seed)
        #: fault name -> times fired, for reporting and limits.
        self.fired = {}
        self._punct_count = 0
        self._crash_armed = False

    # -- bookkeeping -------------------------------------------------------

    def _count(self, fault):
        self.fired[fault] = self.fired.get(fault, 0) + 1

    def _within_limit(self, fault, limit) -> bool:
        return limit is None or self.fired.get(fault, 0) < limit

    def _roll(self, fault, p, limit) -> bool:
        """One Bernoulli trial, drawn unconditionally for determinism."""
        if p <= 0.0:
            return False
        hit = self.rng.random() < p
        if hit and self._within_limit(fault, limit):
            self._count(fault)
            return True
        return False

    # -- iterable wrapping -------------------------------------------------

    def wrap(self, iterable):
        """Chaos-wrap an ingress element iterable.

        Returns an iterator whose ``__next__`` may raise
        :class:`TransientInjectedError` (before consuming the underlying
        element — a retry loses nothing) or :class:`InjectedCrashError`
        (armed by the preceding punctuation, fired before consuming —
        recovery resumes exactly where the crash hit).
        """
        return _ChaosIterator(self, iter(iterable))

    # -- operator wrapping -------------------------------------------------

    def wrap_operator(self, op):
        """Wrap a live operator's ``on_event`` to inject crashes.

        Uses the ``op:p=...,limit=...`` fault.  Returns ``op`` (wrapped
        in place via the observability instrument hook, so the wrapper
        is per-instance and disappears with the instance).
        """
        injector = self

        def wrap(bound):
            def on_event(event):
                if injector._roll(
                    "op", injector.spec.op_p, injector.spec.op_limit
                ):
                    raise InjectedCrashError(
                        f"injected operator fault at {event!r}"
                    )
                bound(event)
            return on_event

        op.instrument({"on_event": wrap})
        return op

    # -- spill-file faults -------------------------------------------------

    def spill_write_fault(self, path):
        """Consulted once per spilled block write (``spill`` fault).

        Returns ``None`` (healthy write) or a corruption mode the writer
        applies to the on-disk bytes — ``"corrupt"`` (bit flip) or
        ``"truncate"`` (torn write) — or raises :class:`OSError` for
        ``mode=oserror``.  The block's CRC is computed over the intended
        payload first, so an applied corruption is *detectable*: the
        reader must surface it as a
        :class:`~repro.core.errors.SpillCorruptionError`, never as a
        silently wrong answer.
        """
        spec = self.spec
        if spec.spill_on not in ("write", "both"):
            return None
        if not self._roll("spill", spec.spill_p, spec.spill_limit):
            return None
        if spec.spill_mode == "oserror":
            raise OSError(f"injected spill write failure: {path}")
        return spec.spill_mode

    def spill_read_fault(self, path, offset, data):
        """Consulted once per spilled payload read (``spill`` fault).

        Returns the payload bytes to hand the reader — transformed for
        ``mode=corrupt`` / ``mode=truncate`` (which the CRC/framing
        checks must catch) — or raises :class:`OSError` for
        ``mode=oserror``.
        """
        spec = self.spec
        if spec.spill_on not in ("read", "both"):
            return data
        if not self._roll("spill", spec.spill_p, spec.spill_limit):
            return data
        if spec.spill_mode == "oserror":
            raise OSError(
                f"injected spill read failure: {path} at offset {offset}"
            )
        if spec.spill_mode == "truncate":
            return data[: len(data) // 2]
        if not data:
            return data
        corrupted = bytearray(data)
        corrupted[len(corrupted) // 2] ^= 0xFF
        return bytes(corrupted)

    # -- network faults ----------------------------------------------------

    def net_fault(self, tenant=None):
        """Consulted once per client-side protocol operation (``net``).

        Walks the spec's ``net`` clauses in order; clauses carrying
        ``tenant=`` only apply to that tenant.  Returns the first firing
        clause's mode (``disconnect`` / ``slowloris`` / ``malform`` /
        ``dup`` / ``split``) or ``None``.  Firings count under
        ``net:<mode>`` in :attr:`fired`, which the serve soak test
        reconciles against the server's quarantine/eviction counters.
        """
        for clause in self.spec.net:
            if clause["tenant"] is not None and clause["tenant"] != tenant:
                continue
            if self._roll(
                f"net:{clause['mode']}", clause["p"], clause["limit"]
            ):
                return clause["mode"]
        return None

    def summary(self) -> dict:
        """Faults fired so far, by name (for result reporting)."""
        return dict(sorted(self.fired.items()))

    def __repr__(self):
        return f"FaultInjector(seed={self.seed}, fired={self.summary()})"


def _element_kind(element):
    """'punct' | 'event' for both rich and raw-pair streams."""
    if is_punctuation(element):
        return "punct"
    if type(element) is tuple and len(element) == 2 and \
            element[0] == "punct":
        return "punct"
    return "event"


def _punct_timestamp(element):
    return element[1] if type(element) is tuple else element.timestamp


def _make_regressed(element, timestamp):
    """A regressing punctuation in the same representation as ``element``."""
    if type(element) is tuple:
        return ("punct", timestamp)
    from repro.engine.event import Punctuation

    return Punctuation(timestamp)


class _ChaosIterator:
    """Iterator over a chaos-wrapped source (restartable after raises)."""

    __slots__ = ("_injector", "_it", "_pending", "_last_punct")

    def __init__(self, injector, it):
        self._injector = injector
        self._it = it
        self._pending = []
        self._last_punct = None

    def __iter__(self):
        return self

    def __next__(self):
        inj = self._injector
        spec = inj.spec
        while True:
            # Crash armed by the previously delivered punctuation: fire
            # before consuming anything, so no element is lost.
            if inj._crash_armed:
                inj._crash_armed = False
                inj._count("crash")
                raise InjectedCrashError(
                    f"injected crash after punctuation "
                    f"#{inj._punct_count}"
                )
            if self._pending:
                return self._pending.pop(0)
            if inj._roll("io", spec.io_p, spec.io_limit):
                raise TransientInjectedError(
                    "injected transient source failure"
                )
            element = next(self._it)
            if _element_kind(element) == "punct":
                inj._punct_count += 1
                if self._crash_due():
                    inj._crash_armed = True
                if inj._roll(
                    "regress", spec.regress_p, spec.regress_limit
                ) and self._last_punct is not None:
                    self._pending.append(_make_regressed(
                        element,
                        self._last_punct - spec.regress_delta,
                    ))
                self._last_punct = _punct_timestamp(element)
                return element
            # Event faults.
            if inj._roll("drop", spec.drop_p, spec.drop_limit):
                continue
            if inj._roll("malform", spec.malform_p, spec.malform_limit):
                self._pending.append(element)
                return MalformedEvent(
                    f"garbage#{inj.fired['malform']}"
                )
            if inj._roll("dup", spec.dup_p, spec.dup_limit):
                self._pending.append(element)
            return element

    def _crash_due(self) -> bool:
        inj = self._injector
        spec = inj.spec
        if not inj._within_limit("crash", spec.crash_limit):
            return False
        if inj._punct_count in spec.crash_puncts:
            return True
        return bool(
            spec.crash_every
            and inj._punct_count % spec.crash_every == 0
        )
