"""Out-of-core run pool: bounded-memory spill-to-disk Impatience sorting.

The in-memory sorters cap stream size at machine RAM.  This module adds
a memory-budgeted run pool in the spirit of TPIE-style external-memory
pipelining: buffered bytes are tracked against a configurable budget,
cold sorted runs spill to disk as compact framed columnar blocks, and a
punctuation cut streams them back with sequential reads through a k-way
loser-tree merge.

Run generation is *replacement selection* in batched form: when the
buffer overflows, every buffered element whose key is at or above the
open run's tail is appended to that run (keeping it sorted), and only
the colder residue stays in memory.  On the nearly-sorted log streams
the paper targets, almost everything is eligible, so on-disk runs grow
far longer than the memory budget — the classic ~2x-of-memory expected
run length, unbounded for sorted input.

Correctness contract: output is **byte-identical** to the in-memory
columnar sorter.  That holds because every stage is arrival-stable for
equal keys — chunks are stable-argsorted, a run's equal keys are
appended in arrival order (an eligible key equal to the tail arrived
after the spill that set that tail), later runs receive equal keys
later than earlier runs did, and the in-memory residue loses ties to
every spilled run.  The k-way merge breaks key ties by source index
(runs in creation order, then the memory buffer), which therefore
reproduces arrival order — exactly the tie order of
:class:`~repro.core.columnar.ColumnarImpatienceSorter`'s stable merge.

Every spilled block carries a CRC32; damage on the way back in raises a
typed :class:`~repro.core.errors.SpillCorruptionError` with file and
byte offset — never a silent wrong answer.  The spill directory is a
context-managed resource with a ``weakref.finalize`` backstop, so run
files do not outlive the pool even on the exception path.
"""

from __future__ import annotations

import os
import pickle
import re
import shutil
import struct
import tempfile
import uuid
import weakref
import zlib

import numpy as np

from repro.core.errors import PunctuationOrderError, SpillCorruptionError
from repro.core.late import LateEventTracker, LatePolicy
from repro.core.stats import SorterStats
from repro.core.strings import StringColumn

__all__ = [
    "ExternalColumnarSorter",
    "ExternalImpatienceSorter",
    "ExternalRunPool",
    "LoserTree",
    "SpillDirectory",
    "SpillMetrics",
    "parse_memory_budget",
]

_NEG_INF = float("-inf")
_EMPTY = np.empty(0, dtype=np.int64)

# File layout: one header, then a sequence of framed blocks.  Each block
# holds ``nrows`` int64 keys, the parallel int64 payload columns, then —
# for string-carrying sorters — each string column as
# ``u64 arena_len | offsets u32[nrows+1] | arena`` (the
# :class:`~repro.core.strings.StringColumn` wire format), and — for
# keyed scalar sorters — a pickled list of the original items.  All of
# it sits inside the block's CRC frame, so damaged string arenas raise
# ``SpillCorruptionError`` exactly like damaged int columns.
_FILE_MAGIC = b"RSPILL01"
_FILE_HEADER = struct.Struct("<8sII")  # magic, ncols, flags
_FLAG_OBJECTS = 1
# The string-column count rides the upper flag bits; files written
# before strings existed decode with nscols == 0 unchanged.
_FLAG_NSCOLS_SHIFT = 16
_BLOCK_MAGIC = 0x4B4C4252  # "RBLK" little-endian
# magic, nrows, first_key, last_key, payload_nbytes, crc32
_BLOCK_HEADER = struct.Struct("<IIqqQI")

# Nominal accounting charge per pickled payload object (keyed scalar
# path); exact sizes are unknowable without serializing twice.
_OBJECT_NOMINAL_BYTES = 56

_BUDGET_SUFFIXES = {
    "": 1, "b": 1,
    "k": 1024, "kb": 1024, "kib": 1024,
    "m": 1024 ** 2, "mb": 1024 ** 2, "mib": 1024 ** 2,
    "g": 1024 ** 3, "gb": 1024 ** 3, "gib": 1024 ** 3,
}


def parse_memory_budget(value):
    """Parse a memory budget into bytes.

    Accepts plain ints (bytes) or strings with a binary suffix:
    ``"64MB"``, ``"512k"``, ``"1GiB"``, ``"4096"``.
    """
    if isinstance(value, bool):
        raise ValueError(f"invalid memory budget {value!r}")
    if isinstance(value, (int, np.integer)):
        budget = int(value)
    elif isinstance(value, str):
        match = re.fullmatch(
            r"\s*(\d+)\s*([a-z]*)\s*", value.lower().replace("_", "")
        )
        if not match or match.group(2) not in _BUDGET_SUFFIXES:
            raise ValueError(f"invalid memory budget {value!r}")
        budget = int(match.group(1)) * _BUDGET_SUFFIXES[match.group(2)]
    else:
        raise ValueError(f"invalid memory budget {value!r}")
    if budget < 1:
        raise ValueError("memory budget must be at least 1 byte")
    return budget


class SpillMetrics:
    """Counters for the spill subsystem, exposed via snapshots."""

    __slots__ = (
        "budget_bytes", "spills", "runs_spilled", "blocks_written",
        "bytes_written", "blocks_read", "bytes_read", "merges",
        "max_merge_fan_in", "peak_buffered_bytes", "run_bytes",
    )

    def __init__(self, budget_bytes):
        self.budget_bytes = int(budget_bytes)
        self.spills = 0
        self.runs_spilled = 0
        self.blocks_written = 0
        self.bytes_written = 0
        self.blocks_read = 0
        self.bytes_read = 0
        self.merges = 0
        self.max_merge_fan_in = 0
        self.peak_buffered_bytes = 0
        self.run_bytes = {}  # run name -> logical bytes spilled into it

    def note_buffered(self, nbytes):
        if nbytes > self.peak_buffered_bytes:
            self.peak_buffered_bytes = int(nbytes)

    def note_fan_in(self, sources):
        if sources > self.max_merge_fan_in:
            self.max_merge_fan_in = int(sources)

    def as_dict(self):
        lengths = list(self.run_bytes.values())
        return {
            "budget_bytes": self.budget_bytes,
            "spills": self.spills,
            "runs_spilled": self.runs_spilled,
            "blocks_written": self.blocks_written,
            "bytes_written": self.bytes_written,
            "blocks_read": self.blocks_read,
            "bytes_read": self.bytes_read,
            "merges": self.merges,
            "max_merge_fan_in": self.max_merge_fan_in,
            "peak_buffered_bytes": self.peak_buffered_bytes,
            "avg_run_bytes": (sum(lengths) / len(lengths)) if lengths else 0,
            "max_run_bytes": max(lengths, default=0),
        }


class SpillDirectory:
    """A context-managed temporary directory for spilled run files.

    Always owns its directory (a fresh ``mkdtemp`` under ``base``), so
    :meth:`cleanup` may remove it unconditionally.  A
    ``weakref.finalize`` backstop removes it even if nobody calls
    ``cleanup`` — run files never outlive the process.
    """

    def __init__(self, base=None, prefix="repro-spill-"):
        self.path = tempfile.mkdtemp(prefix=prefix, dir=base)
        self._finalizer = weakref.finalize(
            self, shutil.rmtree, self.path, True
        )

    @property
    def alive(self):
        return self._finalizer.alive

    def file_path(self, name):
        return os.path.join(self.path, name)

    def files(self):
        """Names of the files currently present (empty once cleaned)."""
        if not self.alive or not os.path.isdir(self.path):
            return []
        return sorted(os.listdir(self.path))

    def cleanup(self):
        self._finalizer()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.cleanup()
        return False

    def __repr__(self):
        state = "live" if self.alive else "cleaned"
        return f"SpillDirectory({self.path!r}, {state})"


class LoserTree:
    """Tournament tree of losers for k-way merge winner selection.

    Entries are ``(key, source_index)`` tuples — the index both breaks
    ties toward earlier sources (arrival stability) and makes every
    comparison total.  ``advance`` replaces the current winner (the only
    replay the loser-tree invariant supports) and :meth:`runner_up`
    returns the true second-smallest entry: the runner-up must have lost
    directly to the winner, so it sits on the winner's root path.
    """

    __slots__ = ("_k", "_tree", "_entries", "_winner")

    _SENTINEL = (float("inf"), -1)

    def __init__(self, entries):
        if not entries:
            raise ValueError("LoserTree needs at least one source")
        k = len(entries)
        self._k = k
        self._entries = [
            self._SENTINEL if e is None else e for e in entries
        ]
        self._tree = [0] * k  # internal nodes 1..k-1 hold loser leaves
        winner = [0] * (2 * k)
        for i in range(k):
            winner[k + i] = i
        for node in range(k - 1, 0, -1):
            a, b = winner[2 * node], winner[2 * node + 1]
            if self._entries[a] <= self._entries[b]:
                winner[node], self._tree[node] = a, b
            else:
                winner[node], self._tree[node] = b, a
        self._winner = winner[1]

    @property
    def winner(self):
        """Index of the smallest live source, or -1 when all exhausted."""
        if self._entries[self._winner] is self._SENTINEL:
            return -1
        return self._winner

    def winner_entry(self):
        entry = self._entries[self._winner]
        return None if entry is self._SENTINEL else entry

    def runner_up(self):
        """The second-smallest live entry, or None if fewer than two."""
        node = (self._winner + self._k) >> 1
        best = None
        while node >= 1:
            entry = self._entries[self._tree[node]]
            if best is None or entry < best:
                best = entry
            node >>= 1
        return None if best is None or best is self._SENTINEL else best

    def advance(self, entry):
        """Replace the winner's entry (None = exhausted) and replay."""
        leaf = self._winner
        self._entries[leaf] = self._SENTINEL if entry is None else entry
        current = leaf
        node = (leaf + self._k) >> 1
        while node >= 1:
            rival = self._tree[node]
            if self._entries[rival] < self._entries[current]:
                self._tree[node], current = current, rival
            node >>= 1
        self._winner = current


def _is_ascending(arr):
    return arr.size < 2 or bool((np.diff(arr) >= 0).all())


def _merge_chunk_list(chunks, ncols, has_objects, nscols=0):
    """Stable-merge arrival-ordered sorted chunks into one sorted part."""
    if len(chunks) == 1:
        return chunks[0]
    keys = np.concatenate([c[0] for c in chunks])
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    cols = tuple(
        np.concatenate([c[1][i] for c in chunks])[order]
        for i in range(ncols)
    )
    objs = None
    if has_objects:
        flat = [obj for c in chunks for obj in c[2]]
        objs = [flat[i] for i in order]
    scols = tuple(
        StringColumn.concat([c[3][i] for c in chunks]).take(order)
        for i in range(nscols)
    )
    return keys, cols, objs, scols


def _kway_merge(parts, ncols, has_objects, nscols=0):
    """Loser-tree k-way merge of sorted parts, ties won by lower index.

    The winner source emits a galloped slice bounded by the runner-up's
    head key (``searchsorted`` side chosen by tie priority), so the
    Python-level loop runs per *interleaving boundary*, not per element.
    String columns slice with the same boundaries (arena-sharing views)
    and concatenate once at the end.
    """
    empty_objs = [] if has_objects else None
    empty_scols = tuple(StringColumn.empty() for _ in range(nscols))
    parts = [p for p in parts if p[0].size]
    if not parts:
        return (
            _EMPTY, tuple(_EMPTY for _ in range(ncols)), empty_objs,
            empty_scols,
        )
    if len(parts) == 1:
        keys, cols, objs, scols = parts[0]
        return keys, cols, (list(objs) if has_objects else None), scols
    tree = LoserTree([(int(p[0][0]), i) for i, p in enumerate(parts)])
    cursors = [0] * len(parts)
    key_slices = []
    col_slices = [[] for _ in range(ncols)]
    obj_slices = []
    scol_slices = [[] for _ in range(nscols)]
    while True:
        i = tree.winner
        if i < 0:
            break
        keys, cols, objs, scols = parts[i]
        start = cursors[i]
        bound = tree.runner_up()
        if bound is None:
            stop = int(keys.size)
        else:
            bound_key, bound_idx = bound
            side = "right" if i < bound_idx else "left"
            stop = int(np.searchsorted(keys, bound_key, side=side))
            if stop <= start:  # safety net; the winner key always fits
                stop = start + 1
        key_slices.append(keys[start:stop])
        for c in range(ncols):
            col_slices[c].append(cols[c][start:stop])
        if has_objects:
            obj_slices.append(objs[start:stop])
        for c in range(nscols):
            scol_slices[c].append(scols[c].slice(start, stop))
        cursors[i] = stop
        if stop < keys.size:
            tree.advance((int(keys[stop]), i))
        else:
            tree.advance(None)
    merged = np.concatenate(key_slices)
    merged_cols = tuple(np.concatenate(col_slices[c]) for c in range(ncols))
    merged_objs = None
    if has_objects:
        merged_objs = [obj for chunk in obj_slices for obj in chunk]
    merged_scols = tuple(
        StringColumn.concat(scol_slices[c]) for c in range(nscols)
    )
    return merged, merged_cols, merged_objs, merged_scols


class _RunFile:
    """One spilled sorted run: a framed sequence of columnar blocks.

    A single read/write handle serves both roles; writes always land at
    ``self.length`` (the logical end), reads stream sequentially from
    ``read_offset`` with ``row_skip`` marking the rows of the current
    block already emitted by an earlier punctuation cut.
    """

    __slots__ = (
        "path", "name", "ncols", "nscols", "objects", "metrics", "length",
        "read_offset", "row_skip", "tail_key", "closed", "rows",
        "string_bytes", "_fh",
    )

    def __init__(self, path, ncols, objects, metrics, nscols=0):
        self.path = path
        self.name = os.path.basename(path)
        self.ncols = int(ncols)
        self.nscols = int(nscols)
        self.objects = bool(objects)
        self.metrics = metrics
        self.length = _FILE_HEADER.size
        self.read_offset = _FILE_HEADER.size
        self.row_skip = 0
        self.tail_key = None
        self.closed = False
        self.rows = 0
        self.string_bytes = 0
        self._fh = None

    @classmethod
    def create(cls, path, ncols, objects, metrics, nscols=0):
        run = cls(path, ncols, objects, metrics, nscols=nscols)
        run._fh = open(path, "w+b")
        flags = (_FLAG_OBJECTS if objects else 0) | (
            int(nscols) << _FLAG_NSCOLS_SHIFT
        )
        header = _FILE_HEADER.pack(_FILE_MAGIC, ncols, flags)
        run._fh.write(header)
        run._fh.flush()
        metrics.bytes_written += len(header)
        return run

    @classmethod
    def reopen(cls, path, metrics):
        """Re-open an existing run file (checkpoint restore path)."""
        run = cls(path, 0, False, metrics)
        run._fh = open(path, "r+b")
        header = run._fh.read(_FILE_HEADER.size)
        if len(header) < _FILE_HEADER.size:
            raise SpillCorruptionError(path, 0, "truncated file header")
        magic, ncols, flags = _FILE_HEADER.unpack(header)
        if magic != _FILE_MAGIC:
            raise SpillCorruptionError(path, 0, "bad file magic")
        run.ncols = int(ncols)
        run.objects = bool(flags & _FLAG_OBJECTS)
        run.nscols = int(flags >> _FLAG_NSCOLS_SHIFT)
        return run

    @property
    def exhausted(self):
        return self.read_offset >= self.length

    def append(self, keys, cols, objs, block_rows, injector, scols=()):
        """Append an ascending slice (first key >= tail) as blocks."""
        for start in range(0, int(keys.size), block_rows):
            stop = min(start + block_rows, int(keys.size))
            self._write_block(
                keys[start:stop],
                tuple(col[start:stop] for col in cols),
                objs[start:stop] if objs is not None else None,
                injector,
                tuple(col.slice(start, stop) for col in scols),
            )
        self.tail_key = int(keys[-1])
        self.rows += int(keys.size)

    def _write_block(self, keys, cols, objs, injector, scols=()):
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        payload = keys.tobytes()
        for col in cols:
            payload += np.ascontiguousarray(col, dtype=np.int64).tobytes()
        for col in scols:
            framed = bytearray(col.packed_size())
            col.pack_into(framed)
            payload += bytes(framed)
            self.string_bytes += len(framed)
        if self.objects:
            payload += pickle.dumps(
                list(objs), protocol=pickle.HIGHEST_PROTOCOL
            )
        payload_n = len(payload)
        header = _BLOCK_HEADER.pack(
            _BLOCK_MAGIC, keys.size, int(keys[0]), int(keys[-1]),
            payload_n, zlib.crc32(payload),
        )
        mode = None
        if injector is not None:
            mode = injector.spill_write_fault(self.path)  # may raise
        if mode == "corrupt":
            mutated = bytearray(payload)
            mutated[len(mutated) // 2] ^= 0xFF
            payload = bytes(mutated)
        elif mode == "truncate":
            payload = payload[: payload_n // 2]
        fh = self._fh
        fh.seek(self.length)
        fh.write(header + payload)
        fh.flush()
        # Logical framing always advances by the declared size, so a
        # torn (injected-truncate) write is caught by the CRC on read.
        self.length += _BLOCK_HEADER.size + payload_n
        self.metrics.blocks_written += 1
        self.metrics.bytes_written += len(header) + len(payload)

    def read_upto(self, ts, injector):
        """Sequentially read and return parts with keys <= ``ts``.

        ``ts=None`` reads everything remaining.  Returns a list of
        ``(keys, cols, objs, scols)`` tuples (consecutive, jointly
        ascending).
        """
        parts = []
        while self.read_offset < self.length:
            offset = self.read_offset
            header = self._read_bytes(offset, _BLOCK_HEADER.size, None)
            if len(header) < _BLOCK_HEADER.size:
                raise SpillCorruptionError(
                    self.path, offset, "truncated block header"
                )
            magic, nrows, first_key, last_key, payload_n, crc = \
                _BLOCK_HEADER.unpack(header)
            if magic != _BLOCK_MAGIC:
                raise SpillCorruptionError(
                    self.path, offset, "bad block magic"
                )
            if ts is not None and first_key > ts:
                break
            payload = self._read_bytes(
                offset + _BLOCK_HEADER.size, payload_n, injector
            )
            if len(payload) != payload_n:
                raise SpillCorruptionError(
                    self.path, offset,
                    f"truncated block payload "
                    f"({len(payload)} of {payload_n} bytes)",
                )
            if zlib.crc32(payload) != crc:
                raise SpillCorruptionError(
                    self.path, offset, "block checksum mismatch"
                )
            keys, cols, objs, scols = self._decode(payload, nrows, offset)
            self.metrics.blocks_read += 1
            self.metrics.bytes_read += _BLOCK_HEADER.size + payload_n
            if ts is None or last_key <= ts:
                skip = self.row_skip
                if skip < nrows:
                    parts.append((
                        keys[skip:],
                        tuple(col[skip:] for col in cols),
                        objs[skip:] if objs is not None else None,
                        tuple(col.slice(skip, nrows) for col in scols),
                    ))
                self.read_offset = offset + _BLOCK_HEADER.size + payload_n
                self.row_skip = 0
                continue
            # This block straddles the cut: emit the covered prefix and
            # remember how far we got; the suffix is re-read next cut.
            split = int(np.searchsorted(keys, ts, side="right"))
            if split > self.row_skip:
                parts.append((
                    keys[self.row_skip:split],
                    tuple(col[self.row_skip:split] for col in cols),
                    objs[self.row_skip:split] if objs is not None else None,
                    tuple(
                        col.slice(self.row_skip, split) for col in scols
                    ),
                ))
                self.row_skip = split
            break
        return parts

    def _read_bytes(self, offset, nbytes, injector):
        fh = self._fh
        fh.seek(offset)
        data = fh.read(nbytes)
        if injector is not None:
            data = injector.spill_read_fault(self.path, offset, data)
        return data

    def _decode(self, payload, nrows, offset):
        fixed = 8 * nrows * (1 + self.ncols)
        if len(payload) < fixed or (
            not self.objects and not self.nscols and len(payload) != fixed
        ):
            raise SpillCorruptionError(
                self.path, offset, "block payload size mismatch"
            )
        keys = np.frombuffer(payload, dtype=np.int64, count=nrows)
        cols = tuple(
            np.frombuffer(
                payload, dtype=np.int64, count=nrows,
                offset=8 * nrows * (1 + c),
            )
            for c in range(self.ncols)
        )
        scols = []
        cursor = fixed
        for _ in range(self.nscols):
            try:
                col, cursor = StringColumn.unpack_from(
                    payload, nrows, cursor
                )
            except (struct.error, ValueError) as exc:
                raise SpillCorruptionError(
                    self.path, offset, f"bad string column: {exc}"
                ) from exc
            if len(col.arena) != int(col.offsets[-1]):
                raise SpillCorruptionError(
                    self.path, offset, "string column arena truncated"
                )
            scols.append(col)
        if self.nscols and not self.objects and cursor != len(payload):
            raise SpillCorruptionError(
                self.path, offset, "block payload size mismatch"
            )
        objs = None
        if self.objects:
            try:
                objs = pickle.loads(payload[cursor:])
            except Exception as exc:
                raise SpillCorruptionError(
                    self.path, offset, f"bad object payload: {exc}"
                ) from exc
            if not isinstance(objs, list) or len(objs) != nrows:
                raise SpillCorruptionError(
                    self.path, offset, "object payload length mismatch"
                )
        return keys, cols, objs, tuple(scols)

    def close_handle(self):
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def delete(self):
        self.close_handle()
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass


class ExternalRunPool:
    """Budget-tracked run pool with batched replacement selection.

    Holds arrival-ordered sorted chunks in memory; once buffered bytes
    exceed the budget, the buffer is stable-merged and every element
    eligible for the open run (key >= its tail) is appended to it on
    disk.  If the cold residue still overflows, the run is closed and a
    fresh run absorbs everything — so the resting in-memory footprint
    never exceeds the budget.
    """

    def __init__(self, budget_bytes, columns=0, objects=False,
                 spill_dir=None, injector=None, metrics=None,
                 string_columns=0):
        budget = int(budget_bytes)
        if budget < 1:
            raise ValueError("memory budget must be at least 1 byte")
        if columns < 0:
            raise ValueError("columns must be >= 0")
        if string_columns < 0:
            raise ValueError("string_columns must be >= 0")
        self.budget = budget
        self.columns = int(columns)
        self.string_columns = int(string_columns)
        self.objects = bool(objects)
        self.bytes_per_row = 8 * (1 + self.columns) + (
            _OBJECT_NOMINAL_BYTES if objects else 0
        )
        self.block_rows = max(
            1, min(65536, budget // (4 * self.bytes_per_row))
        )
        if isinstance(spill_dir, SpillDirectory):
            self.directory = spill_dir
            self._owns_dir = False
        else:
            self.directory = SpillDirectory(base=spill_dir)
            self._owns_dir = True
        self.tag = uuid.uuid4().hex[:12]
        self.injector = injector
        self.metrics = metrics if metrics is not None else \
            SpillMetrics(budget)
        self._chunks = []  # arrival-ordered (keys, cols, objs, scols)
        self._rows = 0
        self._sbytes = 0   # buffered string bytes (arenas + offsets)
        self._runs = []    # _RunFile in creation order; last may be open
        self._run_seq = 0

    @property
    def buffered_rows(self):
        return self._rows

    @property
    def buffered_bytes(self):
        # String arenas count against the budget at their true size —
        # that is what makes byte-identity hold at ANY budget: spilling
        # is triggered by real memory pressure, not a row-count proxy.
        return self._rows * self.bytes_per_row + self._sbytes

    @property
    def run_count(self):
        return len(self._runs)

    @property
    def runs(self):
        return tuple(self._runs)

    def insert_sorted(self, keys, cols=(), objs=None, scols=()):
        """Ingest one ascending chunk (keys int64, parallel columns)."""
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        scols = tuple(scols)
        self._chunks.append((keys, tuple(cols), objs, scols))
        self._rows += int(keys.size)
        self._sbytes += sum(col.nbytes for col in scols)
        if self.buffered_bytes > self.budget:
            self._spill()
        self.metrics.note_buffered(self.buffered_bytes)

    def _spill(self):
        keys, cols, objs, scols = _merge_chunk_list(
            self._chunks, self.columns, self.objects, self.string_columns
        )
        self._chunks, self._rows, self._sbytes = [], 0, 0
        run = None
        if self._runs and not self._runs[-1].closed:
            run = self._runs[-1]
        self.metrics.spills += 1
        while True:
            if run is None:
                run = self._new_run()
            tail = run.tail_key
            split = 0 if tail is None else int(
                np.searchsorted(keys, tail, side="left")
            )
            if split < keys.size:
                run.append(
                    keys[split:],
                    tuple(col[split:] for col in cols),
                    objs[split:] if objs is not None else None,
                    self.block_rows,
                    self.injector,
                    tuple(
                        col.slice(split, len(col)) for col in scols
                    ),
                )
                self.metrics.run_bytes[run.name] = (
                    run.rows * self.bytes_per_row + run.string_bytes
                )
            if split == 0:
                break
            keys = keys[:split]
            cols = tuple(col[:split] for col in cols)
            objs = objs[:split] if objs is not None else None
            scols = tuple(col.slice(0, split) for col in scols)
            residue_bytes = keys.size * self.bytes_per_row + sum(
                col.nbytes for col in scols
            )
            if residue_bytes <= self.budget:
                self._chunks = [(keys, cols, objs, scols)]
                self._rows = int(keys.size)
                self._sbytes = sum(col.nbytes for col in scols)
                break
            # Residue alone overflows: retire the run; a fresh one
            # (empty tail) absorbs everything on the next pass.
            run.closed = True
            run = None

    def _new_run(self):
        name = f"{self.tag}-run{self._run_seq:06d}.spill"
        self._run_seq += 1
        run = _RunFile.create(
            self.directory.file_path(name), self.columns, self.objects,
            self.metrics, nscols=self.string_columns,
        )
        self._runs.append(run)
        self.metrics.runs_spilled += 1
        return run

    def cut(self, ts):
        """Emit everything with key <= ``ts`` (None = everything), sorted.

        Returns ``(keys, cols, objs, scols)``.  Spilled runs stream back
        with sequential block reads in creation order; exhausted run
        files are deleted on the spot.
        """
        parts = []
        sources = 0
        survivors = []
        for run in self._runs:
            run_parts = run.read_upto(ts, self.injector)
            if run_parts:
                sources += 1
                if len(run_parts) == 1:
                    parts.append(run_parts[0])
                else:
                    # Blocks of one run are jointly ascending: a plain
                    # concatenation keeps them a single sorted source.
                    parts.append((
                        np.concatenate([p[0] for p in run_parts]),
                        tuple(
                            np.concatenate([p[1][c] for p in run_parts])
                            for c in range(self.columns)
                        ),
                        [o for p in run_parts for o in p[2]]
                        if self.objects else None,
                        tuple(
                            StringColumn.concat(
                                [p[3][c] for p in run_parts]
                            )
                            for c in range(self.string_columns)
                        ),
                    ))
            if ts is None or run.exhausted:
                run.delete()
            else:
                survivors.append(run)
        self._runs = survivors
        mem_parts = []
        kept = []
        rows = 0
        sbytes = 0
        for keys, cols, objs, scols in self._chunks:
            split = int(keys.size) if ts is None else int(
                np.searchsorted(keys, ts, side="right")
            )
            if split:
                mem_parts.append((
                    keys[:split],
                    tuple(col[:split] for col in cols),
                    objs[:split] if objs is not None else None,
                    tuple(col.slice(0, split) for col in scols),
                ))
            if split < keys.size:
                kept_scols = tuple(
                    col.slice(split, len(col)) for col in scols
                )
                kept.append((
                    keys[split:],
                    tuple(col[split:] for col in cols),
                    objs[split:] if objs is not None else None,
                    kept_scols,
                ))
                rows += int(keys.size) - split
                sbytes += sum(col.nbytes for col in kept_scols)
        self._chunks = kept
        self._rows = rows
        self._sbytes = sbytes
        if mem_parts:
            sources += 1
            parts.append(_merge_chunk_list(
                mem_parts, self.columns, self.objects, self.string_columns
            ))
        if parts:
            self.metrics.merges += 1
            self.metrics.note_fan_in(sources)
        self.metrics.note_buffered(self.buffered_bytes)
        return _kway_merge(
            parts, self.columns, self.objects, self.string_columns
        )

    def close(self):
        """Delete every remaining run file and release the directory."""
        for run in self._runs:
            run.delete()
        self._runs = []
        self._chunks = []
        self._rows = 0
        self._sbytes = 0
        if self._owns_dir:
            self.directory.cleanup()


class ExternalColumnarSorter:
    """Bounded-memory drop-in for ``ColumnarImpatienceSorter``.

    Same API and byte-identical output (see module docstring for the
    stability argument); buffered bytes are capped at ``budget_bytes``
    with cold runs spilling to disk.
    """

    def __init__(self, budget_bytes, late_policy=LatePolicy.DROP,
                 columns=0, spill_dir=None, injector=None,
                 string_columns=0):
        if columns < 0:
            raise ValueError("columns must be >= 0")
        if string_columns < 0:
            raise ValueError("string_columns must be >= 0")
        self.stats = SorterStats()
        self.late = LateEventTracker(late_policy)
        self.columns = int(columns)
        self.string_columns = int(string_columns)
        self.pool = ExternalRunPool(
            budget_bytes, columns=self.columns, spill_dir=spill_dir,
            injector=injector, string_columns=self.string_columns,
        )
        self._watermark = _NEG_INF
        self._has_watermark = False

    @property
    def run_count(self):
        """Number of live spilled runs on disk."""
        return self.pool.run_count

    @property
    def buffered(self):
        """Events currently resident in memory (spilled ones excluded)."""
        return self.pool.buffered_rows

    @property
    def watermark(self):
        return self._watermark

    @property
    def memory_budget(self):
        return self.pool.budget

    def attach_injector(self, injector):
        self.pool.injector = injector

    def spill_doc(self):
        return self.pool.metrics.as_dict()

    def insert_batch(self, values, columns=(), string_columns=()):
        """Ingest one arrival-order batch of timestamps (+ columns)."""
        arr = np.asarray(values, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("insert_batch expects a 1-D array")
        if len(columns) != self.columns:
            raise ValueError(
                f"expected {self.columns} payload columns, "
                f"got {len(columns)}"
            )
        if len(string_columns) != self.string_columns:
            raise ValueError(
                f"expected {self.string_columns} string columns, "
                f"got {len(string_columns)}"
            )
        cols = tuple(np.asarray(col, dtype=np.int64) for col in columns)
        if any(col.shape != arr.shape for col in cols):
            raise ValueError("payload columns must parallel the timestamps")
        scols = tuple(
            col if isinstance(col, StringColumn)
            else StringColumn.from_values(col)
            for col in string_columns
        )
        if any(len(col) != arr.size for col in scols):
            raise ValueError("string columns must parallel the timestamps")
        if arr.size == 0:
            return 0
        if self._has_watermark:
            late_mask = arr <= self._watermark
            n_late = int(late_mask.sum())
            if n_late:
                if self.late.policy is LatePolicy.ADJUST:
                    arr = arr.copy()
                    for _ in range(n_late):
                        self.late.admit(None, self._watermark)
                    arr[late_mask] = self._watermark
                else:
                    # DROP counts each; RAISE raises on the first.
                    for value in arr[late_mask][:1]:
                        self.late.admit(int(value), self._watermark)
                    for _ in range(n_late - 1):
                        self.late.admit(None, self._watermark)
                    keep = ~late_mask
                    arr = arr[keep]
                    cols = tuple(col[keep] for col in cols)
                    scols = tuple(col.filter(keep) for col in scols)
                    if arr.size == 0:
                        return 0
        if not _is_ascending(arr):
            order = np.argsort(arr, kind="stable")
            arr = arr[order]
            cols = tuple(col[order] for col in cols)
            scols = tuple(col.take(order) for col in scols)
        self.pool.insert_sorted(arr, cols, scols=scols)
        self.stats.inserted += int(arr.size)
        self.stats.runs_created = self.pool.metrics.runs_spilled
        self.stats.note_buffered()
        return int(arr.size)

    def on_punctuation(self, timestamp):
        """Cut and return every buffered value <= ``timestamp``, sorted."""
        if self._has_watermark and timestamp < self._watermark:
            raise PunctuationOrderError(timestamp, self._watermark)
        self._watermark = timestamp
        self._has_watermark = True
        return self._emit(self.pool.cut(timestamp))

    def flush(self):
        """Return everything still buffered, sorted (end-of-stream)."""
        return self._emit(self.pool.cut(None))

    def _emit(self, cut):
        merged, cols, _, scols = cut
        if merged.size:
            self.stats.merges += 1
            self.stats.merge_events += int(merged.size)
        self.stats.emitted += int(merged.size)
        self.stats.runs_removed = (
            self.pool.metrics.runs_spilled - self.pool.run_count
        )
        self.stats.sample_runs(self.pool.run_count)
        if self.string_columns:
            return merged, cols, scols
        if self.columns:
            return merged, cols
        return merged

    def close(self):
        self.pool.close()


class ExternalImpatienceSorter:
    """Scalar bounded-memory sorter with the ``ImpatienceSorter`` API.

    Keys must be integers (they are stored as packed int64 columns on
    disk).  Keyless sorters round-trip bare values; keyed sorters carry
    the original items in a pickled object column alongside the keys.
    Only the keyless form is checkpointable, mirroring the in-memory
    sorter's contract.
    """

    def __init__(self, budget_bytes, key=None, late_policy=LatePolicy.DROP,
                 spill_dir=None, quarantine=None, injector=None):
        self.stats = SorterStats()
        self.late = LateEventTracker(late_policy, quarantine=quarantine)
        self._key = key
        self.pool = ExternalRunPool(
            budget_bytes, columns=0, objects=key is not None,
            spill_dir=spill_dir, injector=injector,
        )
        self._pending_keys = []
        self._pending_items = [] if key is not None else None
        self._watermark = _NEG_INF
        self._has_watermark = False

    @property
    def keyed(self):
        return self._key is not None

    @property
    def buffered(self):
        return self.pool.buffered_rows + len(self._pending_keys)

    @property
    def run_count(self):
        return self.pool.run_count

    @property
    def watermark(self):
        return self._watermark

    @property
    def memory_budget(self):
        return self.pool.budget

    def attach_injector(self, injector):
        self.pool.injector = injector

    def spill_doc(self):
        return self.pool.metrics.as_dict()

    def insert(self, item):
        key = self._key(item) if self._key is not None else item
        if isinstance(key, bool) or not isinstance(key, (int, np.integer)):
            raise TypeError(
                f"external sorter requires integer sync keys, "
                f"got {key!r}"
            )
        key = int(key)
        if self._has_watermark and key <= self._watermark:
            admitted = self.late.admit(key, self._watermark)
            if admitted is None:
                return False
            key = int(admitted)
            if self._key is None:
                item = key
        self._pending_keys.append(key)
        if self._pending_items is not None:
            self._pending_items.append(item)
        self.stats.inserted += 1
        self.stats.note_buffered()
        pending_bytes = len(self._pending_keys) * self.pool.bytes_per_row
        if pending_bytes + self.pool.buffered_bytes >= self.pool.budget:
            self._flush_pending()
        return True

    def extend(self, values):
        for value in values:
            self.insert(value)

    def _flush_pending(self):
        if not self._pending_keys:
            return
        keys = np.asarray(self._pending_keys, dtype=np.int64)
        objs = None
        if self._pending_items is not None:
            objs = list(self._pending_items)
            self._pending_items.clear()
        self._pending_keys.clear()
        if not _is_ascending(keys):
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            if objs is not None:
                objs = [objs[i] for i in order]
        self.pool.insert_sorted(keys, (), objs)
        self.stats.runs_created = self.pool.metrics.runs_spilled

    def on_punctuation(self, timestamp):
        if self._has_watermark and timestamp < self._watermark:
            raise PunctuationOrderError(timestamp, self._watermark)
        self._flush_pending()
        self._watermark = timestamp
        self._has_watermark = True
        return self._emit(self.pool.cut(timestamp))

    def flush(self):
        self._flush_pending()
        return self._emit(self.pool.cut(None))

    def _emit(self, cut):
        keys, _, objs, _ = cut
        if keys.size:
            self.stats.merges += 1
            self.stats.merge_events += int(keys.size)
        self.stats.emitted += int(keys.size)
        self.stats.runs_removed = (
            self.pool.metrics.runs_spilled - self.pool.run_count
        )
        self.stats.sample_runs(self.pool.run_count)
        if self._key is not None:
            return objs
        return keys.tolist()

    def close(self):
        self.pool.close()
