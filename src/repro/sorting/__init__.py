"""Baseline sorting algorithms and the generic incremental adapter."""

from repro.sorting.external import (
    ExternalColumnarSorter,
    ExternalImpatienceSorter,
    ExternalRunPool,
    LoserTree,
    SpillDirectory,
    SpillMetrics,
    parse_memory_budget,
)
from repro.sorting.heapsort import IncrementalHeapSorter, heapsort
from repro.sorting.incremental import BufferedIncrementalSorter
from repro.sorting.insertion import binary_insertion_sort
from repro.sorting.kslack import KSlackTime, KSlackTuples
from repro.sorting.natural_merge import natural_merge_sort
from repro.sorting.quicksort import quicksort
from repro.sorting.registry import (
    OFFLINE_SORTS,
    ONLINE_SORTERS,
    make_online_sorter,
    offline_sort,
)
from repro.sorting.timsort import timsort

__all__ = [
    "BufferedIncrementalSorter",
    "ExternalColumnarSorter",
    "ExternalImpatienceSorter",
    "ExternalRunPool",
    "IncrementalHeapSorter",
    "KSlackTime",
    "KSlackTuples",
    "LoserTree",
    "OFFLINE_SORTS",
    "ONLINE_SORTERS",
    "SpillDirectory",
    "SpillMetrics",
    "binary_insertion_sort",
    "heapsort",
    "make_online_sorter",
    "natural_merge_sort",
    "offline_sort",
    "parse_memory_budget",
    "quicksort",
    "timsort",
]
