"""Baseline sorting algorithms and the generic incremental adapter."""

from repro.sorting.heapsort import IncrementalHeapSorter, heapsort
from repro.sorting.incremental import BufferedIncrementalSorter
from repro.sorting.insertion import binary_insertion_sort
from repro.sorting.kslack import KSlackTime, KSlackTuples
from repro.sorting.natural_merge import natural_merge_sort
from repro.sorting.quicksort import quicksort
from repro.sorting.registry import (
    OFFLINE_SORTS,
    ONLINE_SORTERS,
    make_online_sorter,
    offline_sort,
)
from repro.sorting.timsort import timsort

__all__ = [
    "BufferedIncrementalSorter",
    "IncrementalHeapSorter",
    "KSlackTime",
    "KSlackTuples",
    "OFFLINE_SORTS",
    "ONLINE_SORTERS",
    "binary_insertion_sort",
    "heapsort",
    "make_online_sorter",
    "natural_merge_sort",
    "offline_sort",
    "quicksort",
    "timsort",
]
