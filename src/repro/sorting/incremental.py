"""Generic incremental-sorting adapter (paper Section VI-B).

The paper's evaluation turns each offline baseline (Patience, Quicksort,
Timsort) into an online sorter with one general recipe:

    "we maintain a sorted buffer and an unsorted buffer.  Newly ingested
    out-of-order events are added into the unsorted buffer.  On receiving a
    punctuation, we first sort all events in the unsorted buffer using the
    specified sorting algorithm, and merge these events into the sorted
    buffer. [...] Finally, we perform a binary search to find the position
    of the punctuation timestamp in the sorted buffer, and outputs all
    events whose timestamps are less than the punctuation timestamp."

Each event is therefore sorted exactly once but may be *rewritten* many
times by successive whole-buffer merges — the cost that makes these
baselines collapse at high punctuation frequency in Figure 8, and exactly
what Impatience sort's head-run cutting avoids.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.core.errors import PunctuationOrderError
from repro.core.late import LateEventTracker, LatePolicy
from repro.core.merge import merge_two
from repro.core.stats import SorterStats

__all__ = ["BufferedIncrementalSorter"]

_NEG_INF = float("-inf")


class BufferedIncrementalSorter:
    """Wrap an offline sort function into the online-sorter protocol.

    Parameters
    ----------
    sort_fn:
        Offline sorter with signature ``sort_fn(items, key=...) -> list``
        (e.g. :func:`repro.sorting.quicksort.quicksort`).
    key:
        Sort-key extractor applied to each inserted item.
    late_policy:
        Fate of items at or before the last punctuation.
    """

    def __init__(self, sort_fn, key=None, late_policy=LatePolicy.DROP):
        self.sort_fn = sort_fn
        self.key = key
        self.stats = SorterStats()
        self.late = LateEventTracker(late_policy)
        self._keyless = key is None
        #: arrival-order buffer: raw values (keyless) or (key, item) pairs.
        self._unsorted = []
        self._sorted_keys = []
        # Keyless mode shares one list between keys and items.
        self._sorted_items = self._sorted_keys if self._keyless else []
        self._start = 0  # live offset into the sorted buffer
        self._watermark = _NEG_INF
        self._has_watermark = False

    @property
    def buffered(self) -> int:
        """Items currently held across both buffers."""
        return len(self._unsorted) + len(self._sorted_keys) - self._start

    @property
    def watermark(self):
        """Timestamp of the last punctuation, or ``-inf`` before the first."""
        return self._watermark

    def insert(self, item):
        """Append one item to the unsorted buffer (O(1))."""
        key = item if self.key is None else self.key(item)
        if self._has_watermark and key <= self._watermark:
            key = self.late.admit(key, self._watermark)
            if key is None:
                return False
            if self.key is None:
                item = key  # bare timestamps: adjusting the key IS the item
        self._unsorted.append(key if self._keyless else (key, item))
        self.stats.inserted += 1
        self.stats.note_buffered()
        return True

    def extend(self, items):
        """Insert every item from an iterable."""
        for item in items:
            self.insert(item)

    def on_punctuation(self, timestamp):
        """Sort-merge the unsorted buffer, then emit the prefix <= ts."""
        if self._has_watermark and timestamp < self._watermark:
            raise PunctuationOrderError(timestamp, self._watermark)
        self._watermark = timestamp
        self._has_watermark = True
        self._absorb_unsorted()
        end = bisect_right(self._sorted_keys, timestamp, self._start)
        out = self._sorted_items[self._start:end]
        self._start = end
        self._maybe_compact()
        self.stats.emitted += len(out)
        return out

    def flush(self):
        """Emit everything remaining, in order (end-of-stream)."""
        self._absorb_unsorted()
        out = self._sorted_items[self._start:]
        self._sorted_keys = []
        self._sorted_items = self._sorted_keys if self._keyless else []
        self._start = 0
        self.stats.emitted += len(out)
        return out

    def _absorb_unsorted(self):
        if not self._unsorted:
            return
        # Sort the fresh batch by key once, with the wrapped algorithm.
        if self._keyless:
            batch = self.sort_fn(self._unsorted)
            batch_keys = batch_items = batch
        else:
            pairs = self.sort_fn(self._unsorted, key=_pair_key)
            batch_keys = [pair[0] for pair in pairs]
            batch_items = [pair[1] for pair in pairs]
        self._unsorted = []
        if self._start:
            self._maybe_compact(force=True)
        merged_keys, merged_items = merge_two(
            (self._sorted_keys, self._sorted_items),
            (batch_keys, batch_items),
            self.stats,
        )
        self._sorted_keys = merged_keys
        self._sorted_items = merged_items

    def _maybe_compact(self, force=False):
        start = self._start
        if start and (force or start * 2 > len(self._sorted_keys)):
            if self._sorted_items is not self._sorted_keys:
                del self._sorted_items[:start]
            del self._sorted_keys[:start]
            self._start = 0


def _pair_key(pair):
    return pair[0]
