"""Heapsort baseline — offline and natively incremental (priority queue).

Heapsort is the disorder-handling strategy of first-generation SPEs such as
StreamInsight: keep every buffered event in a min-heap ordered by event
time, and on a punctuation pop until the heap head exceeds the punctuation.
It supports incremental sorting natively but is *not* adaptive — the paper's
Figures 7 and 8 show it as a flat, slow line regardless of input sortedness.

The offline :func:`heapsort` builds the heap bottom-up (Floyd) and pops
everything, on hand-rolled sift routines rather than :mod:`heapq`, so all
baselines in this repository are measured as from-scratch implementations.
"""

from __future__ import annotations

from repro.core.errors import PunctuationOrderError
from repro.core.late import LateEventTracker, LatePolicy
from repro.core.stats import SorterStats

__all__ = ["heapsort", "IncrementalHeapSorter"]

_NEG_INF = float("-inf")


def _sift_down(keys, items, start, end):
    """Restore the max-heap property for the subtree rooted at ``start``."""
    root = start
    key = keys[root]
    item = items[root]
    child = 2 * root + 1
    while child <= end:
        if child + 1 <= end and keys[child] < keys[child + 1]:
            child += 1
        if keys[child] <= key:
            break
        keys[root] = keys[child]
        items[root] = items[child]
        root = child
        child = 2 * root + 1
    keys[root] = key
    items[root] = item


def _sift_down_single(keys, start, end):
    """Keyless variant of :func:`_sift_down` over one array."""
    root = start
    key = keys[root]
    child = 2 * root + 1
    while child <= end:
        if child + 1 <= end and keys[child] < keys[child + 1]:
            child += 1
        if keys[child] <= key:
            break
        keys[root] = keys[child]
        root = child
        child = 2 * root + 1
    keys[root] = key


def heapsort(items, key=None):
    """Return a new list of ``items`` sorted ascending by ``key``.

    Classic in-place max-heap sort: heapify, then repeatedly swap the root
    to the shrinking tail.  With ``key=None`` the values are their own
    keys and a single array is sorted (keyless mode).
    """
    items = list(items)
    n = len(items)
    if key is None:
        for start in range(n // 2 - 1, -1, -1):
            _sift_down_single(items, start, n - 1)
        for end in range(n - 1, 0, -1):
            items[0], items[end] = items[end], items[0]
            _sift_down_single(items, 0, end - 1)
        return items
    keys = [key(item) for item in items]
    for start in range(n // 2 - 1, -1, -1):
        _sift_down(keys, items, start, n - 1)
    for end in range(n - 1, 0, -1):
        keys[0], keys[end] = keys[end], keys[0]
        items[0], items[end] = items[end], items[0]
        _sift_down(keys, items, 0, end - 1)
    return items


class IncrementalHeapSorter:
    """Min-heap online sorter: the priority-queue strategy of classic SPEs.

    Matches the online-sorter protocol of
    :class:`repro.core.impatience.ImpatienceSorter`: ``insert``,
    ``on_punctuation``, ``flush``, ``buffered``, ``stats``, ``late``.
    Heap entries are ``(key, seq, item)`` with a monotone sequence number so
    that ties never compare items and equal keys pop in arrival order.
    """

    def __init__(self, key=None, late_policy=LatePolicy.DROP):
        self.key = key
        self.stats = SorterStats()
        self.late = LateEventTracker(late_policy)
        self._heap = []
        self._seq = 0
        self._keyless = key is None  # heap entries are the raw values
        self._watermark = _NEG_INF
        self._has_watermark = False

    @property
    def buffered(self) -> int:
        """Events currently held in the heap."""
        return len(self._heap)

    @property
    def watermark(self):
        """Timestamp of the last punctuation, or ``-inf`` before the first."""
        return self._watermark

    def insert(self, item):
        """Push one item; late items go through the late policy."""
        key = item if self.key is None else self.key(item)
        if self._has_watermark and key <= self._watermark:
            key = self.late.admit(key, self._watermark)
            if key is None:
                return False
            if self.key is None:
                item = key  # bare timestamps: adjusting the key IS the item
        heap = self._heap
        if self._keyless:
            heap.append(key)
        else:
            heap.append((key, self._seq, item))
            self._seq += 1
        self._sift_up(len(heap) - 1)
        self.stats.inserted += 1
        self.stats.note_buffered()
        return True

    def extend(self, items):
        """Insert every item from an iterable."""
        for item in items:
            self.insert(item)

    def on_punctuation(self, timestamp):
        """Pop and return all items with key <= ``timestamp``, in order."""
        if self._has_watermark and timestamp < self._watermark:
            raise PunctuationOrderError(timestamp, self._watermark)
        self._watermark = timestamp
        self._has_watermark = True
        out = []
        heap = self._heap
        if self._keyless:
            while heap and heap[0] <= timestamp:
                out.append(self._pop())
        else:
            while heap and heap[0][0] <= timestamp:
                out.append(self._pop())
        self.stats.emitted += len(out)
        return out

    def flush(self):
        """Pop everything remaining, in order (end-of-stream)."""
        out = []
        while self._heap:
            out.append(self._pop())
        self.stats.emitted += len(out)
        return out

    def _sift_up(self, pos):
        heap = self._heap
        entry = heap[pos]
        while pos > 0:
            parent = (pos - 1) // 2
            if heap[parent] <= entry:
                break
            heap[pos] = heap[parent]
            pos = parent
        heap[pos] = entry

    def _pop(self):
        heap = self._heap
        keyless = self._keyless
        last = heap.pop()
        if not heap:
            return last if keyless else last[2]
        top = heap[0]
        # Sift the relocated last entry down from the root.
        pos = 0
        n = len(heap)
        child = 1
        while child < n:
            if child + 1 < n and heap[child + 1] < heap[child]:
                child += 1
            if last <= heap[child]:
                break
            heap[pos] = heap[child]
            pos = child
            child = 2 * pos + 1
        heap[pos] = last
        return top if keyless else top[2]
