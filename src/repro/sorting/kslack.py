"""K-slack reordering — the first-generation disorder baseline (§VII).

    "One initial solution to handle disorder was k-slack, where the stream
    is assumed to be disordered by at most k tuples or time units, with
    reordering performed before stream processing.  Such an approach can
    lead to potentially uncontrolled latency."

K-slack holds each event until the high watermark has advanced ``k``
*time units* past it (``KSlackTime``) or until ``k`` further *tuples*
have arrived (``KSlackTuples``), then releases events in timestamp order.
Unlike the punctuation-driven sorters, emission is driven purely by the
slack bound, so output latency is k by assumption — events more than k
late are emitted out of order or dropped, depending on the late policy.

Both variants implement the online-sorter protocol so they can slot into
the ``Sort`` operator and the ablation benchmarks.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.core.errors import PunctuationOrderError
from repro.core.late import LateEventTracker, LatePolicy
from repro.core.stats import SorterStats

__all__ = ["KSlackTime", "KSlackTuples"]

_NEG_INF = float("-inf")


class _KSlackBase:
    """Shared heap machinery: buffer events, release when slack expires."""

    def __init__(self, key=None, late_policy=LatePolicy.DROP):
        self.key = key
        self.stats = SorterStats()
        self.late = LateEventTracker(late_policy)
        self._heap = []
        self._seq = 0
        self._emitted_up_to = _NEG_INF
        self._watermark = _NEG_INF
        self._has_watermark = False

    @property
    def buffered(self) -> int:
        """Events currently held in the slack buffer."""
        return len(self._heap)

    @property
    def watermark(self):
        """Timestamp of the last punctuation observed (``-inf`` if none)."""
        return self._watermark

    def insert(self, item):
        """Buffer one event; releases anything whose slack has expired."""
        key = item if self.key is None else self.key(item)
        if key <= self._emitted_up_to:
            # Out of the slack bound: the event would regress the output.
            key = self.late.admit(key, self._emitted_up_to)
            if key is None:
                return False
            if self.key is None:
                item = key
        heappush(self._heap, (key, self._seq, item))
        self._seq += 1
        self.stats.inserted += 1
        self.stats.note_buffered()
        self._note(key)
        return True

    def extend(self, items):
        """Insert every item from an iterable."""
        for item in items:
            self.insert(item)

    def drain_ready(self):
        """Events whose slack expired since the last call, in order."""
        out = []
        bound = self._release_bound()
        heap = self._heap
        while heap and heap[0][0] <= bound:
            key, _, item = heappop(heap)
            out.append(item)
            if key > self._emitted_up_to:
                self._emitted_up_to = key
        self.stats.emitted += len(out)
        return out

    def on_punctuation(self, timestamp):
        """Punctuations only advance the clock; emission is slack-driven."""
        if self._has_watermark and timestamp < self._watermark:
            raise PunctuationOrderError(timestamp, self._watermark)
        self._watermark = timestamp
        self._has_watermark = True
        return self.drain_ready()

    def flush(self):
        """Emit everything remaining, in order (end-of-stream)."""
        out = []
        heap = self._heap
        while heap:
            out.append(heappop(heap)[2])
        self.stats.emitted += len(out)
        return out

    # -- subclass hooks -----------------------------------------------------

    def _note(self, key):
        raise NotImplementedError

    def _release_bound(self):
        raise NotImplementedError


class KSlackTime(_KSlackBase):
    """Release an event once the event-time high watermark passes it by k."""

    def __init__(self, k, key=None, late_policy=LatePolicy.DROP):
        if k < 0:
            raise ValueError("k must be non-negative")
        super().__init__(key, late_policy)
        self.k = k
        self._high = _NEG_INF

    def _note(self, key):
        if key > self._high:
            self._high = key

    def _release_bound(self):
        high = max(self._high, self._watermark)
        return high - self.k if high != _NEG_INF else _NEG_INF


class KSlackTuples(_KSlackBase):
    """Release an event once k further tuples have arrived after it."""

    def __init__(self, k, key=None, late_policy=LatePolicy.DROP):
        if k < 0:
            raise ValueError("k must be non-negative")
        super().__init__(key, late_policy)
        self.k = k

    def _note(self, key):
        pass

    def _release_bound(self):
        # Emit while more than k tuples are buffered: the heap head has
        # been overtaken by at least k arrivals.
        return float("inf") if len(self._heap) > self.k else _NEG_INF

    def drain_ready(self):
        out = []
        heap = self._heap
        while len(heap) > self.k:
            key, _, item = heappop(heap)
            out.append(item)
            if key > self._emitted_up_to:
                self._emitted_up_to = key
        self.stats.emitted += len(out)
        return out
