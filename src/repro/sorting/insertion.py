"""Binary insertion sort on parallel key/item lists.

Used as the small-partition finisher inside :mod:`repro.sorting.quicksort`
and as the run extender inside :mod:`repro.sorting.timsort` — the same roles
it plays in production sort implementations.  Pass ``items=None`` for the
keyless single-array mode (items are their own keys).
"""

from __future__ import annotations

from bisect import bisect_right

__all__ = ["binary_insertion_sort"]


def binary_insertion_sort(keys, items=None, lo=0, hi=None, start=None):
    """Stably sort ``keys[lo:hi]`` (and ``items`` in parallel) in place.

    ``start`` may point at the first unsorted element when a prefix of the
    range is already known sorted (Timsort's natural-run extension); it
    defaults to ``lo + 1``.  ``items=None`` (or ``items is keys``) sorts
    the single ``keys`` array alone.
    """
    if hi is None:
        hi = len(keys)
    if start is None:
        start = lo + 1
    if items is None or items is keys:
        for i in range(max(start, lo + 1), hi):
            key = keys[i]
            pos = bisect_right(keys, key, lo, i)
            if pos != i:
                keys[pos + 1:i + 1] = keys[pos:i]
                keys[pos] = key
        return
    for i in range(max(start, lo + 1), hi):
        key = keys[i]
        item = items[i]
        pos = bisect_right(keys, key, lo, i)
        if pos != i:
            keys[pos + 1:i + 1] = keys[pos:i]
            items[pos + 1:i + 1] = items[pos:i]
            keys[pos] = key
            items[pos] = item
