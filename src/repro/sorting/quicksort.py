"""Quicksort baseline (Section VI-B of the paper).

Median-of-three pivot selection with Hoare partitioning, an explicit work
stack (no recursion-depth hazard), and binary insertion sort for small
partitions.  As the paper observes — citing Brodal, Fagerberg & Moruz —
this flavour of Quicksort is incidentally adaptive to presorted inputs:
median-of-three picks near-perfect pivots on nearly sorted data and the
Hoare scan performs no swaps at all on an already-ordered range.
"""

from __future__ import annotations

from repro.sorting.insertion import binary_insertion_sort

__all__ = ["quicksort", "quicksort_pairs"]

#: Partitions at or below this size are finished by insertion sort.
_SMALL = 24


def quicksort_pairs(keys, items=None):
    """Sort parallel ``keys``/``items`` lists in place by key.

    Not stable (standard for Quicksort).  ``items=None`` sorts the single
    ``keys`` array alone (keyless mode).  Exposed separately so that the
    incremental adapter can sort key-decorated buffers without re-deriving
    keys.
    """
    if len(keys) < 2:
        return keys, items
    stack = [(0, len(keys) - 1)]
    while stack:
        lo, hi = stack.pop()
        while hi - lo >= _SMALL:
            pivot = _median_of_three(keys, lo, hi)
            split = _hoare_partition(keys, items, lo, hi, pivot)
            # Keep iterating on the smaller side; push the larger, so the
            # stack stays O(log n).
            if split - lo < hi - split:
                stack.append((split + 1, hi))
                hi = split
            else:
                stack.append((lo, split))
                lo = split + 1
        binary_insertion_sort(keys, items, lo, hi + 1)
    return keys, items


def _median_of_three(keys, lo, hi):
    """Pivot value: median of the first, middle and last keys."""
    mid = (lo + hi) // 2
    a, b, c = keys[lo], keys[mid], keys[hi]
    if a < b:
        if b < c:
            return b
        return a if a >= c else c
    if a < c:
        return a
    return b if b >= c else c


def _hoare_partition(keys, items, lo, hi, pivot):
    """Hoare partition around ``pivot``: returns split index ``j`` with
    keys[lo:j+1] <= pivot <= keys[j+1:hi+1] (both sides non-empty).

    Performs zero swaps on an already sorted range and splits runs of
    equal keys evenly, so nearly-sorted and low-cardinality inputs (the
    windowed-timestamp case) both stay O(n log n).
    """
    i = lo - 1
    j = hi + 1
    if items is None:
        while True:
            i += 1
            while keys[i] < pivot:
                i += 1
            j -= 1
            while keys[j] > pivot:
                j -= 1
            if i >= j:
                return j
            keys[i], keys[j] = keys[j], keys[i]
    while True:
        i += 1
        while keys[i] < pivot:
            i += 1
        j -= 1
        while keys[j] > pivot:
            j -= 1
        if i >= j:
            return j
        keys[i], keys[j] = keys[j], keys[i]
        items[i], items[j] = items[j], items[i]


def quicksort(items, key=None):
    """Return a new list of ``items`` sorted by ``key`` with Quicksort.

    With ``key=None`` the values are their own keys and a single array is
    sorted in place (keyless mode, matching every other sorter here).
    """
    items = list(items)
    if key is None:
        quicksort_pairs(items, None)
        return items
    keys = [key(item) for item in items]
    quicksort_pairs(keys, items)
    return items
