"""Timsort baseline, implemented from scratch (Section VI-B).

Timsort — Python's own standard sort — detects natural ascending runs
(reversing strictly descending ones), extends short runs to ``minrun`` with
binary insertion sort, and merges runs off a stack whose size invariants
keep merges balanced.  This implementation follows Tim Peters' design
(run detection, minrun computation, the A > B+C / B > C stack invariants)
but omits galloping mode; it is deliberately independent of ``list.sort``
so the paper's baseline comparison measures our own code on every
algorithm equally.
"""

from __future__ import annotations

from repro.core.merge import merge_two
from repro.sorting.insertion import binary_insertion_sort

__all__ = ["timsort", "count_natural_runs_with_reversals"]

_MIN_MERGE = 32


def _minrun(n: int) -> int:
    """Tim Peters' minrun: n scaled into [16, 32] so runs merge evenly."""
    r = 0
    while n >= _MIN_MERGE:
        r |= n & 1
        n >>= 1
    return n + r


def _next_run(keys, items, lo, hi, minrun):
    """Identify (and normalize) the run starting at ``lo``.

    Detects a maximal ascending run, or a *strictly* descending run which is
    reversed in place (strictness preserves stability).  Runs shorter than
    ``minrun`` are extended with binary insertion sort.  Returns the run's
    exclusive end index.  ``items=None`` is the keyless single-array mode.
    """
    end = lo + 1
    if end == hi:
        return end
    if keys[end] < keys[lo]:
        while end < hi and keys[end] < keys[end - 1]:
            end += 1
        keys[lo:end] = keys[lo:end][::-1]
        if items is not None:
            items[lo:end] = items[lo:end][::-1]
    else:
        while end < hi and keys[end] >= keys[end - 1]:
            end += 1
    if end - lo < minrun:
        forced = min(lo + minrun, hi)
        binary_insertion_sort(keys, items, lo, forced, start=end)
        end = forced
    return end


def _merge_at(keys, items, stack, i):
    """Merge stack runs i and i+1 (each a ``(start, length)`` pair)."""
    start_a, len_a = stack[i]
    start_b, len_b = stack[i + 1]
    key_slice_a = keys[start_a:start_a + len_a]
    key_slice_b = keys[start_b:start_b + len_b]
    if items is None:
        merged_keys, _ = merge_two(
            (key_slice_a, key_slice_a), (key_slice_b, key_slice_b)
        )
        keys[start_a:start_b + len_b] = merged_keys
    else:
        merged_keys, merged_items = merge_two(
            (key_slice_a, items[start_a:start_a + len_a]),
            (key_slice_b, items[start_b:start_b + len_b]),
        )
        keys[start_a:start_b + len_b] = merged_keys
        items[start_a:start_b + len_b] = merged_items
    stack[i] = (start_a, len_a + len_b)
    del stack[i + 1]


def _collapse(keys, items, stack):
    """Restore the Timsort stack invariants after pushing a run."""
    while len(stack) > 1:
        n = len(stack) - 2
        if n > 0 and stack[n - 1][1] <= stack[n][1] + stack[n + 1][1]:
            if stack[n - 1][1] < stack[n + 1][1]:
                _merge_at(keys, items, stack, n - 1)
            else:
                _merge_at(keys, items, stack, n)
        elif stack[n][1] <= stack[n + 1][1]:
            _merge_at(keys, items, stack, n)
        else:
            break


def timsort(items, key=None):
    """Return a new list of ``items`` stably sorted ascending by ``key``.

    With ``key=None`` the values are their own keys and a single array is
    sorted (keyless mode, matching every other sorter here).
    """
    items = list(items)
    n = len(items)
    if n < 2:
        return items
    if key is None:
        keys, parallel = items, None
    else:
        keys, parallel = [key(item) for item in items], items
    if n < _MIN_MERGE:
        binary_insertion_sort(keys, parallel, 0, n)
        return items
    minrun = _minrun(n)
    stack = []
    lo = 0
    while lo < n:
        end = _next_run(keys, parallel, lo, n, minrun)
        stack.append((lo, end - lo))
        _collapse(keys, parallel, stack)
        lo = end
    while len(stack) > 1:
        _merge_at(keys, parallel, stack, len(stack) - 2)
    return items


def count_natural_runs_with_reversals(keys) -> int:
    """Number of runs Timsort would detect (descending runs count as one).

    Exposed for tests and the workload-analysis example; distinct from the
    plain ascending-runs disorder measure in :mod:`repro.metrics.disorder`.
    """
    n = len(keys)
    if n == 0:
        return 0
    runs = 1
    i = 1
    while i < n:
        if keys[i] < keys[i - 1]:
            while i < n and keys[i] < keys[i - 1]:
                i += 1
        else:
            while i < n and keys[i] >= keys[i - 1]:
                i += 1
        if i < n:
            runs += 1
            i += 1
    return runs
