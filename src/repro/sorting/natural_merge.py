"""Natural merge sort — the classic adaptive baseline from the survey.

Where Timsort detects runs lazily and merges off an invariant stack,
natural merge sort is the textbook adaptive algorithm the survey the
paper cites analyzes: split the input into its natural runs (reversing
strictly descending ones), then merge adjacent runs bottom-up in rounds.
It is ``O(n log(runs))`` — optimally adaptive in the Runs measure — but,
like the other offline baselines, not incremental; it goes online only
through the generic buffered adapter.

Included as an additional Figure 7 comparator: it isolates how much of
Timsort's adaptivity comes from run detection alone (natural merge)
versus run *management* (minrun balancing, the merge stack).
"""

from __future__ import annotations

from repro.core.merge import merge_two

__all__ = ["natural_merge_sort"]


def _natural_runs(keys, items):
    """Split into maximal runs; strictly descending runs are reversed."""
    n = len(keys)
    runs = []
    start = 0
    while start < n:
        end = start + 1
        if end < n and keys[end] < keys[start]:
            while end < n and keys[end] < keys[end - 1]:
                end += 1
            run_keys = keys[start:end][::-1]
            run_items = items[start:end][::-1]
        else:
            while end < n and keys[end] >= keys[end - 1]:
                end += 1
            run_keys = keys[start:end]
            run_items = items[start:end]
        runs.append((run_keys, run_items))
        start = end
    return runs


def natural_merge_sort(items, key=None):
    """Return a new list of ``items`` stably sorted ascending by ``key``.

    With ``key=None`` the values are their own keys (keyless mode, like
    every other sorter here — the shared-list merge fast path applies).
    """
    items = list(items)
    if len(items) < 2:
        return items
    if key is None:
        keys = items
    else:
        keys = [key(item) for item in items]
    runs = _natural_runs(keys, items)
    if key is None:
        runs = [(run_keys, run_keys) for run_keys, _ in runs]
    while len(runs) > 1:
        merged = [
            merge_two(runs[i], runs[i + 1])
            for i in range(0, len(runs) - 1, 2)
        ]
        if len(runs) % 2:
            merged.append(runs[-1])
        runs = merged
    return runs[0][1]
