"""Named registry of the sorting algorithms evaluated in the paper.

Figures 7 and 8 compare a fixed cast: Impatience sort (with ablations),
Patience sort, Quicksort, Timsort, and Heapsort.  Benchmarks and tests look
the cast up here by the names used in the paper's figure legends.
"""

from __future__ import annotations

from repro.core.impatience import ImpatienceSorter
from repro.core.late import LatePolicy
from repro.core.patience import PatienceSorter, patience_sort
from repro.sorting.heapsort import IncrementalHeapSorter, heapsort
from repro.sorting.incremental import BufferedIncrementalSorter
from repro.sorting.natural_merge import natural_merge_sort
from repro.sorting.quicksort import quicksort
from repro.sorting.timsort import timsort

__all__ = [
    "OFFLINE_SORTS",
    "offline_sort",
    "make_online_sorter",
    "ONLINE_SORTERS",
]


def _impatience_offline(items, key=None, speculative=True, merge="huffman"):
    """Offline run of Impatience machinery: partition all, merge once."""
    sorter = PatienceSorter(key=key, merge=merge, speculative=speculative)
    sorter.extend(items)
    return sorter.result()


def _impatience_no_hm(items, key=None):
    return _impatience_offline(items, key, speculative=True, merge="pairwise")


def _impatience_no_hm_srs(items, key=None):
    return _impatience_offline(items, key, speculative=False,
                               merge="pairwise")


def _impatience_full(items, key=None):
    return _impatience_offline(items, key, speculative=True, merge="huffman")


#: Offline sorters by paper legend name.  ``impatience-no-hm-srs`` is the
#: Figure 7 ablation that Section VI-B calls "identical to the Patience
#: sort on offline data"; the ``patience`` entry is Patience sort with the
#: best merge schedule, used inside the Figure 8 incremental adapter.
OFFLINE_SORTS = {
    "impatience": _impatience_full,
    "impatience-no-hm": _impatience_no_hm,
    "impatience-no-hm-srs": _impatience_no_hm_srs,
    "patience": patience_sort,
    "quicksort": quicksort,
    "timsort": timsort,
    "naturalmerge": natural_merge_sort,
    "heapsort": heapsort,
}


def offline_sort(name, items, key=None):
    """Sort ``items`` with the named offline algorithm."""
    try:
        fn = OFFLINE_SORTS[name]
    except KeyError:
        raise ValueError(
            f"unknown offline sorter {name!r}; "
            f"expected one of {sorted(OFFLINE_SORTS)}"
        ) from None
    return fn(items, key=key)


def make_online_sorter(name, key=None, late_policy=LatePolicy.DROP):
    """Build an online sorter by paper legend name.

    ``impatience`` variants use the natively incremental
    :class:`~repro.core.impatience.ImpatienceSorter`; ``heapsort`` uses the
    natively incremental priority queue; the remaining offline algorithms
    are adapted through
    :class:`~repro.sorting.incremental.BufferedIncrementalSorter`
    (the paper's generic recipe).
    """
    if name == "impatience":
        return ImpatienceSorter(key=key, late_policy=late_policy)
    if name == "impatience-binary-place":
        # Pre-optimization placement search (pure-Python binary search
        # instead of C bisect over negated tails) — Figure 8 ablation.
        return ImpatienceSorter(
            key=key, late_policy=late_policy, placement="binary"
        )
    if name == "impatience-no-hm":
        return ImpatienceSorter(
            key=key, huffman_merge=False, late_policy=late_policy
        )
    if name == "impatience-no-hm-srs":
        return ImpatienceSorter(
            key=key, huffman_merge=False, speculative=False,
            late_policy=late_policy,
        )
    if name == "heapsort":
        return IncrementalHeapSorter(key=key, late_policy=late_policy)
    if name in ("patience", "quicksort", "timsort", "naturalmerge"):
        return BufferedIncrementalSorter(
            OFFLINE_SORTS[name], key=key, late_policy=late_policy
        )
    raise ValueError(
        f"unknown online sorter {name!r}; expected one of {sorted(ONLINE_SORTERS)}"
    )


#: Online sorter names accepted by :func:`make_online_sorter`.
ONLINE_SORTERS = (
    "impatience",
    "impatience-binary-place",
    "impatience-no-hm",
    "impatience-no-hm-srs",
    "patience",
    "quicksort",
    "timsort",
    "naturalmerge",
    "heapsort",
)
