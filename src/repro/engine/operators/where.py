"""Selection operator (Section IV-A1).

Stateless and order-insensitive: a predicate over events, applied in
arrival order, which is why it is legal on a ``DisorderedStreamable`` and
profitable to push ahead of the sorting operator (Figure 9(a)).
"""

from __future__ import annotations

from repro.engine.operators.base import Operator

__all__ = ["Where"]


class Where(Operator):
    """Keep only events satisfying ``predicate(event)``."""

    def __init__(self, predicate):
        super().__init__()
        self.predicate = predicate
        self.seen = 0
        self.passed = 0

    def on_event(self, event):
        self.seen += 1
        if self.predicate(event):
            self.passed += 1
            self.emit_event(event)

    @property
    def selectivity(self) -> float:
        """Observed pass fraction (1.0 before any input)."""
        return self.passed / self.seen if self.seen else 1.0
