"""Aggregate functions and windowed-aggregate operators.

The aggregate *functions* follow Trill's fold interface — ``initial``,
``accumulate``, ``result`` — and are composed with the windowed aggregate
*operators* that maintain one state per open window (or per window × group)
and emit on punctuation.  That per-window state, rather than buffered raw
events, is precisely the memory advantage the advanced Impatience framework
exploits (Section V-B).

Ordering contract: these operators are order-*sensitive* (they rely on
punctuations to close windows), so they are only reachable from a sorted
``Streamable`` — never from a ``DisorderedStreamable``.
"""

from __future__ import annotations

from repro.engine.event import Event, Punctuation
from repro.engine.operators.base import Operator

_NEG_INF = float("-inf")

__all__ = [
    "Aggregate",
    "Count",
    "Sum",
    "Avg",
    "Min",
    "Max",
    "WindowAggregate",
    "GroupedWindowAggregate",
    "WindowTopK",
]


class Aggregate:
    """Fold interface: subclass and override the three methods."""

    def initial(self):
        """Fresh accumulator state."""
        raise NotImplementedError

    def accumulate(self, state, event):
        """Fold one event into ``state``; returns the new state."""
        raise NotImplementedError

    def result(self, state):
        """Final payload value for a closed window."""
        return state


class Count(Aggregate):
    """Number of events in the window."""

    def initial(self):
        return 0

    def accumulate(self, state, event):
        return state + 1


class Sum(Aggregate):
    """Sum of ``selector(payload)`` over the window."""

    def __init__(self, selector=None):
        self.selector = selector

    def initial(self):
        return 0

    def accumulate(self, state, event):
        value = event.payload if self.selector is None else self.selector(event.payload)
        return state + value


class Avg(Aggregate):
    """Arithmetic mean of ``selector(payload)``; ``None`` on empty windows."""

    def __init__(self, selector=None):
        self.selector = selector

    def initial(self):
        return (0, 0)

    def accumulate(self, state, event):
        value = event.payload if self.selector is None else self.selector(event.payload)
        return (state[0] + value, state[1] + 1)

    def result(self, state):
        total, count = state
        return total / count if count else None


class Min(Aggregate):
    """Minimum of ``selector(payload)`` over the window."""

    def __init__(self, selector=None):
        self.selector = selector

    def initial(self):
        return None

    def accumulate(self, state, event):
        value = event.payload if self.selector is None else self.selector(event.payload)
        return value if state is None or value < state else state


class Max(Aggregate):
    """Maximum of ``selector(payload)`` over the window."""

    def __init__(self, selector=None):
        self.selector = selector

    def initial(self):
        return None

    def accumulate(self, state, event):
        value = event.payload if self.selector is None else self.selector(event.payload)
        return value if state is None or value > state else state


class _WindowedBase(Operator):
    """Shared close-on-punctuation logic for windowed operators.

    Windows are identified by the (sync_time, other_time) pair stamped by
    an upstream window operator.  A punctuation at ``T`` guarantees no more
    events with sync <= T; a window [w, end) can still receive events as
    long as some t > T maps into it, so it closes exactly when
    ``end - 1 <= T``.

    Forwarded punctuations are clamped below the earliest still-open
    window's start: that window will eventually emit at its start time,
    so promising anything at or beyond it would break the output
    contract (the discipline Coalesce/SessionWindow also follow).
    """

    def __init__(self):
        super().__init__()
        self._windows = {}  # window_start -> (window_end, state)
        self._out_watermark = _NEG_INF

    def on_punctuation(self, punctuation):
        self._close(punctuation.timestamp)
        bound = punctuation.timestamp
        if self._windows:
            bound = min(bound, min(self._windows) - 1)
        if bound > self._out_watermark:
            self._out_watermark = bound
            self.emit_punctuation(Punctuation(bound))

    def on_flush(self):
        self._close(None)
        self.emit_flush()

    def _close(self, up_to):
        if not self._windows:
            return
        due = sorted(
            start
            for start, (end, _) in self._windows.items()
            if up_to is None or end - 1 <= up_to
        )
        for start in due:
            end, state = self._windows.pop(start)
            self._emit_window(start, end, state)

    def _emit_window(self, start, end, state):
        raise NotImplementedError


class WindowAggregate(_WindowedBase):
    """One aggregate state per window; emits one result event per window."""

    def __init__(self, aggregate):
        super().__init__()
        self.aggregate = aggregate

    def on_event(self, event):
        start = event.sync_time
        entry = self._windows.get(start)
        if entry is None:
            state = self.aggregate.initial()
            end = event.other_time
        else:
            end, state = entry
        self._windows[start] = (end, self.aggregate.accumulate(state, event))

    def _emit_window(self, start, end, state):
        self.emit_event(Event(start, end, 0, self.aggregate.result(state)))

    def buffered_count(self) -> int:
        return len(self._windows)


class GroupedWindowAggregate(_WindowedBase):
    """Per-window, per-group states; emits one event per (window, group).

    This is the engine's GroupApply-with-aggregate: ``key_fn`` extracts the
    grouping key (default: the event's key field), and each closed window
    emits its groups in key order with the group key stamped on the output
    event — Q2/Q3 of the paper's framework evaluation.
    """

    def __init__(self, aggregate, key_fn=None):
        super().__init__()
        self.aggregate = aggregate
        self.key_fn = key_fn

    def on_event(self, event):
        start = event.sync_time
        key = event.key if self.key_fn is None else self.key_fn(event)
        entry = self._windows.get(start)
        if entry is None:
            groups = {}
            self._windows[start] = (event.other_time, groups)
        else:
            groups = entry[1]
        state = groups.get(key)
        if state is None:
            state = self.aggregate.initial()
        groups[key] = self.aggregate.accumulate(state, event)

    def _emit_window(self, start, end, groups):
        for key in sorted(groups):
            payload = self.aggregate.result(groups[key])
            self.emit_event(Event(start, end, key, payload))

    def buffered_count(self) -> int:
        return sum(len(groups) for _, groups in self._windows.values())


class WindowTopK(_WindowedBase):
    """Top-k events per window by ``score_fn`` (descending), ties by key.

    Consumes per-group result events (e.g. the output of
    :class:`GroupedWindowAggregate`) and re-emits only the k best per
    window — Q4 of the framework evaluation.  Keeps at most k states per
    window via a running selection.
    """

    def __init__(self, k, score_fn=None):
        super().__init__()
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.score_fn = score_fn

    def _score(self, event):
        return event.payload if self.score_fn is None else self.score_fn(event)

    def on_event(self, event):
        start = event.sync_time
        entry = self._windows.get(start)
        if entry is None:
            best = []
            self._windows[start] = (event.other_time, best)
        else:
            best = entry[1]
        best.append(event)
        if len(best) > 4 * self.k:
            best.sort(key=self._score, reverse=True)
            del best[self.k:]

    def _emit_window(self, start, end, best):
        best.sort(key=self._score, reverse=True)
        for event in best[: self.k]:
            self.emit_event(event)

    def buffered_count(self) -> int:
        return sum(len(best) for _, best in self._windows.values())
