"""Stream-contract monitor: an assertion layer between operators.

Every operator downstream of the sort relies on two promises — events
are sync-ordered (between punctuations) and nothing arrives at or below
an emitted punctuation.  :class:`OrderingMonitor` is a pass-through
operator that *checks* those promises, for use in tests, fuzz harnesses,
and debugging sessions ("which operator broke the contract?").
"""

from __future__ import annotations

from repro.core.errors import ReproError

__all__ = ["ContractViolation", "OrderingMonitor"]

from repro.engine.operators.base import Operator

_NEG_INF = float("-inf")


class ContractViolation(ReproError):
    """An operator emitted something that breaks the stream contract."""


class OrderingMonitor(Operator):
    """Pass-through that asserts the ordered-stream contract.

    Parameters
    ----------
    label:
        Included in violation messages so a monitor placed after each
        stage pinpoints the offender.
    scan_order:
        When ``True`` (default) events must be non-decreasing in
        sync_time even between punctuations (the contract scan-order
        consumers like PatternMatch need).  ``False`` relaxes to
        punctuation-granularity ordering (what aggregate-style consumers
        need): events only have to stay above the last punctuation.
    """

    def __init__(self, label="monitor", scan_order=True):
        super().__init__()
        self.label = label
        self.scan_order = scan_order
        self.events_seen = 0
        self.punctuations_seen = 0
        self.flushes = 0
        self._last_sync = _NEG_INF
        self._last_punctuation = _NEG_INF

    def on_event(self, event):
        self.events_seen += 1
        if event.sync_time <= self._last_punctuation:
            raise ContractViolation(
                f"{self.label}: event sync={event.sync_time} at/below "
                f"punctuation {self._last_punctuation}"
            )
        if self.scan_order and event.sync_time < self._last_sync:
            raise ContractViolation(
                f"{self.label}: sync regressed {self._last_sync} -> "
                f"{event.sync_time} between punctuations"
            )
        if event.other_time <= event.sync_time:
            raise ContractViolation(
                f"{self.label}: empty/negative interval "
                f"[{event.sync_time}, {event.other_time})"
            )
        self._last_sync = max(self._last_sync, event.sync_time)
        self.emit_event(event)

    def on_punctuation(self, punctuation):
        self.punctuations_seen += 1
        if punctuation.timestamp < self._last_punctuation:
            raise ContractViolation(
                f"{self.label}: punctuation regressed "
                f"{self._last_punctuation} -> {punctuation.timestamp}"
            )
        self._last_punctuation = punctuation.timestamp
        if not self.scan_order:
            # Order resets at punctuation granularity.
            self._last_sync = _NEG_INF
        self.emit_punctuation(punctuation)

    def on_flush(self):
        # A flush ends the stream; a replayed stream (engine/replay.py)
        # then starts from scratch, so the watermark must reset or every
        # event of the second pass reads as late against the first
        # pass's final punctuation.
        self.flushes += 1
        self._last_sync = _NEG_INF
        self._last_punctuation = _NEG_INF
        self.emit_flush()
