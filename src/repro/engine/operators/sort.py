"""The sorting operator: the only disorder-aware operator in the engine.

Wraps any online sorter obeying the ``insert / on_punctuation / flush``
protocol (Impatience sort by default) and turns a disordered event stream
into a sorted one, emitting buffered events on every punctuation
(Section III-A's problem definition).
"""

from __future__ import annotations

from repro.core.impatience import ImpatienceSorter
from repro.engine.operators.base import Operator

__all__ = ["Sort"]


class Sort(Operator):
    """Order a disordered stream by sync_time using an online sorter.

    Parameters
    ----------
    sorter:
        An online sorter instance; defaults to a fresh
        :class:`~repro.core.impatience.ImpatienceSorter` keyed on
        ``sync_time``.  Pass any of
        :func:`repro.sorting.make_online_sorter`'s products to compare
        algorithms inside a full query pipeline.
    """

    def __init__(self, sorter=None):
        super().__init__()
        if sorter is None:
            sorter = ImpatienceSorter(key=_sync_time)
        self.sorter = sorter

    def on_event(self, event):
        self.sorter.insert(event)

    def on_punctuation(self, punctuation):
        for event in self.sorter.on_punctuation(punctuation.timestamp):
            self.emit_event(event)
        self.emit_punctuation(punctuation)

    def on_flush(self):
        for event in self.sorter.flush():
            self.emit_event(event)
        self.emit_flush()

    def buffered_count(self) -> int:
        return self.sorter.buffered

    @property
    def dropped(self) -> int:
        """Late events discarded by the sorter's late policy."""
        return self.sorter.late.dropped


def _sync_time(event):
    return event.sync_time
