"""Statistical aggregate functions: variance, stddev, and quantiles.

Standard log-analytics folds (p99 latency per window, variance of a
sensor per window) built on the same Aggregate interface as Count/Sum so
they compose with windowed, grouped, and framework execution unchanged.
"""

from __future__ import annotations

import math

from repro.engine.operators.aggregates import Aggregate

__all__ = ["Variance", "StdDev", "Quantile", "Median"]


class Variance(Aggregate):
    """Population variance of ``selector(payload)`` (Welford's method).

    Single-pass and numerically stable; ``None`` on empty windows.
    """

    def __init__(self, selector=None):
        self.selector = selector

    def initial(self):
        return (0, 0.0, 0.0)  # count, mean, M2

    def accumulate(self, state, event):
        value = (
            event.payload if self.selector is None
            else self.selector(event.payload)
        )
        count, mean, m2 = state
        count += 1
        delta = value - mean
        mean += delta / count
        m2 += delta * (value - mean)
        return (count, mean, m2)

    def result(self, state):
        count, _, m2 = state
        return m2 / count if count else None


class StdDev(Variance):
    """Population standard deviation (square root of :class:`Variance`)."""

    def result(self, state):
        variance = super().result(state)
        return math.sqrt(variance) if variance is not None else None


class Quantile(Aggregate):
    """Exact q-quantile of ``selector(payload)`` over the window.

    Buffers the window's values (windows are bounded by construction in
    this engine); the result uses the nearest-rank definition, so it is
    always an observed value.  ``None`` on empty windows.
    """

    def __init__(self, q, selector=None):
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        self.q = q
        self.selector = selector

    def initial(self):
        return []

    def accumulate(self, state, event):
        value = (
            event.payload if self.selector is None
            else self.selector(event.payload)
        )
        state.append(value)
        return state

    def result(self, state):
        if not state:
            return None
        ordered = sorted(state)
        rank = min(
            max(math.ceil(self.q * len(ordered)) - 1, 0), len(ordered) - 1
        )
        return ordered[rank]


class Median(Quantile):
    """The 0.5 quantile."""

    def __init__(self, selector=None):
        super().__init__(0.5, selector)
