"""Operator protocol for the push-based pipeline.

Every operator receives three signals from upstream — ``on_event``,
``on_punctuation`` and ``on_flush`` (end of stream) — and pushes results to
any number of downstream operators.  Operators that buffer report their
occupancy through ``buffered_count`` so the memory meter
(:mod:`repro.framework.memory`) can integrate Figure 10's byte counts.

All operators in this engine except the sorting operator assume their input
arrives in non-decreasing ``sync_time`` order between punctuations — the
paper's premise that a single sorting operator keeps every other operator
order-free.
"""

from __future__ import annotations

from repro.engine.event import Punctuation

__all__ = ["Operator", "PassThrough", "InputPort"]


class Operator:
    """Base class: fans out to downstreams, passes everything through."""

    def __init__(self):
        self.downstreams = []

    def add_downstream(self, operator):
        """Attach a downstream operator; returns it for chaining."""
        self.downstreams.append(operator)
        return operator

    # -- signals from upstream ------------------------------------------

    def on_event(self, event):
        self.emit_event(event)

    def on_punctuation(self, punctuation):
        self.emit_punctuation(punctuation)

    def on_flush(self):
        self.emit_flush()

    # -- emission to downstream -----------------------------------------

    def emit_event(self, event):
        for downstream in self.downstreams:
            downstream.on_event(event)

    def emit_punctuation(self, punctuation):
        for downstream in self.downstreams:
            downstream.on_punctuation(punctuation)

    def emit_flush(self):
        for downstream in self.downstreams:
            downstream.on_flush()

    # -- observability hooks ----------------------------------------------

    def instrument(self, wrappers) -> dict:
        """Install per-instance wrappers around signal/emit methods.

        ``wrappers`` maps method names (``on_event``, ``on_punctuation``,
        ``on_flush``, their ``on_port_*`` variants, ``emit_event``,
        ``emit_punctuation``) to ``wrap(bound_method) -> callable``
        factories.  Names this operator does not implement are skipped.
        Returns the dict of original bound methods to hand back to
        :meth:`uninstrument`.

        Instrumentation is strictly per-instance (the wrapper shadows the
        class method through the instance ``__dict__``), so operators with
        no observer attached run the exact class methods — disabled
        metrics cost nothing.
        """
        originals = {}
        for name, wrap in wrappers.items():
            bound = getattr(self, name, None)
            if bound is None:
                continue
            originals[name] = bound
            setattr(self, name, wrap(bound))
        return originals

    def uninstrument(self, originals):
        """Remove wrappers installed by :meth:`instrument`.

        Pops the shadowing instance attributes so lookups fall back to the
        class methods again.
        """
        for name in originals:
            self.__dict__.pop(name, None)

    # -- introspection ----------------------------------------------------

    def buffered_count(self) -> int:
        """Events currently buffered by this operator (0 if stateless)."""
        return 0

    def advance_to(self, timestamp):
        """Convenience: emit a punctuation object at ``timestamp``."""
        self.emit_punctuation(Punctuation(timestamp))


class PassThrough(Operator):
    """Identity operator; used as source roots and as the default PIQ."""


class InputPort:
    """Adapter giving a multi-input operator (e.g. union) named inlets.

    A port forwards each upstream signal to the owner with its port index,
    so the owner can track per-input watermarks.
    """

    __slots__ = ("owner", "index")

    def __init__(self, owner, index):
        self.owner = owner
        self.index = index

    def on_event(self, event):
        self.owner.on_port_event(self.index, event)

    def on_punctuation(self, punctuation):
        self.owner.on_port_punctuation(self.index, punctuation)

    def on_flush(self):
        self.owner.on_port_flush(self.index)
