"""Snapshot aggregation — Trill's native aggregate semantics.

The windowed aggregates in :mod:`repro.engine.operators.aggregates` treat
each event as belonging to the single window stamped in its ``sync_time``
(exact for tumbling windows).  Trill's model is more general: an event
*contributes to every instant of its validity interval* ``[sync, other)``,
and an aggregate's output is a step function over time — one value per
*snapshot interval* between consecutive endpoint changes.

:class:`SnapshotAggregate` implements that semantics for commutative,
invertible folds (sum-like: Count, Sum, mean numerator/denominator):
each event adds its contribution at ``sync`` and removes it at ``other``
(a difference map), and punctuations release the finished prefix of the
step function.  Combined with a hopping-window timestamp adjustment this
yields correct sliding-window aggregates, where the tumbling-window
operators would undercount events spanning several hops.
"""

from __future__ import annotations

from repro.engine.event import Event, Punctuation
from repro.engine.operators.base import Operator

__all__ = ["SnapshotAggregate", "SnapshotCount", "SnapshotSum"]

_NEG_INF = float("-inf")


class SnapshotAggregate(Operator):
    """Step-function aggregate over event validity intervals.

    Parameters
    ----------
    lift:
        ``fn(event) -> value`` — each event's contribution (1 for count).
    emit_zero:
        Whether to emit snapshot intervals whose aggregate is the
        identity (gaps with no live events).  Default off, matching the
        convention that empty snapshots produce no output.

    Output events: one per snapshot interval ``[t_i, t_{i+1})`` with the
    aggregate of every event alive throughout it, keyed 0.
    """

    def __init__(self, lift=None, emit_zero=False):
        super().__init__()
        self.lift = lift
        self.emit_zero = emit_zero
        self._deltas = {}      # timestamp -> net contribution change
        self._running = 0      # aggregate value entering _frontier
        self._frontier = None  # left edge of the unreleased step function
        self._out_watermark = _NEG_INF

    def on_event(self, event):
        value = 1 if self.lift is None else self.lift(event)
        self._deltas[event.sync_time] = (
            self._deltas.get(event.sync_time, 0) + value
        )
        self._deltas[event.other_time] = (
            self._deltas.get(event.other_time, 0) - value
        )

    def on_punctuation(self, punctuation):
        """Release the decided prefix; forward a clamped punctuation.

        The pending step segment starts at the frontier, so output with
        ``sync >= frontier`` may still come — the forwarded punctuation
        is clamped below it (same discipline as Coalesce/SessionWindow).
        """
        self._release(punctuation.timestamp)
        bound = punctuation.timestamp
        pending = self._frontier is not None and (
            self._running != 0 or self.emit_zero
        )
        if pending:
            bound = min(bound, self._frontier - 1)
        if bound > self._out_watermark:
            self._out_watermark = bound
            self.emit_punctuation(Punctuation(bound))

    def on_flush(self):
        self._release(None)
        self.emit_flush()

    def _release(self, up_to):
        """Emit snapshot intervals whose right edge is decided.

        A boundary ``t`` is final once no event with ``sync <= t`` can
        arrive, i.e. ``t <= up_to``; the interval ``[t_i, t_{i+1})`` is
        emitted when its right edge is final.
        """
        if not self._deltas:
            return
        due = sorted(
            t for t in self._deltas if up_to is None or t <= up_to
        )
        if not due:
            return
        for boundary in due:
            if self._frontier is not None and (
                self._running != 0 or self.emit_zero
            ):
                self.emit_event(
                    Event(self._frontier, boundary, 0, self._running)
                )
            self._running += self._deltas.pop(boundary)
            self._frontier = boundary
        # A trailing all-zero state needs no closing interval.

    def buffered_count(self) -> int:
        return len(self._deltas)


class SnapshotCount(SnapshotAggregate):
    """Number of events alive per snapshot interval."""

    def __init__(self, emit_zero=False):
        super().__init__(lift=None, emit_zero=emit_zero)


class SnapshotSum(SnapshotAggregate):
    """Sum of ``selector(payload)`` over events alive per snapshot."""

    def __init__(self, selector=None, emit_zero=False):
        if selector is None:
            lift = lambda event: event.payload  # noqa: E731
        else:
            lift = lambda event: selector(event.payload)  # noqa: E731
        super().__init__(lift=lift, emit_zero=emit_zero)
