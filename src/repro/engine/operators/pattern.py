"""Sequence pattern matching over an ordered stream.

Implements the paper's second framework example (Section V-C): "find users
who click ad X followed by clicking ad Y within a one-minute window".  The
operator consumes an ordered stream, tracks per-correlation-key occurrences
of the first predicate, and emits a match event when the second predicate
fires within ``within`` time units.  State is evicted on punctuations, so
memory stays bounded by the window.
"""

from __future__ import annotations

from collections import deque

from repro.engine.event import Event
from repro.engine.operators.base import Operator

__all__ = ["PatternMatch"]


class PatternMatch(Operator):
    """Detect ``first`` followed by ``second`` within ``within`` per key.

    Parameters
    ----------
    first, second:
        Event predicates for the two pattern steps.
    within:
        Maximum ``sync_time`` gap between the two steps (exclusive start:
        the second event must be strictly later).
    key_fn:
        Correlation key (default: the event's key field — "per user").

    Output events carry ``sync_time`` of the second step and payload
    ``(first_sync, second_sync)``.
    """

    def __init__(self, first, second, within, key_fn=None):
        super().__init__()
        if within < 1:
            raise ValueError("within must be >= 1")
        self.first = first
        self.second = second
        self.within = within
        self.key_fn = key_fn
        self._pending = {}  # key -> deque of first-step sync_times
        self.matches = 0

    def _key(self, event):
        return event.key if self.key_fn is None else self.key_fn(event)

    def on_event(self, event):
        key = self._key(event)
        now = event.sync_time
        if self.second(event):
            pending = self._pending.get(key)
            if pending:
                while pending and pending[0] <= now - self.within:
                    pending.popleft()
                for first_sync in pending:
                    if first_sync < now:
                        self.matches += 1
                        self.emit_event(
                            Event(now, event.other_time, key,
                                  (first_sync, now))
                        )
        if self.first(event):
            self._pending.setdefault(key, deque()).append(now)

    def on_punctuation(self, punctuation):
        horizon = punctuation.timestamp - self.within
        dead = []
        for key, pending in self._pending.items():
            while pending and pending[0] <= horizon:
                pending.popleft()
            if not pending:
                dead.append(key)
        for key in dead:
            del self._pending[key]
        self.emit_punctuation(punctuation)

    def buffered_count(self) -> int:
        return sum(len(pending) for pending in self._pending.values())
