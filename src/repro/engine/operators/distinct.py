"""Distinct-value aggregation.

``CountDistinct`` is an aggregate function (usable anywhere Count is);
``DistinctWindow`` deduplicates events per window by a selector — both
standard engine pieces a log-analytics user reaches for (unique users per
window, first click per ad per window).
"""

from __future__ import annotations

from repro.engine.operators.aggregates import Aggregate
from repro.engine.operators.base import Operator

__all__ = ["CountDistinct", "DistinctWindow"]


class CountDistinct(Aggregate):
    """Number of distinct ``selector(payload)`` values in the window."""

    def __init__(self, selector=None):
        self.selector = selector

    def initial(self):
        return set()

    def accumulate(self, state, event):
        value = (
            event.payload if self.selector is None
            else self.selector(event.payload)
        )
        state.add(value)
        return state

    def result(self, state):
        return len(state)


class DistinctWindow(Operator):
    """Pass through only the first event per (window, selector value).

    Stateful but order-insensitive *within* a window: any one
    representative per distinct value survives, and punctuations garbage-
    collect window state once the window can no longer receive events.
    """

    def __init__(self, selector=None):
        super().__init__()
        self.selector = selector
        self._seen = {}  # window start -> (window end, set of values)

    def _value(self, event):
        return (
            event.payload if self.selector is None
            else self.selector(event.payload)
        )

    def on_event(self, event):
        start = event.sync_time
        entry = self._seen.get(start)
        if entry is None:
            entry = (event.other_time, set())
            self._seen[start] = entry
        value = self._value(event)
        if value not in entry[1]:
            entry[1].add(value)
            self.emit_event(event)

    def on_punctuation(self, punctuation):
        dead = [
            start
            for start, (end, _) in self._seen.items()
            if end - 1 <= punctuation.timestamp
        ]
        for start in dead:
            del self._seen[start]
        self.emit_punctuation(punctuation)

    def on_flush(self):
        self._seen.clear()
        self.emit_flush()

    def buffered_count(self) -> int:
        return sum(len(values) for _, values in self._seen.values())
