"""Window operators (Section IV-A2).

In Trill a window is not a property of stateful operators but a separate
*timestamp transformation*: a hopping window sets

    ``sync_time  = t - t % hop``
    ``other_time = t - t % hop + size``

so that downstream order-sensitive operators see snapshot intervals.  The
transformation is stateless and order-insensitive, which makes it legal on
a ``DisorderedStreamable`` — and pushing it below the sort *reduces
disorder* (all events in a hop share one sync_time; Proposition 3.2 then
bounds the run count by the number of distinct windows), the effect
measured in Figure 9(c).
"""

from __future__ import annotations

from repro.engine.event import Punctuation
from repro.engine.operators.base import Operator

__all__ = ["HoppingWindow", "TumblingWindow"]


class HoppingWindow(Operator):
    """Sliding window of ``size``, advancing every ``hop`` time units."""

    def __init__(self, size, hop=None):
        super().__init__()
        if size < 1:
            raise ValueError("window size must be >= 1")
        hop = size if hop is None else hop
        if hop < 1:
            raise ValueError("window hop must be >= 1")
        self.size = size
        self.hop = hop

    def on_event(self, event):
        start = event.sync_time - event.sync_time % self.hop
        self.emit_event(event.with_times(start, start + self.size))

    def on_punctuation(self, punctuation):
        """Align the promise to the output's time domain.

        Input punctuation ``T`` promises no more raw times <= T; a future
        raw time ``t >= T+1`` maps to an aligned sync as low as the
        alignment of ``T+1``, so the strongest promise expressible on the
        windowed stream is one tick below that alignment.  Matters only
        when the window runs *after* the sort — pushed-down windows feed
        the sorter, which re-derives punctuations itself.
        """
        next_raw = punctuation.timestamp + 1
        aligned = next_raw - next_raw % self.hop
        self.emit_punctuation(Punctuation(aligned - 1))


class TumblingWindow(HoppingWindow):
    """Fixed-size, non-overlapping window: a hopping window with hop=size."""

    def __init__(self, size):
        super().__init__(size, size)
