"""Temporal (interval) equi-join — the canonical order-sensitive operator.

The paper classifies join with aggregation as the order-sensitive
operators that motivate sorting (§IV-A); this is the standard streaming
implementation those engines run *after* the sorting operator: a
symmetric hash join where two events match when their keys are equal and
their validity intervals ``[sync, other)`` overlap.  The output event's
interval is the intersection, its payload the pair of input payloads.

State on each side is evicted once the opposite side's watermark passes
an event's ``other_time`` — no event arriving later can overlap it —
so memory is bounded by interval length × rate, exactly the behaviour
a punctuated, in-order input guarantees.
"""

from __future__ import annotations

from collections import defaultdict

from repro.engine.event import Event, Punctuation
from repro.engine.operators.base import InputPort, Operator

__all__ = ["TemporalJoin"]

_NEG_INF = float("-inf")


class TemporalJoin(Operator):
    """Two-input interval equi-join; attach parents to ``ports[0]/[1]``.

    Parameters
    ----------
    result_selector:
        ``fn(left_payload, right_payload) -> payload`` for matches;
        defaults to the ``(left, right)`` tuple.

    Output ordering: matches are emitted when the *later* input event
    arrives, so outputs are ordered by ``max(left.sync, right.sync)``
    between punctuations, and the emitted punctuation is the min of the
    two input watermarks — the same contract as Union.
    """

    def __init__(self, result_selector=None):
        super().__init__()
        self.result_selector = result_selector
        self.ports = (InputPort(self, 0), InputPort(self, 1))
        self._state = (defaultdict(list), defaultdict(list))  # key -> events
        self._watermarks = [_NEG_INF, _NEG_INF]
        self._flushed = [False, False]
        self._emitted_watermark = _NEG_INF
        self.matches = 0

    # -- port signals -----------------------------------------------------

    def on_port_event(self, index, event):
        other_side = self._state[1 - index]
        partners = other_side.get(event.key)
        if partners:
            for partner in partners:
                start = max(event.sync_time, partner.sync_time)
                end = min(event.other_time, partner.other_time)
                if start < end:
                    self.matches += 1
                    left, right = (
                        (partner, event) if index == 1 else (event, partner)
                    )
                    payload = (
                        (left.payload, right.payload)
                        if self.result_selector is None
                        else self.result_selector(left.payload, right.payload)
                    )
                    self.emit_event(Event(start, end, event.key, payload))
        self._state[index][event.key].append(event)

    def on_port_punctuation(self, index, punctuation):
        if punctuation.timestamp > self._watermarks[index]:
            self._watermarks[index] = punctuation.timestamp
            # The opposite side can drop events no future input overlaps.
            self._evict(1 - index, punctuation.timestamp)
        safe = min(self._watermarks)
        if safe > self._emitted_watermark and safe != _NEG_INF:
            self._emitted_watermark = safe
            self.emit_punctuation(Punctuation(safe))

    def on_port_flush(self, index):
        self._flushed[index] = True
        if all(self._flushed):
            self._state = (defaultdict(list), defaultdict(list))
            self.emit_flush()

    # -- state ------------------------------------------------------------

    def _evict(self, side, watermark):
        state = self._state[side]
        dead_keys = []
        for key, events in state.items():
            events[:] = [e for e in events if e.other_time > watermark]
            if not events:
                dead_keys.append(key)
        for key in dead_keys:
            del state[key]

    def buffered_count(self) -> int:
        return sum(
            len(events)
            for side in self._state
            for events in side.values()
        )
