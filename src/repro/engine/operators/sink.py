"""Terminal operators: collectors, callback subscribers, file egress."""

from __future__ import annotations

import csv

from repro.engine.operators.base import Operator

__all__ = ["Collector", "CallbackSink", "CsvSink"]


class Collector(Operator):
    """Materialize a stream: events, punctuations, and completion flag.

    The workhorse sink for tests and benchmarks; ``events`` preserves
    emission order, ``punctuations`` records every progress marker.
    """

    def __init__(self):
        super().__init__()
        self.events = []
        self.punctuations = []
        self.completed = False

    def on_event(self, event):
        self.events.append(event)

    def on_punctuation(self, punctuation):
        self.punctuations.append(punctuation.timestamp)

    def on_flush(self):
        self.completed = True

    @property
    def sync_times(self):
        """Convenience: the emitted events' sync_times, in emission order."""
        return [event.sync_time for event in self.events]

    @property
    def payloads(self):
        """Convenience: the emitted events' payloads, in emission order."""
        return [event.payload for event in self.events]

    def __len__(self) -> int:
        return len(self.events)


class CsvSink(Operator):
    """Stream results to a CSV file (the egress mirror of dataset ingress).

    Writes ``sync_time,other_time,key,payload…`` rows as events arrive;
    tuple payloads expand into columns.  The file handle is owned by the
    caller (pass anything with a ``write`` method) so lifetime and
    buffering stay explicit.
    """

    def __init__(self, fh, header=True):
        super().__init__()
        self._writer = csv.writer(fh)
        self._header_pending = header
        self.rows = 0

    def on_event(self, event):
        if self._header_pending:
            n_fields = (
                len(event.payload) if isinstance(event.payload, tuple) else 1
            )
            self._writer.writerow(
                ["sync_time", "other_time", "key"]
                + [f"p{i}" for i in range(n_fields)]
            )
            self._header_pending = False
        payload = (
            list(event.payload) if isinstance(event.payload, tuple)
            else [event.payload]
        )
        self._writer.writerow(
            [event.sync_time, event.other_time, event.key] + payload
        )
        self.rows += 1
        self.emit_event(event)


class CallbackSink(Operator):
    """Invoke ``on_event_fn(event)`` per event — the paper's Subscribe().

    Optional ``on_punctuation_fn(timestamp)`` and ``on_flush_fn()`` hooks
    mirror the other two signals.
    """

    def __init__(self, on_event_fn, on_punctuation_fn=None, on_flush_fn=None):
        super().__init__()
        self.on_event_fn = on_event_fn
        self.on_punctuation_fn = on_punctuation_fn
        self.on_flush_fn = on_flush_fn

    def on_event(self, event):
        self.on_event_fn(event)

    def on_punctuation(self, punctuation):
        if self.on_punctuation_fn is not None:
            self.on_punctuation_fn(punctuation.timestamp)

    def on_flush(self):
        if self.on_flush_fn is not None:
            self.on_flush_fn()
