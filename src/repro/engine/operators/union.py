"""Union operator: synchronized merge of two sorted streams (Section V-A).

    "...a union operator, which merges and synchronizes two sorted streams
    into one sorted stream (and thus is a blocking operator)."

Each input arrives in sync_time order with its own punctuation cadence.
Events are safe to emit once they are at or below *both* sides'
watermarks; until then they sit in per-side buffers.  That buffering is the
memory cost of the basic Impatience framework (the slow side holds back the
fast side for up to its reorder latency), which Figure 10 quantifies —
hence the high-water-mark accounting here.
"""

from __future__ import annotations

from bisect import insort

from repro.engine.event import Punctuation
from repro.engine.operators.base import InputPort, Operator

__all__ = ["Union"]

_NEG_INF = float("-inf")


class Union(Operator):
    """Two-input merge; attach parents to ``.ports[0]`` and ``.ports[1]``."""

    def __init__(self):
        super().__init__()
        self.ports = (InputPort(self, 0), InputPort(self, 1))
        self._buffers = ([], [])  # per-side event lists, sync-ordered
        self._watermarks = [_NEG_INF, _NEG_INF]
        self._flushed = [False, False]
        self._emitted_watermark = _NEG_INF
        self.max_buffered = 0

    # -- port signals -----------------------------------------------------

    def on_port_event(self, index, event):
        buffer = self._buffers[index]
        if buffer and event.sync_time < buffer[-1].sync_time:
            # Defensive: inputs are contractually sorted, but a misplaced
            # event would silently corrupt the merge; keep order by insort.
            insort(buffer, event, key=lambda e: e.sync_time)
        else:
            buffer.append(event)
        total = len(self._buffers[0]) + len(self._buffers[1])
        if total > self.max_buffered:
            self.max_buffered = total

    def on_port_punctuation(self, index, punctuation):
        if punctuation.timestamp > self._watermarks[index]:
            self._watermarks[index] = punctuation.timestamp
        self._drain()

    def on_port_flush(self, index):
        self._flushed[index] = True
        if all(self._flushed):
            self._watermarks = [float("inf"), float("inf")]
            self._drain()
            self.emit_flush()

    # -- merge ------------------------------------------------------------

    def _drain(self):
        """Emit merged events up to min watermark, then the punctuation."""
        safe = min(self._watermarks)
        if safe == _NEG_INF:
            return
        left, right = self._buffers
        i = j = 0
        nl, nr = len(left), len(right)
        while True:
            left_ok = i < nl and left[i].sync_time <= safe
            right_ok = j < nr and right[j].sync_time <= safe
            if left_ok and right_ok:
                if right[j].sync_time < left[i].sync_time:
                    self.emit_event(right[j])
                    j += 1
                else:
                    self.emit_event(left[i])
                    i += 1
            elif left_ok:
                self.emit_event(left[i])
                i += 1
            elif right_ok:
                self.emit_event(right[j])
                j += 1
            else:
                break
        if i:
            del left[:i]
        if j:
            del right[:j]
        if safe > self._emitted_watermark and safe != float("inf"):
            self._emitted_watermark = safe
            self.emit_punctuation(Punctuation(safe))

    def buffered_count(self) -> int:
        return len(self._buffers[0]) + len(self._buffers[1])
