"""The engine's operator library (all in-order except Sort)."""

from repro.engine.operators.aggregates import (
    Aggregate,
    Avg,
    Count,
    GroupedWindowAggregate,
    Max,
    Min,
    Sum,
    WindowAggregate,
    WindowTopK,
)
from repro.engine.operators.base import InputPort, Operator, PassThrough
from repro.engine.operators.coalesce import Coalesce
from repro.engine.operators.distinct import CountDistinct, DistinctWindow
from repro.engine.operators.session import SessionWindow
from repro.engine.operators.duration import AlterEventDuration, ClipEventDuration
from repro.engine.operators.groupapply import GroupApply
from repro.engine.operators.join import TemporalJoin
from repro.engine.operators.monitor import ContractViolation, OrderingMonitor
from repro.engine.operators.pattern import PatternMatch
from repro.engine.operators.select import Select, SelectColumns, SelectEvent
from repro.engine.operators.sink import CallbackSink, Collector, CsvSink
from repro.engine.operators.snapshot import (
    SnapshotAggregate,
    SnapshotCount,
    SnapshotSum,
)
from repro.engine.operators.sort import Sort
from repro.engine.operators.statistics import Median, Quantile, StdDev, Variance
from repro.engine.operators.union import Union
from repro.engine.operators.where import Where
from repro.engine.operators.window import HoppingWindow, TumblingWindow

__all__ = [
    "Aggregate",
    "AlterEventDuration",
    "ClipEventDuration",
    "Coalesce",
    "CountDistinct",
    "DistinctWindow",
    "SessionWindow",
    "GroupApply",
    "TemporalJoin",
    "Avg",
    "CallbackSink",
    "Collector",
    "Count",
    "CsvSink",
    "GroupedWindowAggregate",
    "HoppingWindow",
    "InputPort",
    "Max",
    "Min",
    "ContractViolation",
    "Operator",
    "OrderingMonitor",
    "PassThrough",
    "PatternMatch",
    "Select",
    "SelectColumns",
    "SelectEvent",
    "Median",
    "Quantile",
    "SnapshotAggregate",
    "SnapshotCount",
    "SnapshotSum",
    "Sort",
    "StdDev",
    "Variance",
    "Sum",
    "TumblingWindow",
    "Union",
    "Where",
    "WindowAggregate",
    "WindowTopK",
]
