"""Coalesce: combine per-key events with overlapping lifetimes (§V-C).

The paper sketches an optimized PIQ for its pattern-matching example:

    "the user can provide a pair of PIQ and merge functions that combine
    multiple events into one event, if these events are related to same
    user and ad, and are overlapped in their validity time intervals.
    Thus, the subsequent pattern matching operators are performed on
    smaller streams."

``Coalesce`` is that combiner: over an ordered stream, consecutive events
with the same key whose ``[sync, other)`` intervals touch or overlap fuse
into one event spanning their union, with a user fold over payloads
(default: a count of fused events).

Ordering discipline: a fused group's output sync is its *start*, which is
fixed at creation, so a group may only be released once every group that
could still produce a smaller start is finalized.  Closed groups wait in
a start-ordered heap and punctuations forwarded downstream are clamped
below the earliest still-open start.
"""

from __future__ import annotations

import heapq

from repro.engine.event import Event, Punctuation
from repro.engine.operators.base import Operator

__all__ = ["Coalesce"]

_NEG_INF = float("-inf")


class Coalesce(Operator):
    """Fuse same-key events with overlapping validity intervals.

    Parameters
    ----------
    combine:
        ``fn(accumulated_payload_or_None, event) -> payload``; ``None``
        counts fused events (payload is the count).
    key_fn:
        Grouping key (default: the event's key field).
    """

    def __init__(self, combine=None, key_fn=None):
        super().__init__()
        self.combine = combine
        self.key_fn = key_fn
        self._open = {}     # key -> [start, end, payload]
        self._closed = []   # heap of (start, seq, end, key, payload)
        self._seq = 0
        self._out_watermark = _NEG_INF
        self.fused = 0

    def _key(self, event):
        return event.key if self.key_fn is None else self.key_fn(event)

    def on_event(self, event):
        key = self._key(event)
        group = self._open.get(key)
        if group is not None:
            if event.sync_time <= group[1]:
                # Extends the open interval (input is sync-ordered, so the
                # event cannot start before the group's start).
                if event.other_time > group[1]:
                    group[1] = event.other_time
                group[2] = (
                    group[2] + 1 if self.combine is None
                    else self.combine(group[2], event)
                )
                self.fused += 1
                return
            self._retire(key, group)
        payload = 1 if self.combine is None else self.combine(None, event)
        self._open[key] = [event.sync_time, event.other_time, payload]

    def on_punctuation(self, punctuation):
        timestamp = punctuation.timestamp
        # Finalize groups no future event (sync > T) can extend.
        for key in [
            key for key, group in self._open.items()
            if group[1] <= timestamp
        ]:
            self._retire(key, self._open.pop(key))
        self._release(timestamp)

    def on_flush(self):
        for key in list(self._open):
            self._retire(key, self._open.pop(key))
        self._release(float("inf"))
        self.emit_flush()

    # -- internals ----------------------------------------------------------

    def _retire(self, key, group):
        start, end, payload = group
        heapq.heappush(self._closed, (start, self._seq, end, key, payload))
        self._seq += 1

    def _release(self, timestamp):
        """Emit closed groups (and a punctuation) up to the safe bound."""
        open_floor = min(
            (group[0] for group in self._open.values()), default=None
        )
        bound = timestamp if open_floor is None else min(
            timestamp, open_floor - 1
        )
        closed = self._closed
        while closed and closed[0][0] <= bound:
            start, _, end, key, payload = heapq.heappop(closed)
            self.emit_event(Event(start, end, key, payload))
        if bound != float("inf") and bound > self._out_watermark:
            self._out_watermark = bound
            self.emit_punctuation(Punctuation(bound))

    def buffered_count(self) -> int:
        return len(self._open) + len(self._closed)
