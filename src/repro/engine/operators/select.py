"""Projection operators (Section IV-A1).

Stateless and order-insensitive.  ``Select`` maps payloads through an
arbitrary function; ``SelectColumns`` keeps a subset of payload fields —
the operator swept in Figure 9(b), where projecting 1 of 4 payload columns
shrinks events (though Trill's fixed metadata dilutes the ideal 4×).
"""

from __future__ import annotations

from repro.engine.operators.base import Operator

__all__ = ["Select", "SelectColumns", "SelectEvent"]


class Select(Operator):
    """Replace each event's payload with ``projector(payload)``."""

    def __init__(self, projector):
        super().__init__()
        self.projector = projector

    def on_event(self, event):
        self.emit_event(event.with_payload(self.projector(event.payload)))


class SelectColumns(Operator):
    """Keep only the payload fields at the given indices, in order."""

    def __init__(self, columns):
        super().__init__()
        self.columns = tuple(columns)
        if not self.columns:
            raise ValueError("SelectColumns requires at least one column")

    def on_event(self, event):
        payload = event.payload
        projected = tuple(payload[c] for c in self.columns)
        self.emit_event(event.with_payload(projected))


class SelectEvent(Operator):
    """Full-event map: ``mapper(event) -> event``, for advanced rewrites.

    The mapper must not change ``sync_time`` ordering semantics — timestamp
    adjustments belong to window operators.
    """

    def __init__(self, mapper):
        super().__init__()
        self.mapper = mapper

    def on_event(self, event):
        self.emit_event(self.mapper(event))
