"""Session windows: gap-based event grouping per key.

Not a paper figure, but a standard Trill/streaming operator that the
sort-as-needed design makes trivial to support: because it consumes an
*ordered* stream, a session closes exactly when a punctuation proves the
gap can no longer be filled — no speculation, no revision.

A session for a key is a maximal set of events where consecutive events
are less than ``timeout`` apart.  The operator emits one event per
closed session spanning ``[first_sync, last_sync + timeout)`` with a
payload folded by ``aggregate`` (default: event count).
"""

from __future__ import annotations

import heapq

from repro.engine.event import Event, Punctuation
from repro.engine.operators.aggregates import Count
from repro.engine.operators.base import Operator

__all__ = ["SessionWindow"]

_NEG_INF = float("-inf")


class SessionWindow(Operator):
    """Group an ordered stream into per-key sessions split on gaps.

    Parameters
    ----------
    timeout:
        Maximum gap between consecutive events of one session.
    aggregate:
        Fold applied to the session's events (default
        :class:`~repro.engine.operators.aggregates.Count`).
    key_fn:
        Session key (default: the event's key field).

    Output ordering follows the same discipline as Coalesce: sessions are
    released in start order and punctuations are clamped below the
    earliest still-open session start.
    """

    def __init__(self, timeout, aggregate=None, key_fn=None):
        super().__init__()
        if timeout < 1:
            raise ValueError("timeout must be >= 1")
        self.timeout = timeout
        self.aggregate = aggregate or Count()
        self.key_fn = key_fn
        self._open = {}     # key -> [start, last_sync, state]
        self._closed = []   # heap of (start, seq, end, key, payload)
        self._seq = 0
        self._out_watermark = _NEG_INF
        self.sessions = 0

    def _key(self, event):
        return event.key if self.key_fn is None else self.key_fn(event)

    def on_event(self, event):
        key = self._key(event)
        session = self._open.get(key)
        if session is not None and event.sync_time - session[1] < self.timeout:
            session[1] = event.sync_time
            session[2] = self.aggregate.accumulate(session[2], event)
            return
        if session is not None:
            self._retire(key, session)
        state = self.aggregate.accumulate(self.aggregate.initial(), event)
        self._open[key] = [event.sync_time, event.sync_time, state]

    def on_punctuation(self, punctuation):
        timestamp = punctuation.timestamp
        # A session is final when no future event (sync > T) can be within
        # timeout of its last event: last + timeout <= T + 1.
        for key in [
            key for key, session in self._open.items()
            if session[1] + self.timeout - 1 <= timestamp
        ]:
            self._retire(key, self._open.pop(key))
        self._release(timestamp)

    def on_flush(self):
        for key in list(self._open):
            self._retire(key, self._open.pop(key))
        self._release(float("inf"))
        self.emit_flush()

    def _retire(self, key, session):
        start, last, state = session
        payload = self.aggregate.result(state)
        end = last + self.timeout
        heapq.heappush(self._closed, (start, self._seq, end, key, payload))
        self._seq += 1
        self.sessions += 1

    def _release(self, timestamp):
        open_floor = min(
            (session[0] for session in self._open.values()), default=None
        )
        bound = timestamp if open_floor is None else min(
            timestamp, open_floor - 1
        )
        closed = self._closed
        while closed and closed[0][0] <= bound:
            start, _, end, key, payload = heapq.heappop(closed)
            self.emit_event(Event(start, end, key, payload))
        if bound != float("inf") and bound > self._out_watermark:
            self._out_watermark = bound
            self.emit_punctuation(Punctuation(bound))

    def buffered_count(self) -> int:
        return len(self._open) + len(self._closed)
