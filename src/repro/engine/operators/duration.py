"""Event-lifetime operators (Trill's duration algebra, §IV-A2).

Trill treats an event as a validity interval ``[sync_time, other_time)``;
window operators are just timestamp transformations over it.  These two
stateless, order-insensitive operators complete that algebra:

* :class:`AlterEventDuration` — set every event's lifetime to a fixed
  length (Trill's ``AlterEventDuration``); a hopping window is this plus
  a sync-time alignment.
* :class:`ClipEventDuration` — cap lifetimes at a maximum (Trill's
  ``ClipEventDuration`` against a constant), bounding how long an event
  can contribute to any downstream snapshot.

Being stateless, both are legal on a ``DisorderedStreamable`` and benefit
from sort-as-needed push-down like any projection.
"""

from __future__ import annotations

from repro.engine.operators.base import Operator

__all__ = ["AlterEventDuration", "ClipEventDuration"]


class AlterEventDuration(Operator):
    """Set ``other_time = sync_time + duration`` on every event."""

    def __init__(self, duration):
        super().__init__()
        if duration < 1:
            raise ValueError("duration must be >= 1")
        self.duration = duration

    def on_event(self, event):
        self.emit_event(
            event.with_times(event.sync_time, event.sync_time + self.duration)
        )


class ClipEventDuration(Operator):
    """Cap ``other_time`` at ``sync_time + limit`` on every event."""

    def __init__(self, limit):
        super().__init__()
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = limit

    def on_event(self, event):
        cap = event.sync_time + self.limit
        if event.other_time > cap:
            event = event.with_times(event.sync_time, cap)
        self.emit_event(event)
