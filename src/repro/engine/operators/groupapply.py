"""GroupApply: run a sub-query per grouping key (Trill's GroupApply, §V-C).

The paper's first framework example uses it directly:

    str.GroupApply(e => e.AdId, s => s.Aggregate(w => w.Count()))

``GroupApply`` routes each event to a per-key instance of an arbitrary
sub-query (a ``Streamable -> Streamable`` function, materialized lazily
the first time a key appears), broadcasts punctuations to every instance,
and re-emits the merged sub-outputs in sync-time order with the group key
stamped on each result event.

:class:`~repro.engine.operators.aggregates.GroupedWindowAggregate` remains
the fused fast path for the common aggregate case; GroupApply is the
general mechanism for arbitrary per-group logic (pattern matching per
user, per-device coalescing, ...).

Ordering contract: outputs are sync-sorted within each drain batch, so
they are globally ordered at punctuation granularity.  Sub-queries that
mix immediate (stateless) and punctuation-deferred (aggregate) emission
are ordered per batch but may interleave between punctuations; feed such
outputs to punctuation-buffering consumers (aggregates, union) rather
than scan-order ones.
"""

from __future__ import annotations

from repro.engine.operators.base import Operator

__all__ = ["GroupApply"]

_NEG_INF = float("-inf")


class _SubSink(Operator):
    """Terminal of one per-key sub-pipeline: stages outputs for the owner."""

    def __init__(self, owner, key):
        super().__init__()
        self.owner = owner
        self.key = key

    def on_event(self, event):
        self.owner._stage(event.with_key(self.key))

    def on_punctuation(self, punctuation):
        pass  # the owner forwards its own punctuations

    def on_flush(self):
        pass


class GroupApply(Operator):
    """Apply ``query_fn`` to each key's sub-stream; merge the results.

    Parameters
    ----------
    query_fn:
        ``Streamable -> Streamable`` built over a fresh per-key source.
    key_fn:
        Grouping key (default: the event's key field).
    """

    def __init__(self, query_fn, key_fn=None):
        super().__init__()
        self.query_fn = query_fn
        self.key_fn = key_fn
        self._groups = {}  # key -> per-key materialized Pipeline
        self._staged = []
        self.group_count = 0

    def _key(self, event):
        return event.key if self.key_fn is None else self.key_fn(event)

    def _pipeline_for(self, key):
        pipeline = self._groups.get(key)
        if pipeline is None:
            # Imported here to avoid an import cycle (stream -> operators).
            from repro.engine.graph import Pipeline, QueryNode, source_node
            from repro.engine.stream import Streamable, _SourceHandle

            source = source_node(f"group[{key!r}]")
            stream = Streamable(source, _SourceHandle(()))
            out = stream.apply(self.query_fn)
            sink_node = QueryNode(
                lambda: _SubSink(self, key), ((out.node, None),),
                name="group-sink",
            )
            pipeline = Pipeline([sink_node])
            self._groups[key] = pipeline
            self.group_count += 1
        return pipeline

    def _stage(self, event):
        self._staged.append(event)

    # -- upstream signals ---------------------------------------------------

    def on_event(self, event):
        self._pipeline_for(self._key(event)).push_event(event)
        self._drain()

    def on_punctuation(self, punctuation):
        for pipeline in self._groups.values():
            pipeline.push_punctuation(punctuation.timestamp)
        self._drain()
        self.emit_punctuation(punctuation)

    def on_flush(self):
        for pipeline in self._groups.values():
            pipeline.flush()
        self._drain()
        self.emit_flush()

    def _drain(self):
        staged = self._staged
        if not staged:
            return
        if len(staged) > 1:
            staged.sort(key=_sync_time)
        for event in staged:
            self.emit_event(event)
        self._staged = []

    def buffered_count(self) -> int:
        return sum(
            pipeline.buffered_events() for pipeline in self._groups.values()
        )


def _sync_time(event):
    return event.sync_time
