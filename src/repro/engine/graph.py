"""Query DAG representation and materialization.

Queries are composed as immutable :class:`QueryNode` graphs (the paper's
``Streamable`` chains, Section IV-B); ``subscribe`` materializes the graph
into live operator instances exactly once per node — so diamonds (e.g. the
Impatience framework's partition feeding several sort paths that later
union) share state correctly — and returns a :class:`Pipeline` that drives
elements through and can audit buffered memory at any instant.
"""

from __future__ import annotations

from repro.core.errors import QueryBuildError
from repro.engine.event import Punctuation, is_punctuation
from repro.engine.operators.base import PassThrough

__all__ = ["QueryNode", "Pipeline", "source_node"]

#: Sentinel distinguishing an exhausted source from a ``None`` element.
_EXHAUSTED = object()


class QueryNode:
    """One vertex of the logical query DAG.

    Parameters
    ----------
    factory:
        Zero-argument callable building the operator instance.
    parents:
        Tuple of ``(parent_node, output_port)`` pairs.  ``output_port`` is
        ``None`` for single-output parents, or an index into the parent
        operator's ``out_ports`` for routing operators (e.g. the
        framework's lateness partitioner).
    name:
        Diagnostic label used in ``Pipeline`` reports.
    """

    __slots__ = ("factory", "parents", "name")

    def __init__(self, factory, parents=(), name=""):
        self.factory = factory
        self.parents = tuple(parents)
        self.name = name or getattr(factory, "__name__", "op")

    def __repr__(self):
        return f"QueryNode({self.name}, parents={len(self.parents)})"


def source_node(name="source") -> QueryNode:
    """A root node; elements are pushed into it by :meth:`Pipeline.run`."""
    return QueryNode(PassThrough, (), name=name)


class Pipeline:
    """A materialized query: live operators wired into a push DAG."""

    def __init__(self, sink_nodes):
        self._instances = {}
        self._sources = []
        self._labels = {}       # id(op) -> unique diagnostic label
        self._label_counts = {}
        self.sinks = [self._build(node) for node in sink_nodes]
        if not self._sources:
            raise QueryBuildError("query graph has no source node")

    def _build(self, node):
        instance = self._instances.get(id(node))
        if instance is not None:
            return instance
        op = node.factory()
        self._instances[id(node)] = op
        base = node.name or "op"
        seen = self._label_counts.get(base, 0)
        self._label_counts[base] = seen + 1
        self._labels[id(op)] = base if seen == 0 else f"{base}#{seen + 1}"
        if not node.parents:
            self._sources.append(op)
        for index, (parent, out_port) in enumerate(node.parents):
            parent_op = self._build(parent)
            emitter = parent_op if out_port is None else parent_op.out_ports[out_port]
            ports = getattr(op, "ports", None)
            receiver = op if ports is None else ports[index]
            emitter.add_downstream(receiver)
        return op

    @property
    def operators(self):
        """All live operator instances (topological discovery order)."""
        return list(self._instances.values())

    @property
    def sources(self):
        """The live root operators elements are pushed into."""
        return list(self._sources)

    def operator_labels(self):
        """``(label, operator)`` pairs for every live operator.

        Labels derive from the query nodes' diagnostic names and are made
        unique per pipeline (``sort``, ``merge``, ``merge#2``, …) — the
        naming the observability layer keys its per-operator metrics by.
        """
        return [
            (self._labels[id(op)], op) for op in self._instances.values()
        ]

    def label_of(self, op) -> str:
        """The unique diagnostic label of a live operator instance."""
        try:
            return self._labels[id(op)]
        except KeyError:
            raise QueryBuildError(
                "operator is not part of this pipeline"
            ) from None

    def operator_for(self, node):
        """The live instance materialized for a query node."""
        try:
            return self._instances[id(node)]
        except KeyError:
            raise QueryBuildError(
                f"node {node!r} is not part of this pipeline"
            ) from None

    def buffered_events(self) -> int:
        """Total events buffered across all operators right now."""
        return sum(op.buffered_count() for op in self._instances.values())

    # -- driving ----------------------------------------------------------

    def run(self, elements, on_punctuation=None):
        """Push a stream of elements through the (single) source and flush.

        ``elements`` yields :class:`~repro.engine.event.Event` and
        :class:`~repro.engine.event.Punctuation` objects.  The optional
        ``on_punctuation(pipeline)`` callback fires after each punctuation —
        the hook Figure 10's memory meter uses to sample occupancy.
        Returns ``self`` for chaining.
        """
        if len(self._sources) != 1:
            raise QueryBuildError(
                f"run() requires exactly one source, found {len(self._sources)}"
            )
        source = self._sources[0]
        for element in elements:
            if is_punctuation(element):
                source.on_punctuation(element)
                if on_punctuation is not None:
                    on_punctuation(self)
            else:
                source.on_event(element)
        source.on_flush()
        return self

    def run_multi(self, elements_by_node, on_punctuation=None):
        """Drive a multi-source graph, interleaving sources round-robin.

        ``elements_by_node`` maps source :class:`QueryNode`s to their
        element iterables.  One element is taken from each live source per
        round (a simple arrival-order interleaving — callers wanting a
        specific arrival schedule should pre-interleave into one source).
        Every listed source must be a root of this pipeline; all are
        flushed when exhausted.  Returns ``self``.
        """
        feeds = []
        for node, elements in elements_by_node.items():
            op = self.operator_for(node)
            if op not in self._sources:
                raise QueryBuildError(
                    f"node {node!r} is not a source of this pipeline"
                )
            feeds.append((op, iter(elements)))
        if len(feeds) != len(self._sources):
            raise QueryBuildError(
                f"pipeline has {len(self._sources)} sources, "
                f"got elements for {len(feeds)}"
            )
        live = feeds
        while live:
            still_live = []
            for op, iterator in live:
                element = next(iterator, _EXHAUSTED)
                if element is _EXHAUSTED:
                    continue
                if is_punctuation(element):
                    op.on_punctuation(element)
                    if on_punctuation is not None:
                        on_punctuation(self)
                else:
                    op.on_event(element)
                still_live.append((op, iterator))
            live = still_live
        for op, _ in feeds:
            op.on_flush()
        return self

    def push_event(self, event):
        """Manual driving: push one event into the single source."""
        self._sources[0].on_event(event)

    def push_punctuation(self, timestamp):
        """Manual driving: push one punctuation into the single source."""
        self._sources[0].on_punctuation(Punctuation(timestamp))

    def flush(self):
        """Manual driving: signal end-of-stream."""
        self._sources[0].on_flush()
