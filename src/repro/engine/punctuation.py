"""Punctuation generation at ingress (Section III-A).

    "SPEs insert punctuations based on user-specified settings when events
    are ingested into the engine.  The timestamp in a punctuation is set by
    subtracting the reorder latency from the high-watermark timestamp when
    the punctuation is produced and emitted."

:class:`PunctuationPolicy` implements exactly that: every ``frequency``
events it produces a punctuation at ``high_watermark - reorder_latency``,
clamped to be non-decreasing.
"""

from __future__ import annotations

__all__ = ["PunctuationPolicy"]

_NEG_INF = float("-inf")


class PunctuationPolicy:
    """Emit a punctuation every ``frequency`` events at ``hw - latency``.

    Parameters
    ----------
    frequency:
        Number of events between consecutive punctuations (the x-axis of
        Figure 8).  ``None`` disables punctuation generation entirely
        (offline mode).
    reorder_latency:
        How much disorder to tolerate: the punctuation trails the highest
        event time seen so far by this much.  Events arriving later than
        this bound are late (handled by the sorter's late policy).
    """

    __slots__ = ("frequency", "reorder_latency", "_count", "_high_watermark",
                 "_last_punctuation")

    def __init__(self, frequency, reorder_latency=0):
        if frequency is not None and frequency < 1:
            raise ValueError("frequency must be >= 1 or None")
        if reorder_latency < 0:
            raise ValueError("reorder_latency must be non-negative")
        self.frequency = frequency
        self.reorder_latency = reorder_latency
        self._count = 0
        self._high_watermark = _NEG_INF
        self._last_punctuation = _NEG_INF

    @property
    def high_watermark(self):
        """Highest event time observed so far (``-inf`` before any)."""
        return self._high_watermark

    @property
    def last_punctuation(self):
        """Timestamp of the last produced punctuation (``-inf`` if none)."""
        return self._last_punctuation

    def observe(self, event_time):
        """Account for one ingested event.

        Returns the timestamp of a punctuation to emit *after* this event,
        or ``None`` when this event does not complete a punctuation period.
        """
        if event_time > self._high_watermark:
            self._high_watermark = event_time
        if self.frequency is None:
            return None
        self._count += 1
        if self._count % self.frequency:
            return None
        timestamp = self._high_watermark - self.reorder_latency
        if timestamp <= self._last_punctuation:
            return None  # watermark has not advanced enough; skip
        self._last_punctuation = timestamp
        return timestamp
