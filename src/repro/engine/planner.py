"""Automatic sort-as-needed planning (Section IV as an optimizer pass).

The paper exposes operator placement to the user through the
``DisorderedStreamable`` API ("users often have comprehensive
understanding of these long-running streaming queries").  This module
adds the other ergonomic: write the query in the naive
sort-everything-first order and let the planner hoist order-insensitive
operators below the sorting operator automatically.

Rewrite rule: the maximal contiguous block of order-insensitive
operators immediately following the sort commutes with it (sorting only
permutes rows; selection/projection/window transformations are
row-local), so the block moves onto the disordered side with its
internal order intact.  An order-sensitive operator terminates the
block — anything after it may depend on aggregate shapes and must stay.

Example
-------
>>> plan = (QueryPlan().sort().where(lambda e: e.key < 5)
...         .tumbling_window(1000).count())
>>> plan.optimized().describe()
['where', 'tumbling_window', 'sort', 'count']
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import QueryBuildError

__all__ = ["QueryPlan"]

#: Operator methods that commute with the sorting operator.
ORDER_INSENSITIVE = frozenset({
    "where", "select", "select_columns", "tumbling_window",
    "hopping_window", "alter_duration", "clip_duration",
})

#: Order-sensitive methods available on ordered streams only.
ORDER_SENSITIVE = frozenset({
    "aggregate", "count", "group_aggregate", "top_k", "pattern_match",
    "coalesce", "session_window", "distinct", "group_apply",
    "snapshot_aggregate", "self_join",
})

_SORT = "sort"


def _sync_time_key(event):
    return event.sync_time


@dataclass(frozen=True)
class _Step:
    method: str
    args: tuple
    kwargs: tuple  # sorted (name, value) pairs, hashable

    def apply(self, stream):
        return getattr(stream, self.method)(
            *self.args, **dict(self.kwargs)
        )


class QueryPlan:
    """An ordered logical plan with exactly one sort step.

    Build it fluently (every :data:`ORDER_INSENSITIVE` /
    :data:`ORDER_SENSITIVE` method plus ``sort()`` appends a step), then
    ``optimized()`` applies the push-down rewrite and ``bind()``
    instantiates it over a ``DisorderedStreamable``.
    """

    def __init__(self, steps=()):
        self._steps = tuple(steps)

    # -- construction -------------------------------------------------------

    def _append(self, method, args, kwargs):
        step = _Step(method, tuple(args), tuple(sorted(kwargs.items())))
        return QueryPlan(self._steps + (step,))

    def sort(self, sorter=None, late_policy=None) -> "QueryPlan":
        """Place the sorting operator at this point of the plan.

        ``sorter`` is an opaque zero-argument factory (forces the row
        engine); ``late_policy`` configures the default Impatience
        sorter's late handling and stays compilable.
        """
        if any(step.method == _SORT for step in self._steps):
            raise QueryBuildError("plan already contains a sort step")
        if sorter is not None and late_policy is not None:
            raise QueryBuildError(
                "pass either a sorter factory or a late_policy, not both"
            )
        kwargs = {}
        if sorter:
            kwargs["sorter"] = sorter
        if late_policy is not None:
            kwargs["late_policy"] = late_policy
        return self._append(_SORT, (), kwargs)

    def __getattr__(self, name):
        if name in ORDER_INSENSITIVE or name in ORDER_SENSITIVE:
            def add(*args, **kwargs):
                return self._append(name, args, kwargs)

            return add
        raise AttributeError(name)

    # -- inspection ---------------------------------------------------------

    @property
    def steps(self):
        return self._steps

    def describe(self):
        """Method names in plan order (for tests and EXPLAIN output)."""
        return [step.method for step in self._steps]

    def explain(self) -> str:
        """Human-readable plan listing, marking the sort boundary and
        naming the execution path the compiler would choose."""
        lines = []
        for step in self._steps:
            marker = ">>" if step.method == _SORT else "  "
            lines.append(f"{marker} {step.method}")
        try:
            from repro.engine.compiler import analyze_plan

            path, reason = analyze_plan(self)
        except QueryBuildError:
            return "\n".join(lines)
        if path == "columnar":
            lines.append("-- path: columnar (fused kernel pipeline)")
        else:
            lines.append(f"-- path: row (fallback: {reason})")
        return "\n".join(lines)

    # -- optimization ---------------------------------------------------------

    def _sort_index(self) -> int:
        for index, step in enumerate(self._steps):
            if step.method == _SORT:
                return index
        raise QueryBuildError("plan has no sort step")

    def validate(self):
        """Check placement legality (pre-sort steps must be insensitive)."""
        index = self._sort_index()
        for step in self._steps[:index]:
            if step.method not in ORDER_INSENSITIVE:
                raise QueryBuildError(
                    f"{step.method}() appears before the sort but is "
                    "order-sensitive"
                )
        return self

    def optimized(self) -> "QueryPlan":
        """Hoist the insensitive block following the sort above it."""
        self.validate()
        index = self._sort_index()
        pre = list(self._steps[:index])
        sort_step = self._steps[index]
        post = list(self._steps[index + 1:])
        hoisted = []
        while post and post[0].method in ORDER_INSENSITIVE:
            hoisted.append(post.pop(0))
        return QueryPlan(pre + hoisted + [sort_step] + post)

    # -- execution ------------------------------------------------------------

    def bind(self, disordered):
        """Instantiate over a ``DisorderedStreamable``; returns the final
        ordered ``Streamable`` ready to ``collect()``."""
        self.validate()
        index = self._sort_index()
        stream = disordered
        for step in self._steps[:index]:
            stream = step.apply(stream)
        sort_kwargs = dict(self._steps[index].kwargs)
        sorter = sort_kwargs.get("sorter")
        late_policy = sort_kwargs.get("late_policy")
        if sorter is None and late_policy is not None:
            from repro.core.impatience import ImpatienceSorter

            def sorter():
                return ImpatienceSorter(
                    key=_sync_time_key, late_policy=late_policy
                )

        stream = stream.to_streamable(sorter=sorter)
        for step in self._steps[index + 1:]:
            stream = step.apply(stream)
        return stream

    def run(self, source, punctuation_frequency=None, reorder_latency=0,
            engine="auto", batch_size=8192, metrics=None,
            memory_budget=None):
        """Execute the plan over a dataset, raw event list, or ingress
        ``DisorderedStreamable``; returns a Collector-shaped
        :class:`~repro.engine.compiler.PlanResult`.

        ``engine`` selects the backend: ``"auto"`` (compile when
        possible, silent row fallback), ``"columnar"`` (compile or
        raise), or ``"row"``.  ``memory_budget`` (bytes, or a string
        like ``"64MB"``) bounds the sorter's resident buffer; cold runs
        spill to disk and the output stays byte-identical.
        """
        from repro.engine.compiler import execute_plan

        if memory_budget is not None:
            from repro.sorting.external import parse_memory_budget

            memory_budget = parse_memory_budget(memory_budget)
        return execute_plan(
            self, source, punctuation_frequency=punctuation_frequency,
            reorder_latency=reorder_latency, engine=engine,
            batch_size=batch_size, metrics=metrics,
            memory_budget=memory_budget,
        )
