"""``DisorderedStreamable``: sort-as-needed execution (Section IV).

A disordered stream supports *only* order-insensitive operators —
selection, projection, and window timestamp alignment — so the type system
enforces the paper's discipline: order-sensitive work can start only after
an explicit ``to_streamable()`` inserts the sorting operator.  Pushing the
order-insensitive operators ahead of the sort is exactly what Figure 9
measures: selection shrinks the sorted volume, projection shrinks events,
and windowing *reduces disorder* (Proposition 3.2).
"""

from __future__ import annotations

from repro.core.errors import QueryBuildError
from repro.engine.graph import QueryNode, source_node
from repro.engine.ingress import ingress_dataset, ingress_events
from repro.engine.operators.duration import (
    AlterEventDuration,
    ClipEventDuration,
)
from repro.engine.operators.select import Select, SelectColumns
from repro.engine.operators.sort import Sort
from repro.engine.operators.where import Where
from repro.engine.operators.window import HoppingWindow, TumblingWindow
from repro.engine.stream import Streamable, _SourceHandle

__all__ = ["DisorderedStreamable"]

_FORBIDDEN = (
    "aggregate", "count", "group_aggregate", "top_k", "pattern_match",
    "union", "join", "coalesce", "group_apply",
)


class DisorderedStreamable:
    """An out-of-order stream; order-insensitive operators only."""

    def __init__(self, node, source):
        self._node = node
        self._source = source
        # Columnar ingress spec (kind, payload, frequency, latency), set
        # only on pristine from_dataset/from_events streams so
        # QueryPlan.run can re-ingest the raw columns on the compiled
        # path; derived streams run row-only.
        self._ingress = None

    # -- construction -----------------------------------------------------

    @classmethod
    def from_elements(cls, elements, name="disordered-source"):
        """From an iterable of events + punctuations, in arrival order."""
        return cls(source_node(name), _SourceHandle(elements))

    @classmethod
    def from_dataset(cls, dataset, punctuation_frequency=None,
                     reorder_latency=0):
        """Ingress a workload dataset with a punctuation policy.

        Mirrors the paper's ``File.ToDisorderedStreamable()``: events are
        read in arrival order and punctuations are injected every
        ``punctuation_frequency`` events at ``high_watermark -
        reorder_latency``.
        """
        stream = cls.from_elements(
            ingress_dataset(dataset, punctuation_frequency, reorder_latency)
        )
        stream._ingress = (
            "dataset", dataset, punctuation_frequency, reorder_latency
        )
        return stream

    @classmethod
    def from_events(cls, events, punctuation_frequency=None,
                    reorder_latency=0):
        """Ingress a raw event iterable with a punctuation policy."""
        events = events if isinstance(events, list) else list(events)
        stream = cls.from_elements(
            ingress_events(events, punctuation_frequency, reorder_latency)
        )
        stream._ingress = (
            "events", events, punctuation_frequency, reorder_latency
        )
        return stream

    @property
    def node(self) -> QueryNode:
        """The underlying query-DAG node (for framework plumbing)."""
        return self._node

    @property
    def source(self):
        """The shared source handle (for framework plumbing)."""
        return self._source

    def _derive(self, factory, name):
        node = QueryNode(factory, ((self._node, None),), name=name)
        return DisorderedStreamable(node, self._source)

    # -- order-insensitive operators ---------------------------------------

    def where(self, predicate) -> "DisorderedStreamable":
        """Filter events by a predicate — pushed below the sort."""
        return self._derive(lambda: Where(predicate), "where")

    def select(self, projector) -> "DisorderedStreamable":
        """Map payloads through ``projector`` — pushed below the sort."""
        return self._derive(lambda: Select(projector), "select")

    def select_columns(self, columns) -> "DisorderedStreamable":
        """Keep only the given payload field indices."""
        return self._derive(lambda: SelectColumns(columns), "select_columns")

    def tumbling_window(self, size) -> "DisorderedStreamable":
        """Align timestamps to fixed windows — *reduces* disorder."""
        return self._derive(lambda: TumblingWindow(size), "tumbling_window")

    def hopping_window(self, size, hop) -> "DisorderedStreamable":
        """Align timestamps to sliding windows."""
        return self._derive(lambda: HoppingWindow(size, hop), "hopping_window")

    def alter_duration(self, duration) -> "DisorderedStreamable":
        """Set every event's lifetime to a fixed length (stateless)."""
        return self._derive(
            lambda: AlterEventDuration(duration), "alter_duration"
        )

    def clip_duration(self, limit) -> "DisorderedStreamable":
        """Cap every event's lifetime at ``limit`` (stateless)."""
        return self._derive(lambda: ClipEventDuration(limit), "clip_duration")

    # -- the sort boundary ---------------------------------------------------

    def to_streamable(self, sorter=None) -> Streamable:
        """Insert the sorting operator; the result is fully ordered.

        ``sorter`` is an optional online-sorter *factory* (zero-argument
        callable) so each materialization gets fresh state; the default is
        Impatience sort keyed on sync_time.
        """
        if sorter is not None and not callable(sorter):
            raise QueryBuildError("sorter must be a zero-argument factory")
        factory = Sort if sorter is None else (lambda: Sort(sorter()))
        node = QueryNode(factory, ((self._node, None),), name="sort")
        return Streamable(node, self._source)

    def to_streamables(self, reorder_latencies, piq=None, merge=None,
                       sorter=None):
        """Fan out into the Impatience framework (Section V).

        Returns a :class:`repro.framework.streamables.Streamables` with one
        ordered output per reorder latency.  ``piq`` and ``merge`` are the
        advanced framework's query-logic functions (each a
        ``Streamable -> Streamable``); omitting both yields the basic
        framework.
        """
        from repro.framework.advanced import build_streamables

        return build_streamables(
            self, reorder_latencies, piq=piq, merge=merge, sorter=sorter
        )

    def __getattr__(self, name):
        if name in _FORBIDDEN:
            raise QueryBuildError(
                f"{name}() is order-sensitive; call to_streamable() first "
                "(sort-as-needed execution, Section IV of the paper)"
            )
        raise AttributeError(name)
