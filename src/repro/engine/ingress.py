"""Ingress: turning raw out-of-order data into an element stream.

Pairs a data source (a :class:`~repro.workloads.base.Dataset` or any
iterable of events) with a :class:`~repro.engine.punctuation.PunctuationPolicy`
to produce the interleaved event/punctuation element stream that
:meth:`repro.engine.graph.Pipeline.run` consumes.
"""

from __future__ import annotations

from repro.engine.event import Event, Punctuation
from repro.engine.punctuation import PunctuationPolicy

__all__ = ["ingress_events", "ingress_dataset", "ingress_timestamps"]


def ingress_events(events, frequency=None, reorder_latency=0,
                   final_punctuation=True):
    """Interleave punctuations into an iterable of events.

    Yields events as-is plus a :class:`Punctuation` after every
    ``frequency`` events at ``high_watermark - reorder_latency``
    (Section III-A).  ``final_punctuation`` appends an end-of-data
    punctuation at the final high watermark so downstream windows close
    before the flush.
    """
    policy = PunctuationPolicy(frequency, reorder_latency)
    for event in events:
        yield event
        timestamp = policy.observe(event.sync_time)
        if timestamp is not None:
            yield Punctuation(timestamp)
    if final_punctuation and policy.high_watermark != float("-inf"):
        yield Punctuation(policy.high_watermark)


def ingress_dataset(dataset, frequency=None, reorder_latency=0,
                    final_punctuation=True):
    """``ingress_events`` over a workload dataset's arrival order."""
    return ingress_events(
        dataset.events(), frequency, reorder_latency, final_punctuation
    )


def ingress_timestamps(timestamps, frequency=None, reorder_latency=0,
                       final_punctuation=True):
    """Raw-timestamp ingress for sorter-only benchmarks.

    Yields ``("event", t)`` and ``("punct", t)`` pairs — no Event objects,
    so sorting-algorithm comparisons (Figures 7/8) measure the algorithms,
    not event allocation.
    """
    policy = PunctuationPolicy(frequency, reorder_latency)
    for t in timestamps:
        yield ("event", t)
        timestamp = policy.observe(t)
        if timestamp is not None:
            yield ("punct", timestamp)
    if final_punctuation and policy.high_watermark != float("-inf"):
        yield ("punct", policy.high_watermark)
