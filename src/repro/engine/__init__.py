"""Mini-Trill: the in-order streaming-engine substrate (DESIGN.md §1.2)."""

from repro.engine.batch import EventBatch
from repro.engine.checkpoint import checkpoint_sorter, restore_sorter
from repro.engine.columnar_pipeline import ColumnarPipeline, iter_batches
from repro.engine.compiler import (
    CompiledPlan,
    PlanResult,
    UnsupportedPlanError,
    analyze_plan,
    compile_plan,
)
from repro.engine.disordered import DisorderedStreamable
from repro.engine.kernels import (
    AGGREGATE_SPECS,
    GroupedWindowKernel,
    WindowTopKKernel,
    field,
    key_field,
    sync_field,
)
from repro.engine.event import EVENT_BYTES, Event, Punctuation, is_punctuation
from repro.engine.graph import Pipeline, QueryNode, source_node
from repro.engine.ingress import (
    ingress_dataset,
    ingress_events,
    ingress_timestamps,
)
from repro.engine.planner import QueryPlan
from repro.engine.punctuation import PunctuationPolicy
from repro.engine.replay import bursty_rate, constant_rate, replay
from repro.engine.sharded import ShardedQuery, shard_streamable
from repro.engine.stream import Streamable

__all__ = [
    "AGGREGATE_SPECS",
    "ColumnarPipeline",
    "CompiledPlan",
    "DisorderedStreamable",
    "GroupedWindowKernel",
    "PlanResult",
    "UnsupportedPlanError",
    "WindowTopKKernel",
    "EVENT_BYTES",
    "Event",
    "EventBatch",
    "Pipeline",
    "Punctuation",
    "QueryPlan",
    "ShardedQuery",
    "PunctuationPolicy",
    "QueryNode",
    "Streamable",
    "analyze_plan",
    "bursty_rate",
    "checkpoint_sorter",
    "compile_plan",
    "constant_rate",
    "field",
    "key_field",
    "sync_field",
    "ingress_dataset",
    "iter_batches",
    "ingress_events",
    "ingress_timestamps",
    "is_punctuation",
    "replay",
    "restore_sorter",
    "shard_streamable",
    "source_node",
]
