"""Columnar event batches (Trill's columnar batching, Section I-A).

Trill's order-of-magnitude throughput comes from processing events in
columnar batches with bitmap filtering.  This module provides the
numpy-backed equivalent: a :class:`EventBatch` holds parallel arrays for
sync/other times, keys, and payload columns, plus a validity bitmap —
selection marks bits instead of moving data (which is why Figure 9(a)'s
speedup is sub-linear in selectivity: the sorter still scans the bitmap).

Batches are used by the batch ingress path and by the columnar variants of
the order-insensitive operators; the row-oriented operator pipeline remains
the reference implementation.
"""

from __future__ import annotations

import numpy as np

from repro.core.strings import StringColumn
from repro.engine.event import Event

__all__ = ["EventBatch"]


class EventBatch:
    """A fixed set of events in columnar layout with a validity bitmap.

    Besides the three fixed ``int64`` columns and the ``int64`` payload
    columns, a batch may carry *string* payload columns
    (:class:`~repro.core.strings.StringColumn`, arena + offsets).  They
    ride through bitmap selection for free, are gathered on
    :meth:`compact`, and travel the parallel exchange as SDATA frames —
    never pickled.  Sort/group semantics on strings lower to int64
    dictionary codes (see :mod:`repro.core.strings`), so string columns
    here are payload data, not a fourth key column.
    """

    __slots__ = ("sync_times", "other_times", "keys", "payload_columns",
                 "valid", "string_columns")

    def __init__(self, sync_times, other_times, keys, payload_columns,
                 valid=None, string_columns=()):
        self.sync_times = np.asarray(sync_times, dtype=np.int64)
        n = len(self.sync_times)
        self.other_times = np.asarray(other_times, dtype=np.int64)
        self.keys = np.asarray(keys, dtype=np.int64)
        self.payload_columns = [
            np.asarray(col, dtype=np.int64) for col in payload_columns
        ]
        self.valid = (
            np.ones(n, dtype=bool) if valid is None
            else np.asarray(valid, dtype=bool)
        )
        self.string_columns = [
            col if isinstance(col, StringColumn)
            else StringColumn.from_values(col)
            for col in string_columns
        ]
        for name, length in (
            ("other_times", len(self.other_times)),
            ("keys", len(self.keys)),
            *(
                (f"payload_columns[{c}]", len(col))
                for c, col in enumerate(self.payload_columns)
            ),
            *(
                (f"string_columns[{c}]", len(col))
                for c, col in enumerate(self.string_columns)
            ),
            ("valid", len(self.valid)),
        ):
            if length != n:
                raise ValueError(
                    f"batch column {name!r} has length {length}, expected "
                    f"{n} (the length of 'sync_times')"
                )

    @classmethod
    def from_dataset(cls, dataset) -> "EventBatch":
        """Columnarize a workload dataset (arrival order preserved).

        Datasets with ``string_payloads`` (string-keyed workload
        variants) get matching :class:`StringColumn` payloads.
        """
        payload_matrix = np.asarray(dataset.payloads, dtype=np.int64)
        n_cols = payload_matrix.shape[1] if payload_matrix.size else 0
        sync = np.asarray(dataset.timestamps, dtype=np.int64)
        return cls(
            sync_times=sync,
            other_times=sync + 1,
            keys=np.asarray(dataset.keys, dtype=np.int64),
            payload_columns=[payload_matrix[:, c] for c in range(n_cols)],
            string_columns=getattr(dataset, "string_payloads", None) or (),
        )

    def __len__(self) -> int:
        return len(self.sync_times)

    @property
    def valid_count(self) -> int:
        """Number of events whose bitmap bit is still set."""
        return int(self.valid.sum())

    # -- order-insensitive columnar operators -----------------------------

    def filter(self, mask) -> "EventBatch":
        """Selection: clear bitmap bits; no data movement (Trill-style)."""
        mask = np.asarray(mask, dtype=bool)
        return EventBatch(
            self.sync_times, self.other_times, self.keys,
            self.payload_columns, self.valid & mask, self.string_columns,
        )

    def filter_payload(self, column, predicate) -> "EventBatch":
        """Selection on one payload column via a vectorized predicate."""
        return self.filter(predicate(self.payload_columns[column]))

    def project(self, columns) -> "EventBatch":
        """Projection: keep only the given payload columns (string
        columns pass through untouched)."""
        return EventBatch(
            self.sync_times, self.other_times, self.keys,
            [self.payload_columns[c] for c in columns], self.valid,
            self.string_columns,
        )

    def tumbling_window(self, size) -> "EventBatch":
        """Vectorized window alignment of both timestamps."""
        if size < 1:
            raise ValueError("window size must be >= 1")
        start = self.sync_times - self.sync_times % size
        return EventBatch(
            start, start + size, self.keys, self.payload_columns, self.valid,
            self.string_columns,
        )

    def compact(self) -> "EventBatch":
        """Physically drop invalidated rows (done before expensive ops)."""
        if self.valid.all():
            return self
        idx = np.flatnonzero(self.valid)
        return EventBatch(
            self.sync_times[idx], self.other_times[idx], self.keys[idx],
            [col[idx] for col in self.payload_columns],
            string_columns=[col.take(idx) for col in self.string_columns],
        )

    # -- shared-memory wire format -----------------------------------------

    @staticmethod
    def packed_size(n, n_payload_columns) -> int:
        """Bytes :meth:`pack_into` writes for ``n`` rows: three fixed
        int64 columns, the payload columns, and one validity byte/row."""
        return 8 * n * (3 + n_payload_columns) + n

    def pack_into(self, buffer, offset=0) -> int:
        """Write the batch's columns contiguously into ``buffer``.

        Layout is column-major — ``sync | other | keys | payloads… |
        valid`` — so :meth:`unpack_from` can re-attach numpy views with
        no per-element work.  Returns the number of bytes written.  The
        row count and payload arity travel out of band (the exchange
        frame header carries them).
        """
        n = len(self.sync_times)
        view = memoryview(buffer)
        for col in (self.sync_times, self.other_times, self.keys,
                    *self.payload_columns):
            view[offset:offset + 8 * n] = np.ascontiguousarray(col).view(
                np.uint8
            ).reshape(-1)
            offset += 8 * n
        view[offset:offset + n] = self.valid.view(np.uint8).reshape(-1)
        return 8 * n * (3 + len(self.payload_columns)) + n

    @classmethod
    def unpack_from(cls, buffer, n, n_payload_columns, offset=0,
                    copy=False) -> "EventBatch":
        """Attach an :class:`EventBatch` over packed bytes.

        With ``copy=False`` the columns are zero-copy views into
        ``buffer`` — valid only while the underlying shared-memory
        segment stays mapped and the producer has not recycled the ring
        slot; pass ``copy=True`` to detach.
        """
        def column(i):
            arr = np.frombuffer(
                buffer, dtype=np.int64, count=n, offset=offset + 8 * n * i
            )
            return arr.copy() if copy else arr

        payloads = [column(3 + c) for c in range(n_payload_columns)]
        valid = np.frombuffer(
            buffer, dtype=np.uint8, count=n,
            offset=offset + 8 * n * (3 + n_payload_columns),
        ).view(np.bool_)
        return cls(
            column(0), column(1), column(2), payloads,
            valid.copy() if copy else valid,
        )

    # -- bridges to the row world -----------------------------------------

    def timestamps(self) -> list:
        """Valid sync_times as a Python list (sorter benchmark input)."""
        return self.sync_times[self.valid].tolist()

    def events(self):
        """Yield valid rows as :class:`Event` objects, arrival order.

        String payload columns materialize as ``bytes`` fields appended
        after the int payload fields — the same row shape SDATA frames
        decode to on the coordinator, so the row engine and the parallel
        runtime see identical events.
        """
        n_cols = len(self.payload_columns)
        s_cols = self.string_columns
        for i in np.flatnonzero(self.valid):
            payload = tuple(
                int(self.payload_columns[c][i]) for c in range(n_cols)
            ) + tuple(col[i] for col in s_cols)
            yield Event(
                int(self.sync_times[i]), int(self.other_times[i]),
                int(self.keys[i]), payload,
            )
