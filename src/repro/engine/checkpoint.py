"""Checkpoint / restore for the sorting operator's state.

Streaming deployments restart; a sorter holding minutes of buffered
events must survive the restart or the reorder buffer's worth of data is
lost.  Because Impatience sort's entire state is "a set of sorted runs
plus a watermark", its checkpoint is compact and structural — this module
serializes it to a plain dict (JSON-compatible for integer timestamps)
and restores a behaviourally identical sorter.

Only the scalar :class:`~repro.core.impatience.ImpatienceSorter` in
keyless mode (or with reconstructible items) is supported: items must be
representable in the checkpoint.  For keyed sorters over rich events,
checkpoint at ingress (store raw events) instead — that is what
:mod:`repro.resilience.supervisor` does for full pipelines.

Checkpointing is side-effect-free: the staged ingress batch is captured
as-is (format 2's ``pending`` field) rather than being force-partitioned
into the run pool, so taking a checkpoint never changes the live
sorter's subsequent behaviour or its run statistics.
"""

from __future__ import annotations

from repro.core.errors import CheckpointError
from repro.core.impatience import ImpatienceSorter
from repro.core.late import LatePolicy
from repro.core.runs import SortedRun

__all__ = ["checkpoint_sorter", "restore_sorter"]

#: Current checkpoint format.  Format 1 (no ``pending`` field; the
#: ingress batch was flushed into the runs before capture) restores
#: transparently.
_FORMAT = 2
_ACCEPTED_FORMATS = (1, 2)


def checkpoint_sorter(sorter: ImpatienceSorter) -> dict:
    """Snapshot an ImpatienceSorter's durable state as a plain dict.

    Captures the live runs (head-compacted), the pending ingress batch,
    the watermark, and the late-policy configuration.  Statistics are
    intentionally excluded — they are observability, not state.  The
    live sorter is not mutated.
    """
    if sorter.key is not None:
        raise CheckpointError(
            "only keyless sorters are checkpointable; checkpoint raw "
            "events at ingress for keyed sorters"
        )
    runs = [run.live()[0] for run in sorter._pool.runs]
    watermark = sorter.watermark
    return {
        "format": _FORMAT,
        "runs": runs,
        "pending": list(sorter._pending_keys),
        "watermark": None if watermark == float("-inf") else watermark,
        "late_policy": sorter.late.policy.value,
        "merge": sorter.merge,
        "huffman_merge": sorter.merge == "huffman",
        "speculative": sorter._pool.speculative,
    }


def restore_sorter(state: dict) -> ImpatienceSorter:
    """Rebuild a sorter from :func:`checkpoint_sorter` output.

    The restored sorter emits exactly what the original would have for
    any subsequent input (behavioural equivalence is property-tested).
    """
    if state.get("format") not in _ACCEPTED_FORMATS:
        raise CheckpointError(
            f"unsupported checkpoint format {state.get('format')!r}"
        )
    sorter = ImpatienceSorter(
        huffman_merge=state["huffman_merge"],
        # Pre-"merge" checkpoints only knew huffman/pairwise.
        merge=state.get("merge"),
        speculative=state["speculative"],
        late_policy=LatePolicy(state["late_policy"]),
    )
    pool = sorter._pool
    for keys in state["runs"]:
        if not keys:
            raise CheckpointError("checkpoint contains an empty run")
        if any(b < a for a, b in zip(keys, keys[1:])):
            raise CheckpointError("checkpoint run is not ascending")
        run = SortedRun(keyless=True)
        run.keys.extend(keys)
        pool.runs.append(run)
        pool.tails.append(keys[-1])
        sorter.stats.inserted += len(keys)
    if any(
        a <= b for a, b in zip(pool.tails, pool.tails[1:])
    ):
        raise CheckpointError("checkpoint runs violate the tails invariant")
    if pool.neg_tails is not None:
        # The rebuilt tails bypassed insert(); re-derive the negated
        # mirror (non-negatable keys demote the pool to binary search).
        try:
            pool.neg_tails = [-tail for tail in pool.tails]
        except TypeError:
            pool.neg_tails = None
    if state["watermark"] is not None:
        sorter._watermark = state["watermark"]
        sorter._has_watermark = True
    # The staged ingress batch re-enters as a staged batch, preserving
    # the original's partition timing (format 1 checkpoints have none).
    pending = state.get("pending") or []
    sorter._pending_keys.extend(pending)
    sorter.stats.inserted += len(pending)
    sorter.stats.note_buffered()
    return sorter
