"""Checkpoint / restore for the sorting operator's state.

Streaming deployments restart; a sorter holding minutes of buffered
events must survive the restart or the reorder buffer's worth of data is
lost.  Because Impatience sort's entire state is "a set of sorted runs
plus a watermark", its checkpoint is compact and structural — this module
serializes it to a plain dict (JSON-compatible for integer timestamps)
and restores a behaviourally identical sorter.

Only the scalar :class:`~repro.core.impatience.ImpatienceSorter` in
keyless mode (or with reconstructible items) is supported: items must be
representable in the checkpoint.  For keyed sorters over rich events,
checkpoint at ingress (store raw events) instead — that is what
:mod:`repro.resilience.supervisor` does for full pipelines.

Checkpointing is side-effect-free: the staged ingress batch is captured
as-is (format 2's ``pending`` field) rather than being force-partitioned
into the run pool, so taking a checkpoint never changes the live
sorter's subsequent behaviour or its run statistics.

Columnar sorters (:class:`~repro.core.columnar.ColumnarImpatienceSorter`
and its bounded-memory twin
:class:`~repro.sorting.external.ExternalColumnarSorter`) checkpoint as
**format 4**: the buffered rows are captured as one sorted columnar
batch (timestamps + payload columns + string columns) plus the
watermark, optionally tagged with the shard's ``(index, count)`` when
the checkpoint is one slice of a sharded pool — the handoff unit of the
parallel runtime's live rescale (:mod:`repro.parallel.autoscale`).
Capturing the in-memory sorter is non-destructive (a concatenate +
stable argsort over chunk views); capturing the external sorter drains
it via ``flush()`` — it is only checkpointed when the owning worker is
retiring.  Restore inserts the batch *before* re-arming the watermark,
so rows ADJUSTed onto the watermark itself survive the round trip.

Bounded-memory sorters
(:class:`~repro.sorting.external.ExternalImpatienceSorter`, keyless)
checkpoint as **format 3**: the in-memory chunks and pending batch are
captured by value, while spilled runs are captured *by reference* — each
run file is hard-linked (copied when linking fails) into a
checkpoint-owned spill directory, pinning the immutable byte prefix
``[0, length)`` the run had at capture time.  Restore copies that prefix
into the restored sorter's own directory, so any number of restores from
one checkpoint are independent and the original sorter's cleanup cannot
invalidate the checkpoint.  Format-3 checkpoints therefore hold a live
directory handle and are in-process objects, not JSON documents; call
:func:`release_checkpoint` (or drop the last reference) when done.
"""

from __future__ import annotations

import os
import shutil

from repro.core.errors import CheckpointError
from repro.core.impatience import ImpatienceSorter
from repro.core.late import LatePolicy
from repro.core.runs import SortedRun

__all__ = ["checkpoint_sorter", "release_checkpoint", "restore_sorter"]

#: Current checkpoint formats.  Format 1 (no ``pending`` field; the
#: ingress batch was flushed into the runs before capture) restores
#: transparently; format 3 is the bounded-memory external sorter's
#: spill-referencing checkpoint.
_FORMAT = 2
_FORMAT_EXTERNAL = 3
_FORMAT_COLUMNAR = 4
_ACCEPTED_FORMATS = (1, 2, 3, 4)

_KEYED_MESSAGE = (
    "only keyless sorters are checkpointable; checkpoint raw "
    "events at ingress for keyed sorters"
)


def checkpoint_sorter(sorter, shard=None) -> dict:
    """Snapshot a sorter's durable state as a plain dict.

    Captures the live runs (head-compacted), the pending ingress batch,
    the watermark, and the late-policy configuration.  Statistics are
    intentionally excluded — they are observability, not state.  The
    live sorter is not mutated (except the external *columnar* sorter,
    which drains — see the module docstring).  An
    :class:`~repro.sorting.external.ExternalImpatienceSorter` produces
    a format-3 checkpoint referencing its spilled run files; columnar
    sorters produce format 4, tagged with ``shard`` (an
    ``(index, count)`` pair) when they are one slice of a sharded pool.
    """
    from repro.core.columnar import ColumnarImpatienceSorter
    from repro.sorting.external import (
        ExternalColumnarSorter,
        ExternalImpatienceSorter,
    )

    if isinstance(sorter, (ColumnarImpatienceSorter,
                           ExternalColumnarSorter)):
        return _checkpoint_columnar(sorter, shard)
    if isinstance(sorter, ExternalImpatienceSorter):
        return _checkpoint_external(sorter)
    if sorter.key is not None:
        raise CheckpointError(_KEYED_MESSAGE)
    runs = [run.live()[0] for run in sorter._pool.runs]
    watermark = sorter.watermark
    return {
        "format": _FORMAT,
        "runs": runs,
        "pending": list(sorter._pending_keys),
        "watermark": None if watermark == float("-inf") else watermark,
        "late_policy": sorter.late.policy.value,
        "merge": sorter.merge,
        "huffman_merge": sorter.merge == "huffman",
        "speculative": sorter._pool.speculative,
    }


def restore_sorter(state: dict, memory_budget=None):
    """Rebuild a sorter from :func:`checkpoint_sorter` output.

    The restored sorter emits exactly what the original would have for
    any subsequent input (behavioural equivalence is property-tested).
    ``memory_budget`` applies to format-4 checkpoints only: restore
    into a bounded-memory
    :class:`~repro.sorting.external.ExternalColumnarSorter` instead of
    the in-memory columnar sorter.
    """
    if state.get("format") not in _ACCEPTED_FORMATS:
        raise CheckpointError(
            f"unsupported checkpoint format {state.get('format')!r}"
        )
    if state["format"] == _FORMAT_COLUMNAR:
        return _restore_columnar(state, memory_budget)
    if state["format"] == _FORMAT_EXTERNAL:
        return _restore_external(state)
    sorter = ImpatienceSorter(
        huffman_merge=state["huffman_merge"],
        # Pre-"merge" checkpoints only knew huffman/pairwise.
        merge=state.get("merge"),
        speculative=state["speculative"],
        late_policy=LatePolicy(state["late_policy"]),
    )
    pool = sorter._pool
    for keys in state["runs"]:
        if not keys:
            raise CheckpointError("checkpoint contains an empty run")
        if any(b < a for a, b in zip(keys, keys[1:])):
            raise CheckpointError("checkpoint run is not ascending")
        run = SortedRun(keyless=True)
        run.keys.extend(keys)
        pool.runs.append(run)
        pool.tails.append(keys[-1])
        sorter.stats.inserted += len(keys)
    if any(
        a <= b for a, b in zip(pool.tails, pool.tails[1:])
    ):
        raise CheckpointError("checkpoint runs violate the tails invariant")
    if pool.neg_tails is not None:
        # The rebuilt tails bypassed insert(); re-derive the negated
        # mirror (non-negatable keys demote the pool to binary search).
        try:
            pool.neg_tails = [-tail for tail in pool.tails]
        except TypeError:
            pool.neg_tails = None
    if state["watermark"] is not None:
        sorter._watermark = state["watermark"]
        sorter._has_watermark = True
    # The staged ingress batch re-enters as a staged batch, preserving
    # the original's partition timing (format 1 checkpoints have none).
    pending = state.get("pending") or []
    sorter._pending_keys.extend(pending)
    sorter.stats.inserted += len(pending)
    sorter.stats.note_buffered()
    return sorter


# -- format 4: columnar sorters (sharded pools) -------------------------


def _checkpoint_columnar(sorter, shard) -> dict:
    """Format-4 checkpoint: buffered rows as one sorted columnar batch.

    The in-memory sorter is captured non-destructively by concatenating
    its chunk views and applying one stable argsort; the external
    sorter's buffered/spilled rows are drained via ``flush()`` (only a
    retiring worker checkpoints one).  The batch is always stored
    fully sorted, so restore re-seeds the run pool with a single run.
    """
    import numpy as np

    from repro.core.columnar import ColumnarImpatienceSorter
    from repro.core.strings import StringColumn

    if isinstance(sorter, ColumnarImpatienceSorter):
        heads = [chunk for run in sorter._chunks for chunk in run]
        if heads:
            ts = np.concatenate([t for t, _, _ in heads])
            order = np.argsort(ts, kind="stable")
            ts = ts[order]
            cols = [
                np.concatenate([chunk[c] for _, chunk, _ in heads])[order]
                for c in range(sorter.columns)
            ]
            scols = [
                StringColumn.concat(
                    [chunk[c] for _, _, chunk in heads]
                ).take(order)
                for c in range(sorter.string_columns)
            ]
        else:
            ts = np.empty(0, dtype=np.int64)
            cols = [np.empty(0, dtype=np.int64)
                    for _ in range(sorter.columns)]
            scols = [StringColumn.empty()
                     for _ in range(sorter.string_columns)]
    else:  # ExternalColumnarSorter — drains (retiring worker only)
        drained = sorter.flush()
        if sorter.string_columns:
            ts, cols, scols = drained
        elif sorter.columns:
            ts, cols = drained
            scols = ()
        else:
            ts, cols, scols = drained, (), ()
        cols, scols = list(cols), list(scols)
    watermark = sorter.watermark
    return {
        "format": _FORMAT_COLUMNAR,
        "columns": sorter.columns,
        "string_columns": sorter.string_columns,
        "ts": ts,
        "cols": cols,
        "scols": scols,
        "watermark": None if watermark == float("-inf") else watermark,
        "late_policy": sorter.late.policy.value,
        "shard": shard,
    }


def _restore_columnar(state, memory_budget=None):
    """Rebuild a columnar sorter from a format-4 checkpoint.

    Rows are inserted *before* the watermark is re-armed: a buffered
    row ADJUSTed onto the watermark itself (``ts == watermark``) must
    not be re-classified as late on restore.
    """
    from repro.core.columnar import ColumnarImpatienceSorter
    from repro.sorting.external import ExternalColumnarSorter

    policy = LatePolicy(state["late_policy"])
    if memory_budget is not None:
        sorter = ExternalColumnarSorter(
            memory_budget, late_policy=policy,
            columns=state["columns"],
            string_columns=state["string_columns"],
        )
    else:
        sorter = ColumnarImpatienceSorter(
            late_policy=policy, columns=state["columns"],
            string_columns=state["string_columns"],
        )
    import numpy as np

    ts = np.asarray(state["ts"], dtype=np.int64)
    if ts.size:
        if np.any(ts[1:] < ts[:-1]):
            raise CheckpointError("checkpoint batch is not ascending")
        sorter.insert_batch(ts, tuple(state["cols"]),
                            tuple(state["scols"]))
    if state["watermark"] is not None:
        sorter._watermark = state["watermark"]
        sorter._has_watermark = True
    return sorter


# -- format 3: bounded-memory external sorter ---------------------------


def _checkpoint_external(sorter) -> dict:
    """Format-3 checkpoint: chunks by value, spilled runs by reference."""
    from repro.sorting.external import SpillDirectory

    if sorter.keyed:
        raise CheckpointError(_KEYED_MESSAGE)
    pool = sorter.pool
    directory = SpillDirectory()
    runs = []
    for run in pool.runs:
        pinned = directory.file_path(run.name)
        try:
            # Hard-linking pins the immutable prefix [0, length) for
            # free: later appends grow the shared inode past `length`,
            # which restore never reads.
            os.link(run.path, pinned)
        except OSError:
            shutil.copyfile(run.path, pinned)
        runs.append({
            "name": run.name,
            "length": run.length,
            "read_offset": run.read_offset,
            "row_skip": run.row_skip,
            "tail_key": run.tail_key,
            "closed": run.closed,
            "rows": run.rows,
        })
    watermark = sorter.watermark
    return {
        "format": _FORMAT_EXTERNAL,
        "external": {
            "budget": pool.budget,
            "directory": directory,
            "runs": runs,
            "run_seq": pool._run_seq,
            "chunks": [
                keys.tolist() for keys, *_rest in pool._chunks
            ],
        },
        "pending": list(sorter._pending_keys),
        "watermark": None if watermark == float("-inf") else watermark,
        "late_policy": sorter.late.policy.value,
    }


def _restore_external(state):
    """Rebuild an external sorter from a format-3 checkpoint.

    Every referenced run prefix is *copied* into the restored sorter's
    own spill directory, so twins restored from one checkpoint never
    share writable files and the checkpoint survives them all.
    """
    import numpy as np

    from repro.sorting.external import ExternalImpatienceSorter, _RunFile

    ext = state["external"]
    directory = ext["directory"]
    if not directory.alive:
        raise CheckpointError(
            "checkpoint spill directory was already released"
        )
    sorter = ExternalImpatienceSorter(
        ext["budget"], late_policy=LatePolicy(state["late_policy"]),
    )
    try:
        pool = sorter.pool
        for doc in ext["runs"]:
            source = directory.file_path(doc["name"])
            target = pool.directory.file_path(doc["name"])
            _copy_prefix(source, target, doc["length"])
            run = _RunFile.reopen(target, pool.metrics)
            run.length = doc["length"]
            run.read_offset = doc["read_offset"]
            run.row_skip = doc["row_skip"]
            run.tail_key = doc["tail_key"]
            run.closed = doc["closed"]
            run.rows = doc["rows"]
            pool._runs.append(run)
            pool.metrics.runs_spilled += 1
            pool.metrics.run_bytes[run.name] = \
                doc["rows"] * pool.bytes_per_row
            sorter.stats.inserted += doc["rows"]
        pool._run_seq = ext["run_seq"]
        for keys in ext["chunks"]:
            if not keys:
                raise CheckpointError("checkpoint contains an empty run")
            arr = np.asarray(keys, dtype=np.int64)
            if np.any(arr[1:] < arr[:-1]):
                raise CheckpointError("checkpoint run is not ascending")
            pool._chunks.append((arr, (), None, ()))
            pool._rows += int(arr.size)
            sorter.stats.inserted += int(arr.size)
        pool.metrics.note_buffered(pool.buffered_bytes)
        if state["watermark"] is not None:
            sorter._watermark = state["watermark"]
            sorter._has_watermark = True
        pending = state.get("pending") or []
        sorter._pending_keys.extend(pending)
        sorter.stats.inserted += len(pending)
        sorter.stats.note_buffered()
    except BaseException:
        sorter.close()
        raise
    return sorter


def _copy_prefix(source, target, length):
    """Copy exactly the first ``length`` bytes of ``source``."""
    remaining = int(length)
    try:
        with open(source, "rb") as fin, open(target, "wb") as fout:
            while remaining > 0:
                chunk = fin.read(min(1 << 20, remaining))
                if not chunk:
                    break
                fout.write(chunk)
                remaining -= len(chunk)
    except OSError as exc:
        raise CheckpointError(
            f"cannot restore spilled run {source}: {exc}"
        ) from exc
    if remaining:
        raise CheckpointError(
            f"checkpointed run {source} is shorter than its recorded "
            f"length ({remaining} bytes missing)"
        )


def release_checkpoint(state):
    """Free any on-disk resources a checkpoint holds (format 3's pinned
    run files); a no-op for value-only formats and ``None``."""
    if not state:
        return
    external = state.get("external")
    if external:
        external["directory"].cleanup()
