"""End-to-end columnar query path (Trill's batch architecture, §I-A).

The row-oriented operator DAG is the reference implementation; this
module is the vectorized fast path for the timestamp-keyed aggregation
queries the paper's evaluation centres on: ingress in
:class:`~repro.engine.batch.EventBatch` slices, bitmap selection,
column projection, window alignment, a
:class:`~repro.core.columnar.ColumnarImpatienceSorter`, and a vectorized
windowed count — every stage numpy, no per-event Python.

Equivalence with the row engine is asserted in tests and measured in
``benchmarks/bench_ablation_columnar.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.columnar import ColumnarImpatienceSorter
from repro.engine.batch import EventBatch

__all__ = ["iter_batches", "ColumnarPipeline", "WindowedCountState"]


def iter_batches(dataset, batch_size):
    """Yield a dataset as arrival-order :class:`EventBatch` slices.

    Each batch is columnarized directly from the dataset's row storage,
    so only ``batch_size`` rows are resident as numpy columns at any
    point — columnarizing the whole dataset up front and slicing it
    would hold a second full copy of the data at peak.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    timestamps = dataset.timestamps
    keys = dataset.keys
    payloads = dataset.payloads
    for start in range(0, len(timestamps), batch_size):
        stop = start + batch_size
        sync = np.asarray(timestamps[start:stop], dtype=np.int64)
        matrix = np.asarray(payloads[start:stop], dtype=np.int64)
        n_cols = matrix.shape[1] if matrix.size else 0
        yield EventBatch(
            sync,
            sync + 1,
            np.asarray(keys[start:stop], dtype=np.int64),
            [matrix[:, c] for c in range(n_cols)],
        )


class WindowedCountState:
    """Streaming window counter over *globally sorted* timestamp batches.

    Feed ascending arrays of window-aligned sync times; closed windows
    (everything before the last window seen) accumulate into ``starts``/
    ``counts``; the trailing window stays open until ``finish``.
    """

    def __init__(self):
        self._starts = []
        self._counts = []
        self._open_start = None
        self._open_count = 0

    def feed(self, window_starts):
        if window_starts.size == 0:
            return
        starts, counts = np.unique(window_starts, return_counts=True)
        if self._open_start is not None and starts[0] == self._open_start:
            counts = counts.copy()
            counts[0] += self._open_count
        elif self._open_start is not None:
            self._starts.append(self._open_start)
            self._counts.append(self._open_count)
        if starts.size > 1:
            self._starts.extend(starts[:-1].tolist())
            self._counts.extend(counts[:-1].tolist())
        self._open_start = int(starts[-1])
        self._open_count = int(counts[-1])

    def finish(self):
        """Return ``(window_starts, counts)`` with the tail window closed."""
        starts = list(self._starts)
        counts = list(self._counts)
        if self._open_start is not None:
            starts.append(self._open_start)
            counts.append(self._open_count)
        return starts, counts


class ColumnarPipeline:
    """Fluent columnar plan: selection, projection, window, sort, count.

    Stages are recorded and applied per ingress batch; the terminal is
    either the globally sorted timestamp stream (``run``) or a windowed
    count over it (``run_windowed_count``).
    """

    def __init__(self):
        self._stages = []
        self.dropped_late = 0

    # -- stage builders (return self for chaining) -------------------------

    def filter_keys(self, predicate) -> "ColumnarPipeline":
        """Vectorized selection on the key column."""
        self._stages.append(lambda batch: batch.filter(predicate(batch.keys)))
        return self

    def filter_payload(self, column, predicate) -> "ColumnarPipeline":
        """Vectorized selection on one payload column."""
        self._stages.append(
            lambda batch: batch.filter_payload(column, predicate)
        )
        return self

    def project(self, columns) -> "ColumnarPipeline":
        """Keep only the given payload columns."""
        self._stages.append(lambda batch: batch.project(columns))
        return self

    def tumbling_window(self, size) -> "ColumnarPipeline":
        """Align timestamps to fixed windows (reduces disorder)."""
        self._stages.append(lambda batch: batch.tumbling_window(size))
        return self

    # -- execution ------------------------------------------------------------

    def _emit_batches(self, dataset, batch_size, reorder_latency):
        sorter = ColumnarImpatienceSorter()
        for batch in iter_batches(dataset, batch_size):
            for stage in self._stages:
                batch = stage(batch)
            batch = batch.compact()
            times = batch.sync_times
            if times.size:
                sorter.insert_batch(times)
                timestamp = int(times.max()) - reorder_latency
                if sorter.watermark == float("-inf") or \
                        timestamp > sorter.watermark:
                    yield sorter.on_punctuation(timestamp)
        yield sorter.flush()
        self.dropped_late = sorter.late.dropped

    def run(self, dataset, batch_size=4096, reorder_latency=0):
        """Return the fully sorted (post-stage) timestamp array."""
        parts = [
            part for part in
            self._emit_batches(dataset, batch_size, reorder_latency)
            if part.size
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def run_windowed_count(self, dataset, batch_size=4096,
                           reorder_latency=0):
        """Sorted windowed counts: ``(window_starts, counts)`` lists.

        Requires a ``tumbling_window`` stage so sync times are aligned.
        """
        state = WindowedCountState()
        for part in self._emit_batches(dataset, batch_size, reorder_latency):
            state.feed(part)
        return state.finish()
